"""Typed exception hierarchy for durability and serving failures.

Persistence and recovery problems used to surface as raw ``json`` /
``gzip`` / ``KeyError`` tracebacks; callers (the CLI in particular) had no
way to tell "the snapshot file is damaged" apart from "the code is buggy".
Every durability failure now raises a subclass of :class:`DurabilityError`
carrying a one-line, operator-readable message.

The corruption errors also subclass :class:`ValueError` so code (and
tests) written against the old ``raise ValueError`` behaviour keeps
working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DurabilityError",
    "SnapshotCorruptionError",
    "WalCorruptionError",
    "SchemaMismatchError",
    "SocialStoreUnavailableError",
    "ServingError",
    "OverloadedError",
    "RateLimitedError",
    "NetClientError",
    "CircuitOpenError",
    "TransientServingError",
]


class ReproError(Exception):
    """Base class of every typed error raised by this package."""


class DurabilityError(ReproError):
    """A snapshot or write-ahead-log problem (corruption, schema drift)."""


class SnapshotCorruptionError(DurabilityError, ValueError):
    """A snapshot archive is unreadable: truncated gzip stream, flipped
    payload bytes (checksum mismatch), undecodable JSON, or a payload of
    the wrong kind."""


class WalCorruptionError(DurabilityError, ValueError):
    """A write-ahead log is damaged beyond the torn-tail tolerance: a bad
    record (checksum or sequence mismatch) appears *before* valid ones, so
    truncating the tail would silently drop acknowledged mutations."""


class SchemaMismatchError(DurabilityError, ValueError):
    """An archive was written under an incompatible schema major version."""


class SocialStoreUnavailableError(ReproError, RuntimeError):
    """The social store was marked unavailable; derived social structures
    cannot be served.  :class:`~repro.core.recommender.FusionRecommender`
    degrades to content-only serving instead of propagating this."""


class ServingError(ReproError):
    """A request-level failure of the concurrent serving gateway."""


class OverloadedError(ServingError):
    """Admission control shed the request: every serving slot was busy and
    the bounded wait queue was full (or the queue wait outlived the
    request deadline).  Retrying after backoff is the expected reaction;
    the CLI maps this to a one-line typed exit with code 2.

    ``retry_after_ms`` is the gateway's backoff hint — derived from the
    admission queue depth and the recent per-query service time, so
    callers (the HTTP 429 mapping, the bundled retrying client) never
    hardcode a backoff.  ``None`` when the shedding layer has no estimate.
    """

    def __init__(self, message: str = "", retry_after_ms: float | None = None):
        super().__init__(message)
        self.retry_after_ms = None if retry_after_ms is None else float(retry_after_ms)


class RateLimitedError(ServingError):
    """A per-client token bucket rejected the request before admission.
    Carries the same ``retry_after_ms`` hint as :class:`OverloadedError`
    (here: time until the bucket refills one token); the HTTP front-end
    maps both onto 429 + ``Retry-After``."""

    def __init__(self, message: str = "", retry_after_ms: float | None = None):
        super().__init__(message)
        self.retry_after_ms = None if retry_after_ms is None else float(retry_after_ms)


class SpamQuarantinedError(ServingError):
    """The defense layer's spam quarantine refused the interaction: its
    user was *confirmed* as a burst spammer, so further comments are
    dropped rather than logged.  The HTTP front-end maps this onto 429
    with a ``Retry-After`` hint of one spam window — a genuine user who
    tripped the detector can retry once their burst has aged out."""

    def __init__(self, message: str = "", retry_after_ms: float | None = None):
        super().__init__(message)
        self.retry_after_ms = None if retry_after_ms is None else float(retry_after_ms)


class NetClientError(ReproError):
    """The bundled HTTP client gave up: retries (and the retry budget)
    were exhausted, or the failure class is not retryable.  Carries the
    last observed HTTP ``status`` (``None`` for transport failures)."""

    def __init__(self, message: str = "", status: int | None = None):
        super().__init__(message)
        self.status = status


class CircuitOpenError(ServingError):
    """The social-path circuit breaker is open; the dependency call was
    not attempted.  Gateway-internal — ``recommend`` converts it into a
    content-only degraded ranking rather than failing the request."""


class TransientServingError(ServingError):
    """A retryable failure of a serving dependency (injected or real).
    The gateway retries these with jittered exponential backoff before
    counting a breaker failure; non-transient failures trip immediately."""
