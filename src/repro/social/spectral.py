"""Spectral clustering baseline for sub-community extraction (§4.2.2).

The paper motivates its lightest-edge partition by comparing against
spectral clustering ("the best practice") and reporting a much better
Silhouette Coefficient (0.498 vs 0.242 on a 2000-video sample).  This
module implements normalized spectral clustering (Ng–Jordan–Weiss variant,
following von Luxburg's tutorial, the paper's reference [30]) from scratch
on top of numpy/scipy:

1. build the weighted adjacency matrix of the UIG;
2. form the symmetric normalized Laplacian ``L = I - D^-1/2 W D^-1/2``;
3. take the ``k`` eigenvectors of the smallest eigenvalues;
4. row-normalize and cluster with (seeded) k-means.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.linalg import eigh

from repro.social.subcommunity import Partition

__all__ = ["spectral_partition", "kmeans"]


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
) -> np.ndarray:
    """Plain Lloyd's k-means with k-means++ seeding.

    Returns the label array.  Empty clusters are re-seeded on the point
    farthest from its centroid.
    """
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    # k-means++ seeding.
    centroids = [points[int(rng.integers(n))]]
    for _ in range(k - 1):
        distances = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centroids.append(points[int(rng.integers(n))])
            continue
        centroids.append(points[int(rng.choice(n, p=distances / total))])
    centers = np.stack(centroids)

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.stack(
            [np.sum((points - center) ** 2, axis=1) for center in centers]
        )
        new_labels = np.argmin(distances, axis=0)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members) == 0:
                farthest = int(np.argmax(np.min(distances, axis=0)))
                centers[cluster] = points[farthest]
            else:
                centers[cluster] = members.mean(axis=0)
    return labels


def spectral_partition(graph: nx.Graph, k: int, seed: int = 0) -> Partition:
    """Normalized spectral clustering of the UIG into *k* sub-communities.

    Operates on the dense Laplacian — intended for the evaluation-scale
    graphs of the Silhouette comparison (thousands of users), not for the
    full community.
    """
    nodes = sorted(graph.nodes())
    n = len(nodes)
    if n == 0:
        raise ValueError("cannot partition an empty graph")
    k = min(k, n)
    index = {node: i for i, node in enumerate(nodes)}
    weights = np.zeros((n, n), dtype=np.float64)
    for source, target, weight in graph.edges(data="weight", default=1.0):
        weights[index[source], index[target]] = weight
        weights[index[target], index[source]] = weight
    degrees = weights.sum(axis=1)
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    laplacian = np.eye(n) - inv_sqrt[:, None] * weights * inv_sqrt[None, :]
    _, vectors = eigh(laplacian, subset_by_index=(0, k - 1))
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    embedding = vectors / np.maximum(norms, 1e-12)
    labels = kmeans(embedding, k, np.random.default_rng(seed))
    communities: dict[int, set[str]] = {}
    for node, label in zip(nodes, labels):
        communities.setdefault(int(label), set()).add(node)
    return Partition(list(communities.values()))
