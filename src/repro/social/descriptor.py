"""Social descriptors and exact social relevance (paper Section 4.2.1).

A video's social descriptor ``D_V`` is the set of user ids of its owner and
commenters.  The social relevance of two videos is the Jaccard coefficient
of their descriptors (Eq. 5).

Two implementations of the Jaccard are provided:

* :func:`jaccard` — Python set intersection, the obvious fast version;
* :func:`jaccard_naive` — nested-loop string comparison, quadratic in the
  descriptor sizes.  This mirrors the cost model the paper attributes to
  unoptimised CSF ("the computation complexity of the measure is quadratic
  to the number of elements in two compared social descriptors") and is the
  version the Figure 12(a) efficiency bench charges to plain CSF.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["SocialDescriptor", "jaccard", "jaccard_naive"]


@dataclass(frozen=True)
class SocialDescriptor:
    """The set of users interested in one video.

    Attributes
    ----------
    video_id:
        The described video.
    users:
        Frozen set of user ids (owner plus commenters).
    """

    video_id: str
    users: frozenset[str]

    @staticmethod
    def from_users(video_id: str, users: Iterable[str]) -> "SocialDescriptor":
        """Build a descriptor from any iterable of user ids."""
        return SocialDescriptor(video_id=video_id, users=frozenset(users))

    def __len__(self) -> int:
        return len(self.users)

    def with_users(self, users: Iterable[str]) -> "SocialDescriptor":
        """A new descriptor with *users* added (descriptors are immutable)."""
        return SocialDescriptor(video_id=self.video_id, users=self.users | frozenset(users))

    def without_users(self, users: Iterable[str]) -> "SocialDescriptor":
        """A new descriptor with *users* removed (spam revocation)."""
        return SocialDescriptor(video_id=self.video_id, users=self.users - frozenset(users))


def jaccard(first: SocialDescriptor, second: SocialDescriptor) -> float:
    """Exact social relevance ``sJ`` (Eq. 5), set-based implementation.

    Returns 0 when both descriptors are empty (no evidence either way).
    """
    union = len(first.users | second.users)
    if union == 0:
        return 0.0
    return len(first.users & second.users) / union


def jaccard_naive(first: SocialDescriptor, second: SocialDescriptor) -> float:
    """Exact ``sJ`` by nested-loop string comparison (quadratic).

    Semantically identical to :func:`jaccard`; exists so the efficiency
    benches can reproduce the cost the paper charges to unoptimised social
    relevance computation.
    """
    users_a = list(first.users)
    users_b = list(second.users)
    intersection = 0
    for name_a in users_a:
        for name_b in users_b:
            if name_a == name_b:
                intersection += 1
                break
    union = len(users_a) + len(users_b) - intersection
    if union == 0:
        return 0.0
    return intersection / union
