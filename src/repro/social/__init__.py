"""Social relevance: descriptors, UIG, sub-communities, SAR, dynamics."""

from repro.social.descriptor import SocialDescriptor, jaccard, jaccard_naive
from repro.social.sar import (
    SarVectorizer,
    SortedUserDictionary,
    approx_jaccard,
    approx_jaccard_batch,
    hash_dictionary_from_partition,
)
from repro.social.silhouette import (
    partition_silhouette,
    silhouette_coefficient,
    uig_distance_matrix,
)
from repro.social.spectral import kmeans, spectral_partition
from repro.social.subcommunity import (
    Partition,
    extract_subcommunities,
    extract_subcommunities_literal,
    lightest_internal_edge,
)
from repro.social.uig import build_uig, user_video_map
from repro.social.updates import Connection, DynamicSocialIndex, MaintenanceStats

__all__ = [
    "Connection",
    "DynamicSocialIndex",
    "MaintenanceStats",
    "Partition",
    "SarVectorizer",
    "SocialDescriptor",
    "SortedUserDictionary",
    "approx_jaccard",
    "approx_jaccard_batch",
    "build_uig",
    "extract_subcommunities",
    "extract_subcommunities_literal",
    "hash_dictionary_from_partition",
    "jaccard",
    "jaccard_naive",
    "kmeans",
    "lightest_internal_edge",
    "partition_silhouette",
    "silhouette_coefficient",
    "spectral_partition",
    "uig_distance_matrix",
    "user_video_map",
]
