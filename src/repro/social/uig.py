"""User interest graph (UIG) construction (paper Section 4.2.2).

Nodes are the social users of a video collection; the weight of the edge
between two users is the number of videos they are *both* interested in
(i.e. both appear in the video's social descriptor).  Users sharing no
video are not linked.

Built by accumulating, for every video, +1 on every pair of its users —
``O(sum |D_V|^2)`` overall, which is why the generator caps per-video
commenter counts.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

import networkx as nx

from repro.social.descriptor import SocialDescriptor

__all__ = ["build_uig", "user_video_map"]


def user_video_map(descriptors: Iterable[SocialDescriptor]) -> dict[str, set[str]]:
    """Invert descriptors into ``user id -> set of video ids``."""
    mapping: dict[str, set[str]] = {}
    for descriptor in descriptors:
        for user in descriptor.users:
            mapping.setdefault(user, set()).add(descriptor.video_id)
    return mapping


def build_uig(
    descriptors: Iterable[SocialDescriptor],
    pair_cap: int | None = None,
) -> nx.Graph:
    """Construct the UIG of a collection of social descriptors.

    Every user in any descriptor becomes a node (isolated users included —
    they form singleton sub-communities, matching step 1 of the paper's
    extraction algorithm which first collects disconnected components).

    Parameters
    ----------
    pair_cap:
        Optional scalability cap: a video with more than *pair_cap* users
        contributes a full clique only among its first *pair_cap* users
        (sorted order, deterministic); every user past the cap is chained
        to its sorted predecessor instead, so ``O(pair_cap^2 + |D_V|)``
        edges per video replace the quadratic blow-up **without isolating
        anyone** — before this fix the tail users got nodes but no edges,
        so sub-community extraction saw spurious singletons and Eq.-8
        maintenance could never union them.  Descriptors themselves are
        untouched.  ``None`` (the default) generates every pair, exactly
        as the paper defines.
    """
    if pair_cap is not None and pair_cap < 2:
        raise ValueError(f"pair_cap must be >= 2, got {pair_cap}")
    graph = nx.Graph()

    def bump(first: str, second: str) -> None:
        if graph.has_edge(first, second):
            graph[first][second]["weight"] += 1
        else:
            graph.add_edge(first, second, weight=1)

    for descriptor in descriptors:
        users = sorted(descriptor.users)
        graph.add_nodes_from(users)
        linked = users if pair_cap is None else users[:pair_cap]
        for first, second in combinations(linked, 2):
            bump(first, second)
        if pair_cap is not None:
            # Chain the tail: each capped-out user still shares this video
            # with its predecessor, keeping the video's users one connected
            # component at O(1) extra edges per user.
            for position in range(pair_cap, len(users)):
                bump(users[position - 1], users[position])
    return graph
