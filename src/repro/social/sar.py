"""SAR — sub-community-based approximation relevance (paper Section 4.2.2).

SAR replaces the exact set Jaccard ``sJ`` with a linear-time histogram
approximation:

1. **sub-community extraction** — partition the UIG into ``k``
   sub-communities (:mod:`repro.social.subcommunity`);
2. **social descriptor vectorization** — map every user of a descriptor to
   its sub-community id and count users per sub-community, yielding a
   ``k``-vector;
3. **social relevance approximation** — Eq. 6:

       s̃J = sum_i min(d_Qi, d_Vi) / sum_i max(d_Qi, d_Vi).

The user -> sub-community mapping is pluggable: plain SAR uses a
**sorted-array dictionary** with binary search (the "user dictionary" of
the paper), and SAR-H swaps in the chained hash table of
:mod:`repro.index.hashing` — the difference Figure 12(a) measures.

A useful analytic fact (tested property-style): ``s̃J >= sJ`` always, since
histogram intersection upper-bounds set intersection and histogram union
lower-bounds set union.
"""

from __future__ import annotations


from collections.abc import Iterable
from typing import Protocol

import numpy as np

from repro.index.hashing import ChainedHashTable
from repro.social.descriptor import SocialDescriptor
from repro.social.subcommunity import Partition

__all__ = [
    "UserLookup",
    "SortedUserDictionary",
    "hash_dictionary_from_partition",
    "SarVectorizer",
    "approx_jaccard",
    "approx_jaccard_batch",
]


class UserLookup(Protocol):
    """Anything that can map a user name to its sub-community id."""

    def lookup(self, key: str) -> int | None:
        """Return the sub-community id of *key*, or ``None`` if unknown."""
        ...


class SortedUserDictionary:
    """The plain-SAR user dictionary: sorted names, binary-search lookup.

    The search is written as an explicit loop rather than the C-accelerated
    :mod:`bisect` intrinsic so that SAR and SAR-H are compared at the same
    abstraction level — the paper's cost model counts string comparisons
    and hash steps, not CPython implementation shortcuts.  (The functional
    behaviour is identical either way; the test suite cross-checks against
    :func:`bisect.bisect_left`.)
    """

    def __init__(self, membership: dict[str, int]) -> None:
        self._names = sorted(membership)
        self._cnos = [membership[name] for name in self._names]

    def lookup(self, key: str) -> int | None:
        """Binary search for *key*; ``None`` when absent."""
        names = self._names
        low, high = 0, len(names)
        while low < high:
            middle = (low + high) // 2
            if names[middle] < key:
                low = middle + 1
            else:
                high = middle
        if low < len(names) and names[low] == key:
            return self._cnos[low]
        return None

    def __len__(self) -> int:
        return len(self._names)


def hash_dictionary_from_partition(
    partition: Partition, num_buckets: int | None = None
) -> ChainedHashTable:
    """Build the SAR-H chained hash table from a partition.

    The default bucket count targets a load factor of about one.
    """
    size = len(partition.membership)
    table = ChainedHashTable(num_buckets=num_buckets or max(16, size))
    for user, cno in partition.membership.items():
        table.insert(user, cno)
    return table


class SarVectorizer:
    """Vectorizes social descriptors into k-dimensional community histograms.

    Parameters
    ----------
    lookup:
        The user -> sub-community mapping backend (sorted dictionary for
        SAR, chained hash table for SAR-H).
    k:
        Number of sub-communities (output dimensionality).

    Users missing from the dictionary (e.g. brand-new commenters between
    maintenance runs) are skipped; the paper's maintenance procedure folds
    them in at the next update.
    """

    def __init__(self, lookup: UserLookup, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._lookup = lookup
        self._k = k

    @property
    def k(self) -> int:
        """Histogram dimensionality."""
        return self._k

    def vectorize(self, descriptor: SocialDescriptor) -> np.ndarray:
        """Count *descriptor*'s users per sub-community (Eq. 6 input)."""
        vector = np.zeros(self._k, dtype=np.float64)
        for user in descriptor.users:
            cno = self._lookup.lookup(user)
            if cno is not None and 0 <= cno < self._k:
                vector[cno] += 1.0
        return vector

    def vectorize_users(self, users: Iterable[str]) -> np.ndarray:
        """Vectorize a bare user set (used by query-time code paths)."""
        return self.vectorize(SocialDescriptor.from_users("_query", users))


def _approx_jaccard_fast(first: np.ndarray, second: np.ndarray) -> float:
    """s̃J without the asarray copies and validation of :func:`approx_jaccard`.

    Hot-path variant for callers that already hold trusted float64
    histograms of matching shape (the batch engine and the vectorizers
    produce exactly those); the validating public function remains the
    API for everything else.
    """
    denominator = float(np.maximum(first, second).sum())
    if denominator == 0:
        return 0.0
    return float(np.minimum(first, second).sum()) / denominator


def approx_jaccard(first: np.ndarray, second: np.ndarray) -> float:
    """The SAR social relevance approximation s̃J (Eq. 6).

    ``sum(min) / sum(max)`` over the two community histograms; 0 when both
    are empty.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError(f"histogram shapes differ: {first.shape} vs {second.shape}")
    if np.any(first < 0) or np.any(second < 0):
        raise ValueError("histograms must be non-negative")
    return _approx_jaccard_fast(first, second)


def approx_jaccard_batch(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """s̃J of one query histogram against every row of *matrix* (Eq. 6).

    One ``minimum`` / ``maximum`` reduction pair over the ``(N, k)``
    candidate matrix replaces N scalar :func:`approx_jaccard` calls; rows
    whose union mass is zero score 0 (matching the scalar convention).
    """
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != query.size:
        raise ValueError(
            f"matrix must be (N, {query.size}), got {matrix.shape}"
        )
    if np.any(query < 0):
        raise ValueError("histograms must be non-negative")
    intersections = np.minimum(matrix, query).sum(axis=1)
    unions = np.maximum(matrix, query).sum(axis=1)
    scores = np.zeros(matrix.shape[0], dtype=np.float64)
    np.divide(intersections, unions, out=scores, where=unions > 0)
    return scores
