"""Sub-community extraction by lightest-edge removal (paper Figure 3).

The paper's ``SubgraphExtraction`` procedure:

1. collect the graph's already-disconnected components;
2. while there are fewer than ``k`` components, remove the globally
   lightest edge; every removal that disconnects its endpoints creates a
   new component;
3. return the connected components as sub-communities.

Two implementations:

* :func:`extract_subcommunities_literal` — the algorithm exactly as
  written, removing one edge at a time and re-checking connectivity;
* :func:`extract_subcommunities` — an equivalent fast path: compute a
  *maximum* spanning forest and cut its lightest edges.  Removing
  non-forest edges never splits anything, so the literal process ends up
  cutting exactly the forest's lightest edges; with distinct edge weights
  the two partitions coincide (single-linkage clustering), which the test
  suite verifies property-style.

Community ids are assigned deterministically: communities sorted by their
smallest member get ids ``0..n-1``.
"""

from __future__ import annotations

import networkx as nx

__all__ = [
    "Partition",
    "extract_subcommunities",
    "extract_subcommunities_literal",
    "internal_edges",
    "lightest_internal_edge",
]


class Partition:
    """A partition of users into sub-communities.

    Attributes
    ----------
    communities:
        ``cno -> set of user ids``.
    membership:
        ``user id -> cno``.
    """

    def __init__(self, communities: list[set[str]]) -> None:
        if not communities:
            raise ValueError("a partition needs at least one community")
        ordered = sorted(communities, key=lambda community: min(community))
        self.communities: dict[int, set[str]] = {
            cno: set(community) for cno, community in enumerate(ordered)
        }
        self.membership: dict[str, int] = {}
        for cno, community in self.communities.items():
            for user in community:
                if user in self.membership:
                    raise ValueError(f"user {user!r} appears in two communities")
                self.membership[user] = cno

    @property
    def k(self) -> int:
        """Number of sub-communities."""
        return len(self.communities)

    def community_of(self, user: str) -> int | None:
        """The sub-community id of *user*, or ``None`` for unknown users."""
        return self.membership.get(user)

    def sizes(self) -> list[int]:
        """Community sizes in id order."""
        return [len(self.communities[cno]) for cno in sorted(self.communities)]

    def __len__(self) -> int:
        return self.k


def _sorted_components(graph: nx.Graph) -> list[set[str]]:
    return [set(component) for component in nx.connected_components(graph)]


def extract_subcommunities_literal(graph: nx.Graph, k: int) -> Partition:
    """The paper's Figure-3 algorithm, executed literally.

    Removes the globally lightest remaining edge until the graph has at
    least ``k`` connected components (or runs out of edges).  Ties on
    weight break deterministically on the sorted endpoint pair.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.number_of_nodes() == 0:
        raise ValueError("cannot partition an empty graph")
    working = graph.copy()
    edges = sorted(
        working.edges(data="weight"),
        key=lambda edge: (edge[2], tuple(sorted((edge[0], edge[1])))),
    )
    components = nx.number_connected_components(working)
    for source, target, _ in edges:
        if components >= k:
            break
        working.remove_edge(source, target)
        if not nx.has_path(working, source, target):
            components += 1
    return Partition(_sorted_components(working))


def extract_subcommunities(graph: nx.Graph, k: int) -> Partition:
    """Fast equivalent of the literal algorithm via maximum-spanning-forest.

    Builds the maximum spanning forest (Kruskal over descending weights,
    ties broken identically to the literal variant) and removes its
    ``k - c0`` lightest edges, where ``c0`` is the number of original
    components.  Single-linkage equivalence makes this produce the same
    partition as the literal edge-removal process whenever edge weights at
    the cut boundary are distinct.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if graph.number_of_nodes() == 0:
        raise ValueError("cannot partition an empty graph")
    forest = nx.maximum_spanning_tree(
        graph, weight="weight", algorithm="kruskal"
    ) if graph.number_of_edges() else graph.copy()
    forest_edges = sorted(
        forest.edges(data="weight"),
        key=lambda edge: (edge[2], tuple(sorted((edge[0], edge[1])))),
    )
    components = nx.number_connected_components(graph)
    cuts_needed = max(0, k - components)
    forest.remove_edges_from(
        (source, target) for source, target, _ in forest_edges[:cuts_needed]
    )
    # Single-linkage equivalence: the components of the cut forest are the
    # components the literal edge-removal process converges to.
    return Partition(_sorted_components(forest))


def internal_edges(graph: nx.Graph, community: set[str]):
    """Iterate ``(source, target, weight)`` over *community*'s internal edges.

    Walks adjacency dicts directly — an order of magnitude cheaper than a
    ``graph.subgraph(...)`` view, which re-filters membership on every
    access (this sits on the hot path of update maintenance).
    """
    adjacency = graph.adj
    for source in community:
        if source not in adjacency:
            continue
        for target, data in adjacency[source].items():
            if source < target and target in community:
                yield source, target, data.get("weight", 1)


def lightest_internal_edge(graph: nx.Graph, community: set[str]):
    """The lightest edge inside *community*'s induced subgraph.

    Returns ``(source, target, weight)`` or ``None`` when the community has
    no internal edges.  Used both to track the paper's ``w`` threshold and
    to pick split points during update maintenance.
    """
    best = None
    for source, target, weight in internal_edges(graph, community):
        candidate = (weight, (source, target))
        if best is None or candidate < best[0]:
            best = (candidate, (source, target, weight))
    return None if best is None else best[1]
