"""Silhouette Coefficient over UIG partitions (paper Section 4.2.2).

The paper scores clustering quality with the average Silhouette Coefficient
("a bigger value indicates a better overall clustering result").  The
coefficient needs a *distance* between users; we derive one from the UIG's
interest weights:

    d(u, v) = 1 - w(u, v) / w_max   when (u, v) is an edge
    d(u, v) = 1                     otherwise (no shared interest)

so strongly co-interested users are close and unrelated users maximally
far, which is exactly the structure both partitioners try to capture.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.social.subcommunity import Partition

__all__ = ["uig_distance_matrix", "silhouette_coefficient", "partition_silhouette"]


def uig_distance_matrix(graph: nx.Graph, nodes: list[str] | None = None) -> tuple[np.ndarray, list[str]]:
    """Dense user-user distance matrix derived from UIG weights.

    Returns ``(matrix, nodes)`` with nodes in sorted order (or the caller's
    order when *nodes* is given).
    """
    ordered = sorted(graph.nodes()) if nodes is None else list(nodes)
    index = {node: i for i, node in enumerate(ordered)}
    n = len(ordered)
    if n == 0:
        raise ValueError("empty graph")
    matrix = np.ones((n, n), dtype=np.float64)
    np.fill_diagonal(matrix, 0.0)
    weights = [weight for _, _, weight in graph.edges(data="weight", default=1.0)]
    w_max = max(weights) if weights else 1.0
    for source, target, weight in graph.edges(data="weight", default=1.0):
        if source in index and target in index:
            distance = 1.0 - weight / w_max
            matrix[index[source], index[target]] = distance
            matrix[index[target], index[source]] = distance
    return matrix, ordered


def silhouette_coefficient(labels: np.ndarray, distances: np.ndarray) -> float:
    """Mean silhouette over all points.

    For point ``i`` with intra-cluster mean distance ``a`` and smallest
    other-cluster mean distance ``b``: ``s = (b - a) / max(a, b)``.
    Singleton clusters contribute 0 (the standard convention).
    """
    labels = np.asarray(labels)
    n = labels.size
    if distances.shape != (n, n):
        raise ValueError("distance matrix shape does not match labels")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least two clusters")
    scores = np.zeros(n, dtype=np.float64)
    masks = {label: labels == label for label in unique}
    for i in range(n):
        own = masks[labels[i]].copy()
        own[i] = False
        own_count = int(own.sum())
        if own_count == 0:
            scores[i] = 0.0
            continue
        a = float(distances[i, own].mean())
        b = np.inf
        for label in unique:
            if label == labels[i]:
                continue
            b = min(b, float(distances[i, masks[label]].mean()))
        scores[i] = 0.0 if max(a, b) == 0 else (b - a) / max(a, b)
    return float(scores.mean())


def partition_silhouette(graph: nx.Graph, partition: Partition) -> float:
    """Silhouette of *partition* under the UIG-derived distance."""
    distances, nodes = uig_distance_matrix(graph)
    labels = np.array([partition.membership[node] for node in nodes])
    return silhouette_coefficient(labels, distances)
