"""Dynamic maintenance of sub-communities under social updates (§4.2.4–4.2.5).

Sharing communities are highly dynamic: new comments create or strengthen
user-user connections, and interests drift.  The paper's
``SocialUpdatesMaintenance`` (its Figure 5) processes a batch of new
connections in three steps:

1. for every new connection heavier than ``w`` — the lightest edge weight
   inside the current sub-communities — **union** the two endpoint
   sub-communities when they differ, or flag the shared one as a split
   candidate when they coincide;
2. while fewer than ``k`` sub-communities remain, **split** the flagged /
   lightest-bound sub-community at its lightest internal edge
   (single-linkage style);
3. update the chained hash index and the SAR descriptor vectors of every
   video touched by a relabelled user.

:class:`DynamicSocialIndex` owns all coupled state — the UIG, the
partition, the chained hash table, the per-video SAR vectors and the
inverted file — and keeps them mutually consistent through updates.  It
also records the cost counters of the paper's Eq. 8 cost model
(:class:`MaintenanceStats`).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.index.hashing import ChainedHashTable
from repro.index.inverted import InvertedFile
from repro.obs import get_metrics
from repro.social.descriptor import SocialDescriptor
from repro.social.subcommunity import (
    Partition,
    extract_subcommunities,
    internal_edges,
    lightest_internal_edge,
)
from repro.social.uig import build_uig

__all__ = ["Connection", "MaintenanceStats", "DynamicSocialIndex"]


@dataclass(frozen=True)
class Connection:
    """One new user-user connection: *delta* additional shared videos."""

    first: str
    second: str
    delta: int = 1


@dataclass
class MaintenanceStats:
    """Counters matching the Eq. 8 cost model.

    ``hash_ops`` counts user -> sub-community mappings (the ``|E| * c_h``
    term), ``index_updates`` the per-element hash rewrites (``t_1``),
    ``descriptor_updates`` the per-dimension vector touches (``t_2``) and
    ``split_checks`` the element checks during community splits (``t_3``).
    """

    connections: int = 0
    hash_ops: int = 0
    unions: int = 0
    splits: int = 0
    index_updates: int = 0
    descriptor_updates: int = 0
    split_checks: int = 0
    new_users: int = 0
    seconds: float = 0.0

    def merge(self, other: "MaintenanceStats") -> None:
        """Accumulate *other* into this instance."""
        self.connections += other.connections
        self.hash_ops += other.hash_ops
        self.unions += other.unions
        self.splits += other.splits
        self.index_updates += other.index_updates
        self.descriptor_updates += other.descriptor_updates
        self.split_checks += other.split_checks
        self.new_users += other.new_users
        self.seconds += other.seconds


class DynamicSocialIndex:
    """All social-side state, kept consistent under streaming updates.

    Build once from the source descriptors with :meth:`build`, then feed
    update batches through :meth:`apply_comments` (comment-level API) or
    :meth:`maintain` (connection-level API, the paper's Figure 5 input).
    """

    def __init__(
        self,
        graph: nx.Graph,
        partition: Partition,
        descriptors: dict[str, SocialDescriptor],
        uig_pair_cap: int | None = None,
    ) -> None:
        self.graph = graph
        #: The edge-generation cap the UIG was built under; comment-level
        #: updates bound their fan-out with it so incremental maintenance
        #: cannot reintroduce the quadratic cost the cap removed.
        self.uig_pair_cap = uig_pair_cap
        self._k = partition.k
        self.communities: dict[int, set[str]] = {
            cno: set(members) for cno, members in partition.communities.items()
        }
        self.hash_table = ChainedHashTable(
            num_buckets=max(16, len(partition.membership))
        )
        for user, cno in partition.membership.items():
            self.hash_table.insert(user, cno)
        self.descriptors: dict[str, SocialDescriptor] = dict(descriptors)
        self._user_videos: dict[str, set[str]] = {}
        for descriptor in descriptors.values():
            for user in descriptor.users:
                self._user_videos.setdefault(user, set()).add(descriptor.video_id)
        self.vectors: dict[str, np.ndarray] = {}
        self.inverted = InvertedFile(self._k)
        for video_id, descriptor in self.descriptors.items():
            vector = self._vectorize(descriptor.users)
            self.vectors[video_id] = vector
            self.inverted.add_video(video_id, vector)
        self._free_cnos: list[int] = []
        #: Monotone update counter — bumped by every maintenance batch so
        #: derived caches (e.g. the batch engine's SAR matrices) can detect
        #: staleness without subscribing to individual mutations.
        self.revision: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        descriptors: Iterable[SocialDescriptor],
        k: int,
        uig_pair_cap: int | None = None,
    ) -> "DynamicSocialIndex":
        """Build the index from scratch: UIG, partition, hash, vectors.

        ``uig_pair_cap`` bounds the quadratic edge generation on very
        dense descriptors (see :func:`repro.social.uig.build_uig`).
        """
        descriptor_map = {d.video_id: d for d in descriptors}
        graph = build_uig(descriptor_map.values(), pair_cap=uig_pair_cap)
        partition = extract_subcommunities(graph, k)
        return cls(graph, partition, descriptor_map, uig_pair_cap=uig_pair_cap)

    @property
    def k(self) -> int:
        """Number of sub-communities (the SAR dimensionality)."""
        return self._k

    def community_of(self, user: str) -> int | None:
        """Sub-community id of *user* via the chained hash table."""
        return self.hash_table.lookup(user)

    def _vectorize(self, users: Iterable[str]) -> np.ndarray:
        vector = np.zeros(self._k, dtype=np.float64)
        for user in users:
            cno = self.hash_table.lookup(user)
            if cno is not None and 0 <= cno < self._k:
                vector[cno] += 1.0
        return vector

    def vectorize_users(self, users: Iterable[str]) -> np.ndarray:
        """Public query-time vectorization against the live hash table."""
        return self._vectorize(users)

    def lightest_weight(self) -> float:
        """``w`` — the lightest edge weight inside any sub-community."""
        lightest = None
        for members in self.communities.values():
            edge = lightest_internal_edge(self.graph, members)
            if edge is not None and (lightest is None or edge[2] < lightest):
                lightest = edge[2]
        return 0.0 if lightest is None else float(lightest)

    # ------------------------------------------------------------------
    # Update maintenance (paper Figure 5)
    # ------------------------------------------------------------------
    def maintain(self, connections: Iterable[Connection]) -> MaintenanceStats:
        """Process a batch of new connections; returns cost counters."""
        stats = MaintenanceStats()
        started = time.perf_counter()
        threshold = self.lightest_weight()
        split_candidates: set[int] = set()

        for connection in connections:
            stats.connections += 1
            self._bump_edge(connection, stats)
            id_first = self._ensure_user(connection.first, stats)
            id_second = self._ensure_user(connection.second, stats)
            stats.hash_ops += 2
            weight = self.graph[connection.first][connection.second]["weight"]
            if weight > threshold:
                if id_first != id_second:
                    merged = self._union(id_first, id_second, stats)
                    split_candidates.discard(id_first)
                    split_candidates.discard(id_second)
                    split_candidates.add(merged)
                else:
                    split_candidates.add(id_first)

        unsplittable: set[int] = set()
        while len(self.communities) < self._k:
            target = self._pick_split_target(split_candidates, unsplittable, stats)
            if target is None:
                # Every community is atomic; the partition stays smaller
                # than k until future updates add internal structure.
                break
            if self._split(target, stats):
                unsplittable.clear()
            else:
                split_candidates.discard(target)
                unsplittable.add(target)
        stats.seconds = time.perf_counter() - started
        self.revision += 1
        # Surface the Eq. 8 cost counters as process-wide metrics, so a
        # maintenance-heavy run is diagnosable without holding on to the
        # per-batch MaintenanceStats objects.
        metrics = get_metrics()
        metrics.inc("repro_social_maintenance_batches_total")
        metrics.inc("repro_social_connections_total", stats.connections)
        metrics.inc("repro_social_unions_total", stats.unions)
        metrics.inc("repro_social_splits_total", stats.splits)
        metrics.inc("repro_social_index_updates_total", stats.index_updates)
        metrics.inc("repro_social_descriptor_updates_total", stats.descriptor_updates)
        return stats

    def apply_comments(self, comments: Iterable[tuple[str, str]]) -> MaintenanceStats:
        """Comment-level update API: ``(user_id, video_id)`` pairs.

        Derives the induced descriptor changes and user-user connections,
        then runs :meth:`maintain` on the connection batch.
        """
        connections: dict[tuple[str, str], int] = {}
        touched_videos: set[str] = set()
        for user, video_id in comments:
            descriptor = self.descriptors.get(video_id)
            existing = set(descriptor.users) if descriptor is not None else set()
            if user in existing:
                continue
            if self.uig_pair_cap is None:
                targets = existing
            else:
                # Mirror the capped build: bound the fan-out, but always
                # link at least one existing user so the commenter joins
                # the video's component instead of floating isolated.
                targets = sorted(existing)[: self.uig_pair_cap - 1]
            for other in targets:
                key = (user, other) if user < other else (other, user)
                connections[key] = connections.get(key, 0) + 1
            if descriptor is None:
                self.descriptors[video_id] = SocialDescriptor.from_users(video_id, [user])
            else:
                self.descriptors[video_id] = descriptor.with_users([user])
            self._user_videos.setdefault(user, set()).add(video_id)
            touched_videos.add(video_id)

        stats = self.maintain(
            Connection(first, second, delta)
            for (first, second), delta in sorted(connections.items())
        )
        started = time.perf_counter()
        for video_id in touched_videos:
            self._refresh_video(video_id, stats)
        stats.seconds += time.perf_counter() - started
        return stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bump_edge(self, connection: Connection, stats: MaintenanceStats) -> None:
        if connection.delta < 1:
            raise ValueError("connection delta must be >= 1")
        first, second = connection.first, connection.second
        if first == second:
            raise ValueError("self-connections are not allowed")
        if self.graph.has_edge(first, second):
            self.graph[first][second]["weight"] += connection.delta
        else:
            self.graph.add_edge(first, second, weight=connection.delta)

    def _ensure_user(self, user: str, stats: MaintenanceStats) -> int:
        """Assign brand-new users to the community of their heaviest link."""
        cno = self.hash_table.lookup(user)
        if cno is not None:
            return cno
        stats.new_users += 1
        best_cno = None
        best_weight = -1.0
        for neighbour in self.graph.neighbors(user):
            neighbour_cno = self.hash_table.lookup(neighbour)
            stats.hash_ops += 1
            if neighbour_cno is None:
                continue
            weight = self.graph[user][neighbour]["weight"]
            if weight > best_weight:
                best_weight = weight
                best_cno = neighbour_cno
        if best_cno is None:
            best_cno = min(
                self.communities, key=lambda c: len(self.communities[c])
            )
        self.communities[best_cno].add(user)
        self.hash_table.insert(user, best_cno)
        stats.index_updates += 1
        self._shift_user_vectors(user, None, best_cno, stats)
        return best_cno

    def _union(self, id_first: int, id_second: int, stats: MaintenanceStats) -> int:
        """Merge two sub-communities; the larger one's id survives."""
        keep, absorb = (
            (id_first, id_second)
            if len(self.communities[id_first]) >= len(self.communities[id_second])
            else (id_second, id_first)
        )
        moved = self.communities.pop(absorb)
        for user in moved:
            self.hash_table.insert(user, keep)
            stats.index_updates += 1
            self._shift_user_vectors(user, absorb, keep, stats)
        self.communities[keep] |= moved
        self._free_cnos.append(absorb)
        stats.unions += 1
        return keep

    def _pick_split_target(
        self, candidates: set[int], unsplittable: set[int], stats: MaintenanceStats
    ) -> int | None:
        """The splittable community with the lightest internal edge."""
        pool = [c for c in (candidates or self.communities.keys()) if c in self.communities]
        if not pool:
            pool = list(self.communities.keys())
        pool = [c for c in pool if c not in unsplittable]
        if not pool:
            pool = [c for c in self.communities if c not in unsplittable]
        best = None
        best_key = None
        for cno in pool:
            members = self.communities[cno]
            stats.split_checks += len(members)
            if len(members) < 2:
                continue
            edge = lightest_internal_edge(self.graph, members)
            if edge is None and len(self._community_components(members)) < 2:
                continue
            key = (edge[2] if edge is not None else -1.0, cno)
            if best_key is None or key < best_key:
                best_key = key
                best = cno
        return best

    def _community_components(self, members: set[str]) -> list[set[str]]:
        """Connected components of the subgraph induced by *members*.

        BFS over the live adjacency with a membership filter — avoids
        materialising networkx subgraph views on the maintenance hot path.
        """
        adjacency = self.graph.adj
        remaining = set(members)
        components: list[set[str]] = []
        while remaining:
            seed = remaining.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                if node not in adjacency:
                    continue
                for neighbour in adjacency[node]:
                    if neighbour in remaining:
                        remaining.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        return components

    def _split(self, cno: int, stats: MaintenanceStats) -> bool:
        """Split *cno* at its lightest internal boundary; False if atomic."""
        members = self.communities[cno]
        if len(members) < 2:
            return False
        edges = list(internal_edges(self.graph, members))
        stats.split_checks += len(edges)
        components = self._community_components(members)
        if len(components) < 2:
            if not edges:
                return False
            # Kruskal maximum spanning forest via union-find, then cut the
            # forest's lightest edge — single-linkage split, no nx copies.
            parent: dict[str, str] = {user: user for user in members}

            def find(node: str) -> str:
                root = node
                while parent[root] != root:
                    root = parent[root]
                while parent[node] != root:
                    parent[node], node = root, parent[node]
                return root

            edges.sort(key=lambda edge: (-edge[2], edge[0], edge[1]))
            forest_edges: list[tuple[str, str, float]] = []
            for source, target, weight in edges:
                root_s, root_t = find(source), find(target)
                if root_s != root_t:
                    parent[root_s] = root_t
                    forest_edges.append((source, target, weight))
            # The last forest edge accepted by descending-weight Kruskal is
            # the lightest one; cutting it splits the forest in two.
            forest_edges.pop()
            parent = {user: user for user in members}
            for source, target, _ in forest_edges:
                root_s, root_t = find(source), find(target)
                if root_s != root_t:
                    parent[root_s] = root_t
            groups: dict[str, set[str]] = {}
            for user in members:
                groups.setdefault(find(user), set()).add(user)
            components = list(groups.values())
        # Keep the largest part under the old id; spin the rest off.
        components.sort(key=len, reverse=True)
        self.communities[cno] = set(components[0])
        for part in components[1:]:
            new_cno = self._free_cnos.pop() if self._free_cnos else None
            if new_cno is None:
                # No free slot: merge the remainder back (cannot exceed k).
                self.communities[cno] |= set(part)
                continue
            self.communities[new_cno] = set(part)
            for user in part:
                self.hash_table.insert(user, new_cno)
                stats.index_updates += 1
                self._shift_user_vectors(user, cno, new_cno, stats)
            stats.splits += 1
            if len(self.communities) >= self._k:
                break
        return True

    def _shift_user_vectors(
        self, user: str, old_cno: int | None, new_cno: int, stats: MaintenanceStats
    ) -> None:
        """Move *user*'s unit of mass between dimensions in every video."""
        for video_id in self._user_videos.get(user, ()):
            vector = self.vectors.get(video_id)
            if vector is None:
                continue
            if old_cno is not None and 0 <= old_cno < self._k and vector[old_cno] > 0:
                vector[old_cno] -= 1.0
            if 0 <= new_cno < self._k:
                vector[new_cno] += 1.0
            stats.descriptor_updates += 1
            self.inverted.add_video(video_id, vector)

    def _refresh_video(self, video_id: str, stats: MaintenanceStats) -> None:
        """Recompute one video's vector from its descriptor (post-update)."""
        descriptor = self.descriptors[video_id]
        vector = self._vectorize(descriptor.users)
        self.vectors[video_id] = vector
        self.inverted.add_video(video_id, vector)
        stats.descriptor_updates += self._k
