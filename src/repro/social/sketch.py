"""Odd sketches — fixed-size social similarity under insertions *and* deletions.

SAR (``sar.py``) approximates the paper's Eq.-8 set Jaccard with ``k``-bucket
community histograms, which still costs a dense ``(N, k)`` float matrix plus
explicit UIG edge maintenance.  This module follows "A Fast Sketch Method for
Mining User Similarities over Fully Dynamic Graph Streams" (PAPERS.md): each
video keeps a fixed ``n``-bit *odd sketch* of its commenter set, where a user
hashes to one bit position and membership changes **toggle** that bit.  XOR is
self-inverse, so ``remove(user)`` is exactly ``add(user)`` — the structure
supports the fully dynamic comment firehose in O(words) per update with no
tombstones.

For sets A and B with odd sketches ``S(A)``, ``S(B)`` of ``n`` bits, the
symmetric difference ``|A Δ B|`` is estimated from the Hamming weight of
``S(A) XOR S(B)`` (each Δ-element toggles one bit of the XOR; collisions
cancel pairwise, giving the classic occupancy correction):

    Δ̂ = -(n / 2) · ln(1 - 2·ham / n)

and Jaccard follows from inclusion–exclusion with the exact set sizes the
store tracks anyway:

    Ĵ = (|A| + |B| - Δ̂) / (|A| + |B| + Δ̂)

clamped to [0, 1]; both-empty pairs score 0, matching
:func:`repro.social.descriptor.jaccard` and the SAR convention.

Determinism: bit positions come from ``blake2b`` keyed by the configured
seed, so a sketch is a **pure function of (user set, bits, seed)** — an
incrementally maintained bank is bit-identical to a cold rebuild, snapshots
need only persist descriptors, and every shard replica derives the same
bank independently.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

import numpy as np

__all__ = [
    "DEFAULT_SKETCH_BITS",
    "SketchBank",
    "sketch_users",
    "estimate_jaccard",
    "sketch_jaccard_batch",
]

#: Default sketch width.  512 bits = eight uint64 words per video — two
#: orders of magnitude below a k=128 SAR row — while keeping the rank
#: correlation vs exact Jaccard above the 0.9 bench floor.
DEFAULT_SKETCH_BITS = 512

_WORD_BITS = 64


def _bit_position(user: str, seed: int, bits: int) -> int:
    """The sketch bit *user* toggles — keyed blake2b, platform-stable."""
    digest = hashlib.blake2b(
        user.encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little") % bits


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(words: np.ndarray) -> np.ndarray:
        """Per-row population count of a uint64 word array."""
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _BYTE_POPCOUNT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount(words: np.ndarray) -> np.ndarray:
        as_bytes = words.reshape(words.shape[:-1] + (-1,)).view(np.uint8)
        return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)


def _validate_bits(bits: int) -> int:
    if bits < _WORD_BITS or bits % _WORD_BITS != 0:
        raise ValueError(
            f"sketch bits must be a positive multiple of {_WORD_BITS}, got {bits}"
        )
    return int(bits)


def sketch_users(
    users: Iterable[str], *, bits: int = DEFAULT_SKETCH_BITS, seed: int = 0
) -> tuple[np.ndarray, int]:
    """The ``(sketch_words, set_size)`` of a bare user set.

    Pure function of its inputs — the query-time analogue of
    :meth:`SarVectorizer.vectorize_users`, and the oracle incremental
    maintenance must stay bit-identical to.
    """
    bits = _validate_bits(bits)
    row = np.zeros(bits // _WORD_BITS, dtype=np.uint64)
    size = 0
    for user in users:
        position = _bit_position(user, seed, bits)
        row[position // _WORD_BITS] ^= np.uint64(1 << (position % _WORD_BITS))
        size += 1
    return row, size


def _estimate_symmetric_difference(hamming: float, bits: int) -> float:
    """Δ̂ from the XOR Hamming weight (occupancy-corrected, saturating).

    ``ham >= n/2`` is outside the estimator's support (the expected XOR
    weight approaches n/2 from below as Δ grows); saturate to +inf and
    let the caller clamp Jaccard to 0.
    """
    if hamming <= 0:
        return 0.0
    fill = 2.0 * hamming / bits
    if fill >= 1.0:
        return float("inf")
    return -(bits / 2.0) * float(np.log1p(-fill))


def _jaccard_from_parts(size_sum: float, delta: float) -> float:
    """Ĵ = (|A|+|B|-Δ̂) / (|A|+|B|+Δ̂), clamped to [0, 1]; 0 when both empty."""
    if size_sum <= 0:
        return 0.0
    if not np.isfinite(delta) or delta >= size_sum:
        return 0.0
    return (size_sum - delta) / (size_sum + delta)


def estimate_jaccard(
    first: np.ndarray,
    first_size: int,
    second: np.ndarray,
    second_size: int,
) -> float:
    """Estimated Jaccard of two sketched sets (0 when both are empty)."""
    first = np.asarray(first, dtype=np.uint64).reshape(-1)
    second = np.asarray(second, dtype=np.uint64).reshape(-1)
    if first.shape != second.shape:
        raise ValueError(f"sketch shapes differ: {first.shape} vs {second.shape}")
    if first_size < 0 or second_size < 0:
        raise ValueError("set sizes must be non-negative")
    bits = first.size * _WORD_BITS
    if bits == 0:
        raise ValueError("sketches must be non-empty")
    hamming = float(_popcount(first ^ second))
    delta = _estimate_symmetric_difference(hamming, bits)
    return float(_jaccard_from_parts(float(first_size + second_size), delta))


def sketch_jaccard_batch(
    query: np.ndarray,
    query_size: int,
    matrix: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Estimated Jaccard of one query sketch against every row of *matrix*.

    The batched counterpart of :func:`estimate_jaccard`, mirroring
    :func:`repro.social.sar.approx_jaccard_batch`: one XOR + popcount
    reduction over the ``(N, words)`` uint64 bank replaces N scalar calls,
    and rows are scored with the identical formula (bit-for-bit equal
    results, pinned by the test suite).
    """
    query = np.asarray(query, dtype=np.uint64).reshape(-1)
    matrix = np.asarray(matrix, dtype=np.uint64)
    if matrix.ndim != 2 or matrix.shape[1] != query.size:
        raise ValueError(f"matrix must be (N, {query.size}), got {matrix.shape}")
    if query.size == 0:
        raise ValueError("sketches must be non-empty")
    if query_size < 0:
        raise ValueError("set sizes must be non-negative")
    sizes = np.asarray(sizes, dtype=np.int64).reshape(-1)
    if sizes.size != matrix.shape[0]:
        raise ValueError(
            f"sizes must have {matrix.shape[0]} entries, got {sizes.size}"
        )
    if np.any(sizes < 0):
        raise ValueError("set sizes must be non-negative")
    bits = query.size * _WORD_BITS
    hamming = _popcount(matrix ^ query).astype(np.float64)
    fill = 2.0 * hamming / bits
    deltas = np.full(matrix.shape[0], np.inf)
    in_support = fill < 1.0
    deltas[in_support] = -(bits / 2.0) * np.log1p(-fill[in_support])
    size_sums = sizes.astype(np.float64) + float(query_size)
    scores = np.zeros(matrix.shape[0], dtype=np.float64)
    valid = (size_sums > 0) & np.isfinite(deltas) & (deltas < size_sums)
    np.divide(
        size_sums - deltas,
        size_sums + deltas,
        out=scores,
        where=valid,
    )
    return scores


class SketchBank:
    """Per-video odd sketches, maintained incrementally from the firehose.

    Rows live in a dict keyed by video id, each an immutable-by-convention
    ``(words,)`` uint64 array plus the exact commenter count — both are
    pure functions of the descriptor's user set, so incremental toggles
    stay bit-identical to :func:`sketch_users` over the same set (the
    invariant every parity test leans on).

    Callers own the membership transitions: :meth:`add_user` /
    :meth:`remove_user` must be called exactly once per genuine set
    change (a double toggle would *clear* the bit and corrupt the
    estimate), which is the same discipline the exact store already
    applies before mutating descriptors.
    """

    def __init__(self, *, bits: int = DEFAULT_SKETCH_BITS, seed: int = 0) -> None:
        self.bits = _validate_bits(bits)
        self.seed = int(seed)
        self.words = self.bits // _WORD_BITS
        self._rows: dict[str, np.ndarray] = {}
        self._sizes: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._rows

    @property
    def video_ids(self) -> list[str]:
        return list(self._rows)

    def ingest(self, video_id: str, users: Iterable[str]) -> None:
        """Sketch a (new or replaced) video's full commenter set."""
        row, size = sketch_users(users, bits=self.bits, seed=self.seed)
        self._rows[video_id] = row
        self._sizes[video_id] = size

    def retire(self, video_id: str) -> None:
        """Drop a video's sketch (no-op when absent)."""
        self._rows.pop(video_id, None)
        self._sizes.pop(video_id, None)

    def _toggle(self, video_id: str, user: str, delta: int) -> None:
        row = self._rows[video_id]
        position = _bit_position(user, self.seed, self.bits)
        row[position // _WORD_BITS] ^= np.uint64(1 << (position % _WORD_BITS))
        self._sizes[video_id] += delta

    def add_user(self, video_id: str, user: str) -> None:
        """Record *user* joining *video_id*'s commenter set (O(1))."""
        self._toggle(video_id, user, +1)

    def remove_user(self, video_id: str, user: str) -> None:
        """Record *user* leaving *video_id*'s commenter set (O(1)).

        The XOR toggle is its own inverse — deletion needs no tombstone
        and restores the exact pre-add sketch.
        """
        if self._sizes.get(video_id, 0) <= 0:
            raise ValueError(f"remove_user on empty sketch for {video_id!r}")
        self._toggle(video_id, user, -1)

    def row(self, video_id: str) -> tuple[np.ndarray, int]:
        """The ``(sketch_words, set_size)`` of one video."""
        return self._rows[video_id], self._sizes[video_id]

    def estimate(self, first_id: str, second_id: str) -> float:
        """Estimated Jaccard between two banked videos."""
        first, first_size = self.row(first_id)
        second, second_size = self.row(second_id)
        return estimate_jaccard(first, first_size, second, second_size)

    def matrix(self, video_ids: Iterable[str]) -> tuple[np.ndarray, np.ndarray]:
        """Stack rows for *video_ids* into ``((N, words) uint64, (N,) int64)``.

        The epoch freeze / batch-engine form; missing ids raise ``KeyError``
        (the caller's ordering contract, same as the SAR matrix path).
        """
        ids = list(video_ids)
        matrix = np.zeros((len(ids), self.words), dtype=np.uint64)
        sizes = np.zeros(len(ids), dtype=np.int64)
        for position, video_id in enumerate(ids):
            matrix[position] = self._rows[video_id]
            sizes[position] = self._sizes[video_id]
        return matrix, sizes

    def nbytes(self) -> int:
        """Resident sketch payload (rows + size counters), for the bench."""
        return len(self._rows) * (self.words * 8 + 8)
