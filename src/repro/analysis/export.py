"""Export experiment results as CSV / JSON for downstream analysis.

The benches print paper-style tables; real experiment pipelines also want
machine-readable output.  These helpers flatten
:class:`~repro.evaluation.harness.EffectivenessReport` objects into rows.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence

from repro.evaluation.harness import EffectivenessReport

__all__ = ["reports_to_rows", "reports_to_csv", "reports_to_json", "write_csv"]


def reports_to_rows(reports: Sequence[EffectivenessReport]) -> list[dict]:
    """One flat dict per (method, top_k) combination."""
    rows = []
    for report in reports:
        for row in report.rows:
            rows.append(
                {
                    "method": row.method,
                    "top_k": row.top_k,
                    "ar": row.ar,
                    "ac": row.ac,
                    "map": row.map,
                    "seconds": report.seconds,
                }
            )
    return rows


def reports_to_csv(reports: Sequence[EffectivenessReport]) -> str:
    """CSV text with a header row."""
    rows = reports_to_rows(reports)
    if not rows:
        raise ValueError("need at least one report")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def reports_to_json(reports: Sequence[EffectivenessReport]) -> str:
    """JSON array of flat rows."""
    return json.dumps(reports_to_rows(reports), indent=2)


def write_csv(reports: Sequence[EffectivenessReport], path) -> None:
    """Write :func:`reports_to_csv` output to *path*."""
    with open(path, "w", newline="") as handle:
        handle.write(reports_to_csv(reports))
