"""Descriptive statistics over communities, descriptors and partitions.

Operating a recommendation deployment needs observability: how active is
the community, how heavy are the descriptors the social path must chew
through, how healthy is the current sub-community partition.  These
helpers compute the numbers the paper's Section 5 quotes about its crawl
(descriptor sizes, comment volumes, sub-community size distribution) for
any dataset / index pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.community.models import CommunityDataset
from repro.social.descriptor import SocialDescriptor
from repro.social.subcommunity import Partition
import networkx as nx

__all__ = [
    "CommunityStats",
    "DescriptorStats",
    "PartitionStats",
    "community_stats",
    "descriptor_stats",
    "partition_stats",
]


@dataclass(frozen=True)
class CommunityStats:
    """Headline numbers of one dataset."""

    num_videos: int
    num_masters: int
    num_variants: int
    num_users: int
    num_comments: int
    comments_per_video_mean: float
    comments_per_video_max: int
    videos_per_topic: dict[str, int]


@dataclass(frozen=True)
class DescriptorStats:
    """Size distribution of the social descriptors."""

    count: int
    mean: float
    median: float
    p90: float
    max: int


@dataclass(frozen=True)
class PartitionStats:
    """Health of a sub-community partition."""

    k: int
    size_mean: float
    size_max: int
    singletons: int
    largest_share: float
    internal_edge_fraction: float


def community_stats(dataset: CommunityDataset, up_to_month: int = 15) -> CommunityStats:
    """Summarise *dataset* (comment stats through *up_to_month*)."""
    counts = dataset.comment_counts(up_to_month=up_to_month)
    values = list(counts.values())
    masters = sum(1 for record in dataset.records.values() if record.lineage is None)
    per_topic = {
        name: len(dataset.videos_of_topic(topic))
        for topic, name in enumerate(dataset.topics)
    }
    return CommunityStats(
        num_videos=dataset.num_videos,
        num_masters=masters,
        num_variants=dataset.num_videos - masters,
        num_users=dataset.num_users,
        num_comments=sum(values),
        comments_per_video_mean=float(np.mean(values)) if values else 0.0,
        comments_per_video_max=int(max(values)) if values else 0,
        videos_per_topic=per_topic,
    )


def descriptor_stats(descriptors: dict[str, SocialDescriptor]) -> DescriptorStats:
    """Size distribution over a descriptor map."""
    if not descriptors:
        raise ValueError("need at least one descriptor")
    sizes = np.array([len(descriptor) for descriptor in descriptors.values()])
    return DescriptorStats(
        count=int(sizes.size),
        mean=float(sizes.mean()),
        median=float(np.median(sizes)),
        p90=float(np.percentile(sizes, 90)),
        max=int(sizes.max()),
    )


def partition_stats(graph: nx.Graph, partition: Partition) -> PartitionStats:
    """Health metrics of *partition* over its UIG.

    ``internal_edge_fraction`` is the share of UIG edge weight falling
    *inside* sub-communities — near 1.0 means the partition respects the
    co-interest structure (the property SAR's approximation quality rides
    on); a low value signals chaining damage.
    """
    sizes = partition.sizes()
    total_weight = 0.0
    internal_weight = 0.0
    for source, target, weight in graph.edges(data="weight", default=1.0):
        total_weight += weight
        if partition.membership.get(source) == partition.membership.get(target):
            internal_weight += weight
    return PartitionStats(
        k=partition.k,
        size_mean=float(np.mean(sizes)),
        size_max=int(max(sizes)),
        singletons=sum(1 for size in sizes if size == 1),
        largest_share=max(sizes) / max(sum(sizes), 1),
        internal_edge_fraction=(
            internal_weight / total_weight if total_weight > 0 else 1.0
        ),
    )
