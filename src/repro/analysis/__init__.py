"""Observability: dataset/descriptor/partition statistics, result export."""

from repro.analysis.export import (
    reports_to_csv,
    reports_to_json,
    reports_to_rows,
    write_csv,
)
from repro.analysis.stats import (
    CommunityStats,
    DescriptorStats,
    PartitionStats,
    community_stats,
    descriptor_stats,
    partition_stats,
)

__all__ = [
    "CommunityStats",
    "DescriptorStats",
    "PartitionStats",
    "community_stats",
    "descriptor_stats",
    "partition_stats",
    "reports_to_csv",
    "reports_to_json",
    "reports_to_rows",
    "write_csv",
]
