"""Durable interaction logging behind ``POST /interaction``.

Interactions (watched_percent / liked feedback, shaped after the
Recommender-System-Research exemplar) are the serving-side source of the
paper's Eq.-8 comment stream — losing one silently breaks the loop from
serving back into social maintenance.  So every acknowledged interaction
is durable **before** the 200 goes out, via the same
:class:`~repro.io.wal.WriteAheadLog` machinery the index mutations use
(per-record seq + CRC32, fsync-before-ack, torn-tail repair on reopen).

Exactly-once across drain/restart comes from the ``interaction_id``:
clients supply one (the bundled client mints them), the log keeps the
ids it has acknowledged — rebuilt from disk on reopen — and a
replayed/retried POST with a known id is acknowledged again *without*
re-logging (``duplicate: true`` in the response).  The netchaos soak
asserts both halves: no acknowledged record missing after a
SIGTERM+restart, no id logged twice.

The dedupe set is **bounded** (``dedupe_capacity``, LRU-evicted): an
unbounded id set grows with the log's whole lifetime across every
restart — a memory leak a long-lived deployment cannot afford and an
adversary minting fresh ids can force.  Client retries happen within
seconds of the original request, so a window of the most recent
``dedupe_capacity`` ids preserves exactly-once for every realistic retry
while pinning memory; an id older than the whole window is
indistinguishable from new by then (the same trade TCP sequence-number
reuse and every at-least-once dedupe window makes).

Batch replay into Eq.-8 maintenance is :func:`interaction_pairs` →
``gateway.apply_comments`` — what the server's ``apply_every`` loop and
the restart path both run, and what pins the oracle replay's
``applied_seq`` semantics: the index state behind any response is
exactly the first ``applied_seq`` log records, applied in log order.
"""

from __future__ import annotations

import pathlib
import threading
import uuid
from collections import OrderedDict

from repro.io.wal import WriteAheadLog, read_wal

__all__ = [
    "InteractionLog",
    "interaction_pairs",
    "read_interactions",
    "validate_interaction",
]

#: WAL op name of one logged interaction.
OP_INTERACTION = "interaction"

_LIKED_VALUES = (-1, 0, 1)


def validate_interaction(doc) -> dict:
    """Normalize one ``POST /interaction`` body; ``ValueError`` if invalid.

    Required: ``user_id`` and ``video_id`` (non-empty strings).  Optional:
    ``watched_percent`` (0..100), ``liked`` (-1/0/1, default 0),
    ``interaction_id`` (minted when absent — but then a client retry is a
    *new* interaction; idempotent writers supply their own).
    """
    if not isinstance(doc, dict):
        raise ValueError("interaction body must be a JSON object")
    out: dict = {}
    for field in ("user_id", "video_id"):
        value = doc.get(field)
        if not isinstance(value, str) or not value:
            raise ValueError(f"interaction field {field!r} must be a non-empty string")
        out[field] = value
    watched = doc.get("watched_percent")
    if watched is not None:
        if not isinstance(watched, (int, float)) or isinstance(watched, bool):
            raise ValueError("watched_percent must be a number in 0..100")
        if not 0 <= watched <= 100:
            raise ValueError(f"watched_percent must be in 0..100, got {watched}")
        watched = float(watched)
    out["watched_percent"] = watched
    liked = doc.get("liked", 0)
    if liked not in _LIKED_VALUES:
        raise ValueError(f"liked must be one of {_LIKED_VALUES}, got {liked!r}")
    out["liked"] = int(liked)
    interaction_id = doc.get("interaction_id")
    if interaction_id is None:
        interaction_id = f"anon-{uuid.uuid4().hex}"
    elif not isinstance(interaction_id, str) or not interaction_id:
        raise ValueError("interaction_id must be a non-empty string")
    out["interaction_id"] = interaction_id
    unknown = set(doc) - {
        "user_id",
        "video_id",
        "watched_percent",
        "liked",
        "interaction_id",
        "whenReacted",  # exemplar-compat; accepted and ignored
    }
    if unknown:
        raise ValueError(f"unknown interaction fields: {sorted(unknown)}")
    return out


class InteractionLog:
    """Durable, deduplicating append log of interaction records.

    One writer lock serializes appends, so the on-disk record order *is*
    the application order ``applied_seq`` refers to.  Reopening an
    existing log (the restart path) rebuilds the dedupe set and sequence
    from disk.
    """

    #: Default bound of the dedupe-id LRU window.
    DEDUPE_CAPACITY = 65536

    def __init__(
        self,
        path: str | pathlib.Path,
        faults=None,
        sync: bool = True,
        dedupe_capacity: int | None = None,
    ) -> None:
        capacity = self.DEDUPE_CAPACITY if dedupe_capacity is None else int(dedupe_capacity)
        if capacity < 1:
            raise ValueError(f"dedupe_capacity must be >= 1, got {capacity}")
        self.dedupe_capacity = capacity
        self.path = pathlib.Path(path)
        self._wal = WriteAheadLog(self.path, faults=faults, sync=sync)
        self._lock = threading.Lock()
        #: Most-recent ``dedupe_capacity`` acknowledged ids, LRU order.
        self._seen: OrderedDict[str, None] = OrderedDict()
        for record in read_wal(self.path, missing_ok=True).records:
            if record.op == OP_INTERACTION:
                self._remember(record.payload["interaction_id"])

    def _remember(self, interaction_id: str) -> None:
        self._seen[interaction_id] = None
        self._seen.move_to_end(interaction_id)
        while len(self._seen) > self.dedupe_capacity:
            self._seen.popitem(last=False)

    @property
    def seq(self) -> int:
        """Sequence number of the last durable record."""
        return self._wal.seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def append(self, interaction: dict) -> tuple[int, bool]:
        """Durably log one *validated* interaction.

        Returns ``(seq, duplicate)``: for a known ``interaction_id`` the
        record is **not** re-logged and the current sequence comes back
        with ``duplicate=True`` — acknowledging a client retry without
        double-counting the comment edge.  A duplicate hit refreshes the
        id's LRU position, so an id being actively retried cannot age
        out of the window mid-retry-storm.
        """
        with self._lock:
            interaction_id = interaction["interaction_id"]
            if interaction_id in self._seen:
                self._seen.move_to_end(interaction_id)
                return self._wal.seq, True
            seq = self._wal.append(OP_INTERACTION, dict(interaction))
            self._remember(interaction_id)
            return seq, False

    def flush_and_close(self) -> None:
        """Close the underlying handle (drain path; reopened on append)."""
        with self._lock:
            self._wal.close()


def read_interactions(path: str | pathlib.Path) -> list[dict]:
    """Every durable interaction payload, in log (= application) order.

    Each dict additionally carries its ``seq``.  Tolerates a torn tail
    exactly like WAL recovery does — a torn record was never
    acknowledged, so dropping it loses nothing a client was promised.
    """
    out = []
    for record in read_wal(path, missing_ok=True).records:
        if record.op == OP_INTERACTION:
            payload = dict(record.payload)
            payload["seq"] = record.seq
            out.append(payload)
    return out


def interaction_pairs(records) -> list[tuple[str, str]]:
    """``(user_id, video_id)`` comment pairs for ``apply_comments``.

    Every interaction counts as one Eq.-8 comment edge regardless of
    ``liked`` sign — the paper's maintenance is over who commented on
    what, and a dislike is still engagement evidence.
    """
    return [(r["user_id"], r["video_id"]) for r in records]
