"""The HTTP serving front-end: stdlib server over the serving gateway.

Two layers, split so the wire behaviour is testable without sockets:

* :class:`RecommendService` — the transport-independent core.  It owns
  routing, parameter/body validation, the per-client token-bucket
  limiter, the epoch-keyed response cache, durable interaction logging
  with ``applied_seq`` bookkeeping, and the drain flag.  ``handle()``
  maps *any* raised exception through the protocol's status table — a
  response never carries a raw traceback.
* :class:`ReproHTTPServer` — a ``ThreadingHTTPServer`` wrapper that
  feeds requests into the service, tracks in-flight requests for
  graceful drain, and hosts the **network fault scope**: the registered
  ``net.request`` / ``net.response`` crash points (FaultPlan-armable in
  process) and the deterministic :class:`ChaosSchedule` the multi-process
  netchaos soak drives via ``repro serve --chaos-*`` (slow-request
  injection and mid-response connection aborts — the response is
  truncated against its own ``Content-Length`` and the socket closed, so
  clients exercise their short-read handling).

Deadline → status contract (DESIGN §14): a request's ``X-Deadline-Ms``
threads into the gateway's chunked scan; an expired deadline comes back
as **504 with the best-effort partial ranking in the body**, so a 200 is
always a *complete* ranking on its pinned epoch — the invariant the
netchaos oracle replays bit for bit.  Breaker-degraded (content-only)
rankings stay 200 with ``degraded: true``: the ranking is valid, just
social-blind.

``applied_seq`` pins the index state behind a response: the number of
interaction-log records folded into the serving index (epoch ids reset
across restarts; the log-derived count does not).  The service keeps a
small epoch-key → applied_seq map updated at every apply, so a response
reports the count *its* pinned epoch was built from even while an apply
races it.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.defense.config import DefenseConfig
from repro.defense.quarantine import SpamGuard, replay_quarantine
from repro.errors import RateLimitedError, SpamQuarantinedError
from repro.net.cache import ResponseCache
from repro.net.interactions import (
    InteractionLog,
    interaction_pairs,
    read_interactions,
    validate_interaction,
)
from repro.net.protocol import (
    HEADER_CACHE,
    HEADER_CLIENT_ID,
    HEADER_DEADLINE_MS,
    dump_body,
    error_envelope,
    map_exception,
    recommendation_body,
)
from repro.net.ratelimit import TokenBucketLimiter
from repro.obs import get_metrics
from repro.testing.faults import (
    InjectedCrashError,
    InjectedFaultError,
    register_crash_point,
)

__all__ = [
    "ChaosSchedule",
    "NET_REQUEST_POINT",
    "NET_RESPONSE_POINT",
    "NetConfig",
    "RecommendService",
    "ReproHTTPServer",
]

#: Fired when a request arrives, before it is dispatched.  ``slow_at``
#: models a saturated accept path; ``fail_at`` a front-end hiccup (the
#: request is answered 503, never half-processed).
NET_REQUEST_POINT = register_crash_point(
    "net.request",
    "http front-end: request received, before dispatch (slow/fail injectable)",
)
#: Fired after the response is computed, before its body is written.
#: ``abort_at`` models a connection dying mid-response: the client gets
#: headers plus a truncated body, then a closed socket.
NET_RESPONSE_POINT = register_crash_point(
    "net.response",
    "http front-end: response computed, before the body write (abort = "
    "mid-response connection loss)",
)


@dataclass(frozen=True)
class NetConfig:
    """Serving knobs of the HTTP front-end.

    Attributes
    ----------
    default_deadline_ms:
        Deadline applied to requests that send no ``X-Deadline-Ms``
        (``None`` = unlimited scan).
    rate_limit / rate_burst:
        Per-client token bucket: sustained requests/second and burst
        capacity (``rate_limit <= 0`` disables limiting).
    drain_timeout:
        Seconds :meth:`ReproHTTPServer.drain` waits for in-flight
        requests before shutting the listener down anyway.
    cache_capacity:
        Entries of the epoch-keyed response cache (0 disables).
    max_body_bytes:
        Largest accepted request body; beyond it the request is refused
        with 413 without reading the payload.
    apply_every:
        Fold logged interactions into the serving index (one
        ``apply_comments`` batch + epoch publication) every N records
        (0 = log only; a restart still applies the whole log).
    defense:
        Optional :class:`~repro.defense.config.DefenseConfig`.  When its
        ``quarantine`` knob is on, a :class:`~repro.defense.quarantine.
        SpamGuard` screens every apply batch: burst-anomalous users'
        comments divert into a quarantine WAL (``<interactions
        path>.quarantine``) instead of the social state, and a POST from
        an already-*confirmed* spammer is refused with 429 before it is
        even logged.  ``None`` (the default) keeps the pre-defense
        behaviour bit for bit.
    """

    default_deadline_ms: float | None = None
    rate_limit: float = 0.0
    rate_burst: int = 20
    drain_timeout: float = 5.0
    cache_capacity: int = 1024
    max_body_bytes: int = 64 * 1024
    apply_every: int = 0
    defense: DefenseConfig | None = None

    def __post_init__(self) -> None:
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {self.default_deadline_ms}"
            )
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout}")
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {self.max_body_bytes}")
        if self.apply_every < 0:
            raise ValueError(f"apply_every must be >= 0, got {self.apply_every}")


@dataclass
class ChaosSchedule:
    """Deterministic request-counter chaos: every Nth request misbehaves.

    ``slow_every`` sleeps ``slow_seconds`` before dispatch (a saturated
    server); ``abort_every`` truncates the response body mid-write and
    closes the socket (a dying connection).  Counter-based, so two runs
    with the same request interleaving inject at the same requests — and
    the *rate* is exact regardless of timing.
    """

    slow_every: int = 0
    slow_seconds: float = 0.02
    abort_every: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    @property
    def active(self) -> bool:
        return self.slow_every > 0 or self.abort_every > 0

    def next(self) -> tuple[bool, bool]:
        """``(slow, abort)`` verdict for the next request."""
        with self._lock:
            self._count += 1
            n = self._count
        slow = self.slow_every > 0 and n % self.slow_every == 0
        abort = self.abort_every > 0 and n % self.abort_every == 0
        return slow, abort


def _membership_probe(gateway):
    """A ``(user, video) -> already-a-member?`` probe over *gateway*.

    The spam guard uses it to avoid recording no-op applications as
    revocable: un-applying a comment whose user was already in the
    video's descriptor would remove a membership the spammer never
    added.  Descriptors replicate to every shard, so shard 0 answers
    for a sharded gateway.  Advisory — a stale read only widens or
    narrows the revocation set, never corrupts state.
    """
    index = getattr(gateway, "_master", None)
    if index is None:
        sharded = getattr(gateway, "sharded", None)
        if sharded is None:
            return None
        index = sharded.shards[0]
    store = index.social_store

    def probe(user: str, video: str) -> bool:
        descriptor = store.descriptors.get(video)
        return descriptor is not None and user in descriptor.users

    return probe


def _header(headers, name: str):
    """Case-tolerant header lookup (email.Message or a plain dict)."""
    value = headers.get(name)
    if value is None and hasattr(headers, "items"):
        wanted = name.lower()
        for key, candidate in headers.items():
            if str(key).lower() == wanted:
                return candidate
    return value


class RecommendService:
    """Transport-independent request handling over a serving gateway.

    *gateway* is a :class:`~repro.serving.gateway.ServingGateway` or
    :class:`~repro.sharding.gateway.ShardedGateway` (duck-typed: both
    expose ``recommend`` / ``apply_comments`` and an epoch identity).
    *interactions* is the durable log; any records already on disk are
    replayed into the gateway **before** serving starts, so a restarted
    server's rankings reflect every interaction it ever acknowledged.
    """

    def __init__(
        self,
        gateway,
        interactions: InteractionLog,
        config: NetConfig | None = None,
        algorithm: str = "csf-sar-h",
        clock=time.monotonic,
    ) -> None:
        self.gateway = gateway
        self.interactions = interactions
        self.config = config or NetConfig()
        self.algorithm = algorithm
        self.limiter = TokenBucketLimiter(
            self.config.rate_limit, self.config.rate_burst, clock=clock
        )
        self.cache = ResponseCache(self.config.cache_capacity)
        self._draining = threading.Event()
        self._apply_lock = threading.Lock()
        self._pending: list[dict] = []
        self._seq_by_epoch: OrderedDict = OrderedDict()
        defense = self.config.defense
        self.guard: SpamGuard | None = None
        withheld: set[int] = set()
        revoke_pairs: list[tuple[str, str]] = []
        if defense is not None and defense.quarantine:
            quarantine_path = interactions.path.with_name(
                interactions.path.name + ".quarantine"
            )
            # The replay scan runs before the guard opens the log so the
            # restart withholds exactly what the previous run withheld.
            qreplay = replay_quarantine(quarantine_path)
            withheld = qreplay.withheld_refs
            revoke_pairs = qreplay.revoke_pairs
            self.guard = SpamGuard(
                defense,
                wal_path=quarantine_path,
                membership=_membership_probe(gateway),
            )
        replayed = read_interactions(interactions.path)
        to_apply = [r for r in replayed if r["seq"] not in withheld]
        if to_apply:
            # One exact-mode batch; batch-split invariance makes this
            # bit-identical to the incremental applies of the previous
            # run, whatever its apply_every cadence was.
            gateway.apply_comments(interaction_pairs(to_apply))
        if revoke_pairs:
            # Confirmed revocations re-apply after the interaction replay,
            # matching the live ordering (applied first, revoked later).
            gateway.remove_comments(revoke_pairs)
        self._applied_seq = len(replayed)
        self._record_epoch_seq()

    # ------------------------------------------------------------------
    # Epoch / applied_seq bookkeeping
    # ------------------------------------------------------------------
    def _current_epoch_key(self):
        epochs = getattr(self.gateway, "current_epochs", None)
        if epochs is not None:
            return tuple(epoch.epoch_id for epoch in epochs)
        return self.gateway.current_epoch.epoch_id

    @staticmethod
    def _result_epoch_key(result):
        epoch_ids = getattr(result, "epoch_ids", None)
        if epoch_ids is not None:
            return tuple(epoch_ids)
        return result.epoch_id

    def _record_epoch_seq(self) -> None:
        key = self._current_epoch_key()
        self._seq_by_epoch[key] = self._applied_seq
        while len(self._seq_by_epoch) > 64:
            self._seq_by_epoch.popitem(last=False)

    def _applied_for(self, epoch_key) -> int:
        seq = self._seq_by_epoch.get(epoch_key)
        if seq is None:
            # The query pinned an epoch a racing apply published before
            # recording its seq; the lock orders us after that update.
            with self._apply_lock:
                seq = self._seq_by_epoch.get(epoch_key, self._applied_seq)
        return seq

    @property
    def applied_seq(self) -> int:
        """Interaction-log records folded into the serving index so far."""
        return self._applied_seq

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Refuse new work (503, readyz red); in-flight requests finish."""
        self._draining.set()
        get_metrics().set_gauge("repro_http_draining", 1)

    def _has_video(self, video_id: str) -> bool:
        epochs = getattr(self.gateway, "current_epochs", None)
        if epochs is not None:
            return any(video_id in epoch.series for epoch in epochs)
        return video_id in self.gateway.current_epoch.series

    def _video_ids(self) -> list[str]:
        epochs = getattr(self.gateway, "current_epochs", None)
        if epochs is not None:
            merged: list[str] = []
            for epoch in epochs:
                merged.extend(epoch.video_ids)
            return sorted(merged)
        return list(self.gateway.current_epoch.video_ids)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def _route_label(path: str) -> str:
        if path.startswith("/recommend/"):
            return "recommend"
        return {
            "/interaction": "interaction",
            "/healthz": "healthz",
            "/readyz": "readyz",
            "/stats": "stats",
            "/videos": "videos",
        }.get(path, "other")

    def handle(
        self,
        method: str,
        path: str,
        params: dict | None = None,
        headers=None,
        body: bytes = b"",
        client: str = "-",
    ) -> tuple[int, dict, bytes]:
        """One request → ``(status, extra_headers, body_bytes)``.

        Every exception funnels through the protocol status table; the
        only headers the caller must add are Content-Length and a
        Content-Type default of ``application/json`` (overridable via the
        returned headers, e.g. the Prometheus exposition).
        """
        params = params or {}
        headers = headers if headers is not None else {}
        route = self._route_label(path)
        metrics = get_metrics()
        try:
            with metrics.time("repro_http_latency_seconds", route=route):
                status, extra, payload = self._dispatch(
                    method, path, route, params, headers, body, client
                )
        except RateLimitedError as error:
            metrics.inc("repro_http_rate_limited_total")
            status, envelope, extra = map_exception(error)
            payload = dump_body(envelope)
        except Exception as error:  # noqa: BLE001 - typed mapping, no tracebacks
            status, envelope, extra = map_exception(error)
            payload = dump_body(envelope)
        metrics.inc("repro_http_requests_total", route=route, status=str(status))
        return status, extra, payload

    def _dispatch(self, method, path, route, params, headers, body, client):
        if route == "healthz":
            return 200, {}, dump_body({"status": "ok"})
        if route == "readyz":
            if self.draining:
                return 503, {}, dump_body({"status": "draining"})
            return 200, {}, dump_body(
                {
                    "status": "ready",
                    "epoch": self._current_epoch_key(),
                    "applied_seq": self._applied_seq,
                }
            )
        if route == "stats":
            return self._handle_stats(params)
        if route == "videos":
            return self._handle_videos(params)
        if route == "recommend":
            if method != "GET":
                return 405, {}, dump_body(
                    error_envelope("method_not_allowed", f"{method} /recommend/*")
                )
            if self.draining:
                return 503, {}, dump_body(
                    error_envelope("draining", "server is draining; retry elsewhere")
                )
            return self._handle_recommend(
                path[len("/recommend/") :], params, headers, client
            )
        if route == "interaction":
            if method != "POST":
                return 405, {}, dump_body(
                    error_envelope("method_not_allowed", f"{method} /interaction")
                )
            if self.draining:
                return 503, {}, dump_body(
                    error_envelope("draining", "server is draining; retry elsewhere")
                )
            return self._handle_interaction(body, client)
        return 404, {}, dump_body(error_envelope("not_found", f"no route {path!r}"))

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _handle_stats(self, params):
        metrics = get_metrics()
        if params.get("format") == "prom":
            text = metrics.to_prometheus().encode("utf-8")
            return 200, {"Content-Type": "text/plain; version=0.0.4"}, text
        return 200, {}, dump_body(metrics.snapshot())

    def _handle_videos(self, params):
        ids = self._video_ids()
        limit = params.get("limit")
        if limit is not None:
            limit = int(limit)
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
            shown = ids[:limit]
        else:
            shown = ids
        return 200, {}, dump_body({"count": len(ids), "videos": shown})

    def _deadline_seconds(self, headers) -> float | None:
        raw = _header(headers, HEADER_DEADLINE_MS)
        if raw is None:
            ms = self.config.default_deadline_ms
            return None if ms is None else ms / 1000.0
        try:
            ms = float(raw)
        except (TypeError, ValueError):
            raise ValueError(f"invalid {HEADER_DEADLINE_MS} header {raw!r}") from None
        if ms <= 0:
            raise ValueError(f"{HEADER_DEADLINE_MS} must be > 0, got {ms:g}")
        return ms / 1000.0

    def _handle_recommend(self, video_id, params, headers, client):
        if not video_id:
            raise KeyError("empty video id")
        metrics = get_metrics()
        self.limiter.require(client)
        top_k = int(params.get("top_k", "10"))
        if not 1 <= top_k <= 1000:
            raise ValueError(f"top_k must be in 1..1000, got {top_k}")
        deadline = self._deadline_seconds(headers)
        deadline_class = "none" if deadline is None else f"{deadline:g}"
        request_key = f"/recommend/{video_id}?top_k={top_k}&deadline={deadline_class}"
        cached = self.cache.get(self._current_epoch_key(), request_key)
        if cached is not None:
            metrics.inc("repro_http_cache_hit_total")
            status, extra, payload = cached
            return status, {**extra, HEADER_CACHE: "hit"}, payload
        metrics.inc("repro_http_cache_miss_total")
        metrics.set_gauge("repro_http_cache_invalidate_total", self.cache.invalidations)
        metrics.set_gauge("repro_http_cache_stale_total", self.cache.stale_rejections)
        if not self._has_video(video_id):
            raise KeyError(f"unknown video {video_id!r}")
        result = self.gateway.recommend(video_id, top_k, deadline=deadline)
        epoch_key = self._result_epoch_key(result)
        body = recommendation_body(
            video_id,
            self.algorithm,
            top_k,
            result,
            self._applied_for(epoch_key),
            list(epoch_key) if isinstance(epoch_key, tuple) else epoch_key,
        )
        payload = dump_body(body)
        if result.partial:
            # The deadline expired mid-scan: the prefix ranking rides in
            # the 504 body, and 200 stays reserved for complete rankings.
            return 504, {HEADER_CACHE: "miss"}, payload
        if not result.degraded:
            self.cache.put(epoch_key, request_key, 200, {}, payload)
        return 200, {HEADER_CACHE: "miss"}, payload

    def _handle_interaction(self, body, client):
        metrics = get_metrics()
        self.limiter.require(client)
        if len(body) > self.config.max_body_bytes:
            return 413, {}, dump_body(
                error_envelope(
                    "too_large",
                    f"body of {len(body)} bytes exceeds the "
                    f"{self.config.max_body_bytes}-byte limit",
                )
            )
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ValueError("request body is not valid JSON") from None
        record = validate_interaction(doc)
        if not self._has_video(record["video_id"]):
            raise KeyError(f"unknown video {record['video_id']!r}")
        if self.guard is not None and self.guard.state_of(record["user_id"]) == (
            "confirmed"
        ):
            # A confirmed spammer's POST is refused before it is logged:
            # nothing to withhold on replay, nothing durable to pay for.
            metrics.inc("repro_defense_blocked_comments_total")
            raise SpamQuarantinedError(
                f"user {record['user_id']!r} is quarantined as a spammer",
                retry_after_ms=self.config.defense.spam_window * 1000.0,
            )
        with self._apply_lock:
            seq, duplicate = self.interactions.append(record)
            if not duplicate:
                self._pending.append(dict(record, seq=seq))
                self._maybe_apply_locked()
        metrics.inc(
            "repro_http_interactions_total",
            result="duplicate" if duplicate else "logged",
        )
        return 200, {}, dump_body(
            {
                "status": "logged",
                "interaction_id": record["interaction_id"],
                "seq": seq,
                "duplicate": duplicate,
                "applied_seq": self._applied_seq,
            }
        )

    def _maybe_apply_locked(self) -> None:
        """Fold the pending batch into the index (apply lock held)."""
        if not self.config.apply_every:
            return
        if len(self._pending) < self.config.apply_every:
            return
        batch, self._pending = self._pending, []
        if self.guard is not None:
            verdict = self.guard.filter(
                interaction_pairs(batch), refs=[r["seq"] for r in batch]
            )
            if verdict.passed:
                self.gateway.apply_comments(verdict.passed)
            if verdict.revoked:
                self.gateway.remove_comments(verdict.revoked)
        else:
            self.gateway.apply_comments(interaction_pairs(batch))
        self._applied_seq += len(batch)
        self._record_epoch_seq()
        get_metrics().inc("repro_http_applies_total")
        get_metrics().set_gauge("repro_http_applied_seq", self._applied_seq)

    def poll_quarantine(self) -> None:
        """Release-on-clear sweep without new traffic (idle ticks).

        Suspects whose burst has aged out of the spam window get their
        held comments applied — late, not lost — even when no further
        interactions arrive to trigger a batch.
        """
        if self.guard is None:
            return
        with self._apply_lock:
            verdict = self.guard.poll()
            if verdict.passed:
                self.gateway.apply_comments(verdict.passed)
            if verdict.revoked:
                self.gateway.remove_comments(verdict.revoked)
            if verdict.passed or verdict.revoked:
                self._record_epoch_seq()

    def flush(self) -> None:
        """Close the interaction log cleanly (the drain path's last act).

        Pending-but-unapplied records are *not* force-applied: they are
        durable in the log, and the restart replay folds them in — which
        is exactly what ``applied_seq`` semantics require.
        """
        self.interactions.flush_and_close()
        if self.guard is not None:
            self.guard.close()


class ReproHTTPServer:
    """Threaded HTTP server feeding :class:`RecommendService`.

    *chaos* (a :class:`ChaosSchedule`) and *faults* (a
    :class:`~repro.testing.faults.FaultPlan` armed at the ``net.*``
    points) are both optional; the soak drives the former via CLI flags,
    in-process tests the latter.  ``port=0`` binds an ephemeral port —
    read the real one from :attr:`address`.
    """

    def __init__(
        self,
        service: RecommendService,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: ChaosSchedule | None = None,
        faults=None,
    ) -> None:
        self.service = service
        self.chaos = chaos
        self.faults = faults
        self._inflight = 0
        self._inflight_cond = threading.Condition(threading.Lock())
        self._serving = threading.Event()
        self._closed = False
        self._thread: threading.Thread | None = None
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self.httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self.httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _track(self, delta: int) -> None:
        with self._inflight_cond:
            self._inflight += delta
            if self._inflight == 0:
                self._inflight_cond.notify_all()
        get_metrics().set_gauge("repro_http_inflight", self._inflight)

    def serve_forever(self) -> None:
        """Serve until :meth:`drain` (blocking; the CLI's main loop)."""
        self._serving.set()
        self.httpd.serve_forever(poll_interval=0.05)

    def start(self) -> "ReproHTTPServer":
        """Serve on a background thread; returns self (for tests)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def drain(self, timeout: float | None = None) -> int:
        """Graceful shutdown; returns requests still in flight at cutoff.

        Order matters: (1) flip the drain flag — new requests get clean
        503s and ``/readyz`` goes red; (2) wait up to the drain budget
        for in-flight requests to finish; (3) stop the listener; (4)
        flush the interaction log.  Durability first, availability last.
        """
        if self._closed:
            return 0
        self._closed = True
        self.service.begin_drain()
        budget = self.service.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(remaining)
            leftover = self._inflight
        if self._serving.is_set():
            self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        self.service.flush()
        get_metrics().inc("repro_http_drains_total")
        return leftover

    def __enter__(self) -> "ReproHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.drain()


def _make_handler(server: ReproHTTPServer):
    """Build the request-handler class bound to one :class:`ReproHTTPServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-net"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging is metrics' job; stderr stays quiet

        def do_GET(self):  # noqa: N802 - stdlib casing
            self._serve("GET")

        def do_POST(self):  # noqa: N802 - stdlib casing
            self._serve("POST")

        def _serve(self, method: str) -> None:
            server._track(+1)
            try:
                self._serve_tracked(method)
            except (BrokenPipeError, ConnectionResetError):
                # The peer hung up mid-response (or our own injected
                # abort); nothing to answer.
                self.close_connection = True
            finally:
                server._track(-1)

        def _serve_tracked(self, method: str) -> None:
            parsed = urlsplit(self.path)
            params = {
                key: values[0] for key, values in parse_qs(parsed.query).items()
            }
            length = int(self.headers.get("Content-Length") or 0)
            service = server.service
            if length > service.config.max_body_bytes:
                # Refuse before reading the payload; the unread body makes
                # the connection unusable, so close it.
                self.close_connection = True
                self._write(
                    413,
                    {},
                    dump_body(
                        error_envelope(
                            "too_large",
                            f"declared body of {length} bytes exceeds the "
                            f"{service.config.max_body_bytes}-byte limit",
                        )
                    ),
                )
                return
            body = self.rfile.read(length) if length else b""
            slow = abort = False
            if server.chaos is not None:
                slow, abort = server.chaos.next()
            if server.faults is not None:
                try:
                    server.faults.fire(NET_REQUEST_POINT)
                except InjectedFaultError as error:
                    self._write(
                        503, {}, dump_body(error_envelope("fault_injected", str(error)))
                    )
                    return
                except InjectedCrashError:
                    # Connection dies before any response byte.
                    self.close_connection = True
                    return
            if slow:
                get_metrics().inc("repro_http_chaos_total", kind="slow")
                time.sleep(server.chaos.slow_seconds)
            client = _header(self.headers, HEADER_CLIENT_ID) or self.client_address[0]
            status, extra, payload = service.handle(
                method, parsed.path, params, self.headers, body, client
            )
            if server.faults is not None:
                try:
                    server.faults.fire(NET_RESPONSE_POINT)
                except (InjectedCrashError, InjectedFaultError):
                    abort = True
            self._write(status, extra, payload, abort=abort)

        def _write(self, status, extra, payload, abort=False) -> None:
            self.send_response(status)
            headers = dict(extra)
            self.send_header(
                "Content-Type", headers.pop("Content-Type", "application/json")
            )
            self.send_header("Content-Length", str(len(payload)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            if abort and len(payload) > 1:
                get_metrics().inc("repro_http_chaos_total", kind="abort")
                # Half the promised body, then a dead socket: the client
                # sees a short read against Content-Length.
                self.wfile.write(payload[: len(payload) // 2])
                self.wfile.flush()
                self.close_connection = True
                try:
                    self.connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return
            self.wfile.write(payload)

        def finish(self):
            try:
                super().finish()
            except OSError:
                pass  # aborted sockets fail their final flush; expected

    return Handler
