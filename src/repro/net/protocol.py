"""Wire protocol of the HTTP serving front-end.

Everything the server and the bundled client must agree on, in one
dependency-light module: header names, the JSON error envelope, and the
**typed error → HTTP status mapping table**.  The table is data
(:data:`STATUS_TABLE`), not an if-chain, so tests can assert the whole
mapping and the docs can render it verbatim.

Design rules (DESIGN §14):

* a client mistake is a 4xx with a machine-readable ``kind``; a serving
  failure is a 5xx; **no response ever carries a raw traceback**;
* back-pressure (admission shed, rate limit) is 429 with a
  ``Retry-After`` hint derived from the server's own service-time
  estimate — clients never hardcode a backoff;
* a deadline that expires mid-scan is 504 with the best-effort partial
  ranking *in the body* (the work already done is not thrown away);
* breaker-open / social-degraded service stays 200 — the ranking is
  valid, just content-only — flagged ``degraded: true`` with reasons.
"""

from __future__ import annotations

import json
import math

from repro.errors import (
    DurabilityError,
    NetClientError,
    OverloadedError,
    RateLimitedError,
    ReproError,
    ServingError,
    SocialStoreUnavailableError,
    SpamQuarantinedError,
)

__all__ = [
    "HEADER_CACHE",
    "HEADER_CLIENT_ID",
    "HEADER_DEADLINE_MS",
    "HEADER_RETRY_AFTER",
    "HEADER_RETRY_AFTER_MS",
    "STATUS_TABLE",
    "dump_body",
    "error_envelope",
    "map_exception",
    "recommendation_body",
    "retry_after_headers",
]

#: Per-request deadline in milliseconds; propagated into the gateway's
#: chunked candidate scan.
HEADER_DEADLINE_MS = "X-Deadline-Ms"
#: Rate-limiter client key (falls back to the peer address).
HEADER_CLIENT_ID = "X-Client-Id"
#: Standard backoff hint on 429/503 (integer seconds, always >= 1).
HEADER_RETRY_AFTER = "Retry-After"
#: Millisecond-precision companion of ``Retry-After`` (sub-second
#: backoffs round to 1 s in the standard header; clients prefer this).
HEADER_RETRY_AFTER_MS = "X-Retry-After-Ms"
#: ``hit`` / ``miss`` verdict of the epoch-keyed response cache.
HEADER_CACHE = "X-Cache"

#: The typed error → HTTP status mapping, most-specific first.  Each row
#: is ``(exception class, status, kind)``; :func:`map_exception` walks it
#: top to bottom, so a subclass must appear before its base.
STATUS_TABLE: tuple[tuple[type[BaseException], int, str], ...] = (
    (RateLimitedError, 429, "rate_limited"),
    (OverloadedError, 429, "overloaded"),
    (SpamQuarantinedError, 429, "spam_quarantined"),
    (SocialStoreUnavailableError, 503, "social_unavailable"),
    (DurabilityError, 500, "durability"),
    (ServingError, 500, "serving"),
    (NetClientError, 502, "upstream"),
    (ReproError, 500, "serving"),
    (KeyError, 404, "not_found"),
    (ValueError, 400, "bad_request"),
    (Exception, 500, "internal"),
)


def error_envelope(kind: str, message: str, **extra) -> dict:
    """The JSON error body: ``{"error": {"kind", "message", ...}}``."""
    body = {"kind": kind, "message": str(message)}
    body.update(extra)
    return {"error": body}


def retry_after_headers(retry_after_ms: float | None) -> dict[str, str]:
    """``Retry-After`` (+ millisecond companion) headers for a hint.

    The standard header is ceil'd to whole seconds and floored at 1 — a
    0-second ``Retry-After`` reads as "retry immediately", which defeats
    the hint.  Absent hints produce no headers at all.
    """
    if retry_after_ms is None:
        return {}
    ms = max(1.0, float(retry_after_ms))
    return {
        HEADER_RETRY_AFTER: str(max(1, math.ceil(ms / 1000.0))),
        HEADER_RETRY_AFTER_MS: f"{ms:.0f}",
    }


def map_exception(error: BaseException) -> tuple[int, dict, dict[str, str]]:
    """``(status, json_body, extra_headers)`` for a caught exception.

    Walks :data:`STATUS_TABLE` top to bottom; the message is the
    exception's one-line string (``KeyError`` unwraps its args so the id
    renders without quotes-in-quotes).  A ``retry_after_ms`` attribute on
    the exception lands both in the body and in the ``Retry-After``
    headers.  Never returns a traceback.
    """
    message = str(error)
    if isinstance(error, KeyError) and error.args:
        message = str(error.args[0])
    for cls, status, kind in STATUS_TABLE:
        if isinstance(error, cls):
            extra: dict = {}
            headers: dict[str, str] = {}
            hint = getattr(error, "retry_after_ms", None)
            if hint is not None:
                extra["retry_after_ms"] = float(hint)
                headers = retry_after_headers(hint)
            return status, error_envelope(kind, message, **extra), headers
    # Unreachable: the table ends with Exception.
    return 500, error_envelope("internal", message), {}


def recommendation_body(
    query_id: str,
    algorithm: str,
    top_k: int,
    result,
    applied_seq: int,
    epoch_key,
) -> dict:
    """The JSON body of a recommendation response.

    Shape follows the Recommender-System-Research exemplar
    (``recommendations: [{"videoId", "score"}]`` + ``algorithm``), plus
    the serving metadata this repo's robustness story runs on:
    ``epoch`` / ``applied_seq`` pin the exact index state for bit-exact
    oracle replay, and ``degraded`` / ``partial`` / ``reasons`` carry the
    gateway's service-quality verdict onto the wire.
    """
    scores = getattr(result, "scores", None)
    recommendations = [
        {"videoId": vid}
        if scores is None
        else {"videoId": vid, "score": float(scores[rank])}
        for rank, vid in enumerate(result)
    ]
    return {
        "query": query_id,
        "algorithm": algorithm,
        "top_k": int(top_k),
        "recommendations": recommendations,
        "epoch": epoch_key,
        "applied_seq": int(applied_seq),
        "omega_served": float(getattr(result, "omega_served", 0.0)),
        "degraded": bool(getattr(result, "degraded", False)),
        "partial": bool(getattr(result, "partial", False)),
        "reasons": list(getattr(result, "reasons", ())),
        "scored": int(getattr(result, "scored", 0)),
        "total": int(getattr(result, "total", 0)),
    }


def dump_body(body: dict) -> bytes:
    """Canonical UTF-8 JSON encoding of a response body."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
