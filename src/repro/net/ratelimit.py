"""Per-client token-bucket rate limiting for the HTTP front-end.

The streemm exemplar throttles with Redis ``INCR`` + TTL — a fixed
window per client key.  This is the same idea without the Redis hop and
without the window-edge burst artifact: each client key owns a token
bucket of capacity ``burst`` refilled at ``rate`` tokens/second, checked
under one small lock.  A rejected request gets the *time until the next
token* as its ``retry_after_ms`` hint, so well-behaved clients pace
themselves instead of hammering the window boundary.

The clock is injectable, so the refill arithmetic is tested with a fake
clock and zero sleeps (the same pattern as :mod:`repro.obs.metrics`).
Buckets are evicted LRU beyond ``max_keys`` — an adversary minting fresh
client ids must not grow server memory without bound.  Eviction carries
the victim's deficit forward: a key admitted while the table is full
inherits the evicted bucket's refilled token count instead of a fresh
full burst, so cycling through ``max_keys + 1`` identities cannot mint
``burst`` free requests per rotation — the adversary churning the table
keeps inheriting its own drained bucket, while an idle legitimate key
evicted and later re-admitted inherits a bucket that has refilled to
(near) full in the meantime.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.errors import RateLimitedError

__all__ = ["TokenBucketLimiter"]


class TokenBucketLimiter:
    """Token buckets per client key; ``rate <= 0`` disables limiting."""

    def __init__(
        self,
        rate: float,
        burst: int = 1,
        max_keys: int = 4096,
        clock=time.monotonic,
    ) -> None:
        if rate > 0 and burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.max_keys = int(max_keys)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> [tokens, last_refill_at]; OrderedDict gives LRU eviction.
        self._buckets: OrderedDict[str, list[float]] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, key: str) -> float | None:
        """Take one token for *key*; the ``retry_after_ms`` hint if empty.

        Returns ``None`` when the request is admitted (or limiting is
        disabled).  A non-``None`` return is the milliseconds until the
        bucket refills one token — the value the 429 mapping forwards.
        """
        if not self.enabled:
            return None
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                tokens = float(self.burst)
                if len(self._buckets) >= self.max_keys:
                    # Carry the victim's deficit over: admit the newcomer
                    # with the evicted bucket's refilled balance, never a
                    # fresh full burst (see the module docstring).
                    _, (victim_tokens, victim_last) = self._buckets.popitem(
                        last=False
                    )
                    tokens = min(
                        tokens,
                        max(
                            0.0,
                            victim_tokens + (now - victim_last) * self.rate,
                        ),
                    )
                bucket = [tokens, now]
                self._buckets[key] = bucket
            else:
                self._buckets.move_to_end(key)
                tokens, last = bucket
                bucket[0] = min(self.burst, tokens + (now - last) * self.rate)
                bucket[1] = now
            if bucket[0] >= 1.0:
                bucket[0] -= 1.0
                return None
            return 1000.0 * (1.0 - bucket[0]) / self.rate

    def require(self, key: str) -> None:
        """:meth:`check`, raising :class:`RateLimitedError` on rejection."""
        hint = self.check(key)
        if hint is not None:
            raise RateLimitedError(
                f"client {key!r} exceeded {self.rate:g} requests/s "
                f"(burst {self.burst})",
                retry_after_ms=hint,
            )
