"""The bundled retrying HTTP client (``repro load`` drives it).

Retry semantics follow the server's own hints instead of guessing:

* **429 / 503** are retried for any method — the server rejected the
  request *before* doing work, so a replay is always safe — sleeping the
  larger of the jittered exponential backoff and the server's
  ``Retry-After`` hint (millisecond-precision ``X-Retry-After-Ms``
  preferred);
* **connection-level failures** (refused, reset, truncated body against
  ``Content-Length``) are retried only for idempotent requests: GETs by
  default, and ``POST /interaction`` when the caller supplied an
  ``interaction_id`` (the convenience :meth:`RetryingClient.interaction`
  always mints one, so its retries are deduplicated server-side);
* a **retry budget** (token pool refilled by successes) caps the extra
  load a retrying fleet can add during an outage — when the pool is dry,
  failures surface immediately instead of amplifying the storm.

Exhausted retries raise a typed :class:`~repro.errors.NetClientError`
carrying the last HTTP status (``None`` for pure connection failures).
``sleep`` and the jitter RNG seed are injectable, so the backoff
schedule is tested against a scripted server with zero real sleeping.
"""

from __future__ import annotations

import http.client
import itertools
import json
import random
import threading
import time
import uuid
from dataclasses import dataclass
from urllib.parse import quote, urlsplit

from repro.errors import NetClientError
from repro.net.protocol import (
    HEADER_CLIENT_ID,
    HEADER_DEADLINE_MS,
    HEADER_RETRY_AFTER,
    HEADER_RETRY_AFTER_MS,
)

__all__ = ["NetResponse", "RetryPolicy", "RetryingClient"]

#: Statuses the server sends *instead of doing work* — safe to retry
#: regardless of method.
RETRYABLE_STATUSES = frozenset({429, 503})


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and budget knobs of :class:`RetryingClient`.

    ``attempts`` counts total tries (1 = never retry).  The delay before
    retry *n* is ``backoff * multiplier**(n-1)`` capped at
    ``max_backoff``, stretched by up to ``jitter`` fraction, and never
    below the server's ``Retry-After`` hint.  ``budget`` tokens are
    shared across the client's whole lifetime: each retry spends one,
    each successful request refunds ``budget_refund`` (capped at the
    initial pool) — the classic retry-budget pattern that stops a fleet
    of clients from doubling the load on a struggling server.
    """

    attempts: int = 4
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.1
    budget: float = 8.0
    budget_refund: float = 0.1
    timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.budget < 0 or self.budget_refund < 0:
            raise ValueError("retry budget values must be >= 0")


class NetResponse:
    """One HTTP response: status, headers (dict), raw body bytes."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: dict, body: bytes) -> None:
        self.status = int(status)
        self.headers = dict(headers)
        self.body = body

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    def header(self, name: str):
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return None

    @property
    def retry_after_ms(self) -> float | None:
        """The server's backoff hint (ms-precision header preferred)."""
        precise = self.header(HEADER_RETRY_AFTER_MS)
        if precise is not None:
            return float(precise)
        coarse = self.header(HEADER_RETRY_AFTER)
        if coarse is not None:
            return float(coarse) * 1000.0
        return None

    def __repr__(self) -> str:
        return f"NetResponse({self.status}, {len(self.body)} bytes)"


class RetryingClient:
    """HTTP client for one repro serving endpoint.

    One connection per request — chaos aborts and server restarts make
    long-lived connections a liability, and on loopback the setup cost
    is noise.  Thread-safe: workers of one load generator may share a
    client (and its retry budget, which is the point of the budget).
    """

    def __init__(
        self,
        base_url: str,
        policy: RetryPolicy | None = None,
        client_id: str | None = None,
        seed: int = 0,
        sleep=time.sleep,
    ) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// endpoints are supported, got {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.policy = policy or RetryPolicy()
        self.client_id = client_id or f"c{uuid.uuid4().hex[:8]}"
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._budget = self.policy.budget
        self._mint = itertools.count(1)
        #: Lifetime counters for load-gen reporting.
        self.stats = {"requests": 0, "retries": 0, "failures": 0}

    # ------------------------------------------------------------------
    # Budget
    # ------------------------------------------------------------------
    def _spend_retry_token(self) -> bool:
        with self._lock:
            if self._budget < 1.0:
                return False
            self._budget -= 1.0
            return True

    def _refund(self) -> None:
        with self._lock:
            self._budget = min(
                self.policy.budget, self._budget + self.policy.budget_refund
            )

    @property
    def retry_budget(self) -> float:
        with self._lock:
            return self._budget

    # ------------------------------------------------------------------
    # Core request loop
    # ------------------------------------------------------------------
    def _once(self, method: str, path: str, body, headers: dict) -> NetResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.policy.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            # read() raises IncompleteRead when the socket dies short of
            # Content-Length — the mid-response abort surfaces here.
            data = response.read()
            return NetResponse(response.status, dict(response.getheaders()), data)
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
        deadline_ms: float | None = None,
        idempotent: bool | None = None,
    ) -> NetResponse:
        """One logical request, retried per the policy.

        *idempotent* defaults to ``method == "GET"``; pass ``True`` for a
        POST that is replay-safe (deduplicated server-side).  Raises
        :class:`NetClientError` when every attempt failed.
        """
        if idempotent is None:
            idempotent = method == "GET"
        sent_headers = {HEADER_CLIENT_ID: self.client_id}
        if deadline_ms is not None:
            sent_headers[HEADER_DEADLINE_MS] = f"{float(deadline_ms):g}"
        if body is not None:
            sent_headers["Content-Type"] = "application/json"
        if headers:
            sent_headers.update(headers)
        with self._lock:
            self.stats["requests"] += 1
        policy = self.policy
        last_response: NetResponse | None = None
        last_error: Exception | None = None
        for attempt in range(1, policy.attempts + 1):
            try:
                response = self._once(method, path, body, sent_headers)
            except (OSError, http.client.HTTPException) as error:
                last_error, last_response = error, None
                if not idempotent:
                    break  # a non-idempotent request may have landed
            else:
                if response.status not in RETRYABLE_STATUSES:
                    self._refund()
                    return response
                last_response, last_error = response, None
            if attempt == policy.attempts or not self._spend_retry_token():
                break
            delay = min(
                policy.backoff * policy.multiplier ** (attempt - 1),
                policy.max_backoff,
            )
            delay *= 1.0 + policy.jitter * self._rng.random()
            if last_response is not None:
                hint = last_response.retry_after_ms
                if hint is not None:
                    delay = max(delay, hint / 1000.0)
            with self._lock:
                self.stats["retries"] += 1
            self._sleep(delay)
        with self._lock:
            self.stats["failures"] += 1
        if last_response is not None:
            raise NetClientError(
                f"{method} {path} still {last_response.status} after "
                f"{policy.attempts} attempts",
                status=last_response.status,
            )
        raise NetClientError(f"{method} {path} failed: {last_error}", status=None)

    # ------------------------------------------------------------------
    # Convenience endpoints
    # ------------------------------------------------------------------
    def recommend(
        self, video_id: str, top_k: int = 10, deadline_ms: float | None = None
    ) -> NetResponse:
        return self.request(
            "GET",
            f"/recommend/{quote(video_id, safe='')}?top_k={int(top_k)}",
            deadline_ms=deadline_ms,
        )

    def interaction(
        self,
        user_id: str,
        video_id: str,
        watched_percent: float | None = None,
        liked: int = 0,
        interaction_id: str | None = None,
    ) -> NetResponse:
        """Durably log one interaction; replay-safe (id minted client-side)."""
        if interaction_id is None:
            interaction_id = f"{self.client_id}-{next(self._mint)}"
        doc = {
            "user_id": user_id,
            "video_id": video_id,
            "liked": liked,
            "interaction_id": interaction_id,
        }
        if watched_percent is not None:
            doc["watched_percent"] = watched_percent
        return self.request(
            "POST",
            "/interaction",
            body=json.dumps(doc).encode("utf-8"),
            idempotent=True,
        )

    def videos(self, limit: int | None = None) -> list[str]:
        path = "/videos" if limit is None else f"/videos?limit={int(limit)}"
        return self.request("GET", path).json()["videos"]

    def healthz(self) -> NetResponse:
        return self.request("GET", "/healthz")

    def readyz(self) -> NetResponse:
        """One un-retried readiness probe (a drain-time 503 IS the answer)."""
        return self._once("GET", "/readyz", None, {HEADER_CLIENT_ID: self.client_id})

    def stats_snapshot(self, format: str = "json"):
        response = self.request("GET", f"/stats?format={format}")
        if format == "prom":
            return response.body.decode("utf-8")
        return response.json()
