"""Epoch-keyed HTTP response cache, layered over the gateway query memo.

The PR-6 memo caches *rankings* inside the gateway; this caches the
serialized *response* — status, headers, encoded body — so a repeated
``GET /recommend/...`` skips admission, scoring and JSON encoding
entirely.  The YT-Behavior-Model exemplar keys its Redis response cache
on ``(query, epoch)``; here the epoch key IS the invalidation signal:
every entry records the epoch key it was built under, and the first
access after an epoch publication drops the whole generation (counted
into ``repro_http_cache_invalidate_total``).  A hit can therefore never
serve a pre-mutation ranking — the same guarantee the gateway memo
gives, one layer further out.

Generations roll **forward only**.  Epoch keys are monotonic — a single
gateway's ``epoch_id`` counts up, and the sharded gateway's per-shard
epoch-id tuple advances componentwise as each shard publishes its
``apply_comments`` — but accesses are not serialized with publication: a
server thread that read the epoch key before a shard published can call
``put`` with the *older* key after a fresher thread already rolled the
generation.  Treating any mismatch as "new epoch" (the original
behavior) would let that stale put clear the fresh generation, adopt the
pre-publication key, and then serve the stale bytes to a racing ``get``
carrying the same old key.  Instead, a key strictly older than the
current generation is rejected: stale gets miss and stale puts are
dropped (both counted into ``stale_rejections``), so a cached byte can
never predate any shard's published mutation.

Only clean 200 responses belong here (the server never inserts partial,
degraded, error or chaos-tampered responses), so a hit is bit-identical
to what a fresh scan would serve on the same epoch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded LRU of ``(status, headers, body)`` keyed by request.

    ``epoch_key`` is whatever identifies the immutable index state — the
    single gateway's ``epoch_id`` or the sharded gateway's epoch-id
    tuple.  ``capacity == 0`` disables caching entirely.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple] = OrderedDict()
        self._epoch_key = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Accesses carrying an epoch key older than the current
        #: generation — rejected instead of rolling the generation back.
        self.stale_rejections = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _is_stale(epoch_key, current) -> bool:
        """Whether *epoch_key* is strictly older than *current*.

        Honest epoch keys are monotonic: ints count up, and same-length
        int tuples (the sharded gateway's per-shard epoch vector) advance
        componentwise.  Anything not comparable under those rules — a
        shape change after a topology swap, mixed types — is treated as a
        *new* generation (roll and clear), which is always safe: clearing
        can only cost hits, never serve stale bytes.
        """
        if isinstance(epoch_key, int) and isinstance(current, int):
            return epoch_key < current
        if (
            isinstance(epoch_key, tuple)
            and isinstance(current, tuple)
            and len(epoch_key) == len(current)
            and all(isinstance(part, int) for part in epoch_key)
            and all(isinstance(part, int) for part in current)
        ):
            # Older in any component (and newer in none) = stale.  A
            # mixed pair — some components ahead, some behind — cannot
            # come from monotonic publication order; fall through to the
            # safe roll-and-clear.
            return all(new <= cur for new, cur in zip(epoch_key, current))
        return False

    def _roll_generation(self, epoch_key) -> bool:
        """Advance to *epoch_key*'s generation (lock held).

        Returns ``False`` when *epoch_key* is older than the current
        generation — the caller must reject the access rather than touch
        the entries; the generation never rolls backward.
        """
        if epoch_key == self._epoch_key:
            return True
        if self._epoch_key is not None and self._is_stale(epoch_key, self._epoch_key):
            self.stale_rejections += 1
            return False
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._epoch_key = epoch_key
        return True

    def get(self, epoch_key, request_key: str):
        """The cached ``(status, headers, body)`` or ``None`` (a miss)."""
        if self.capacity == 0:
            return None
        with self._lock:
            if not self._roll_generation(epoch_key):
                self.misses += 1
                return None
            entry = self._entries.get(request_key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(request_key)
            self.hits += 1
            return entry

    def put(self, epoch_key, request_key: str, status: int, headers: dict, body: bytes) -> None:
        """Insert one response; LRU-evicts beyond capacity.

        A *epoch_key* older than the current generation is dropped
        silently: the response was computed against a superseded epoch
        and must never become servable bytes.
        """
        if self.capacity == 0:
            return
        with self._lock:
            if not self._roll_generation(epoch_key):
                return
            if (
                request_key not in self._entries
                and len(self._entries) >= self.capacity
            ):
                self._entries.popitem(last=False)
            self._entries[request_key] = (status, dict(headers), bytes(body))
            self._entries.move_to_end(request_key)
