"""Epoch-keyed HTTP response cache, layered over the gateway query memo.

The PR-6 memo caches *rankings* inside the gateway; this caches the
serialized *response* — status, headers, encoded body — so a repeated
``GET /recommend/...`` skips admission, scoring and JSON encoding
entirely.  The YT-Behavior-Model exemplar keys its Redis response cache
on ``(query, epoch)``; here the epoch key IS the invalidation signal:
every entry records the epoch key it was built under, and the first
access after an epoch publication drops the whole generation (counted
into ``repro_http_cache_invalidate_total``).  A hit can therefore never
serve a pre-mutation ranking — the same guarantee the gateway memo
gives, one layer further out.

Only clean 200 responses belong here (the server never inserts partial,
degraded, error or chaos-tampered responses), so a hit is bit-identical
to what a fresh scan would serve on the same epoch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded LRU of ``(status, headers, body)`` keyed by request.

    ``epoch_key`` is whatever identifies the immutable index state — the
    single gateway's ``epoch_id`` or the sharded gateway's epoch-id
    tuple.  ``capacity == 0`` disables caching entirely.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple] = OrderedDict()
        self._epoch_key = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _roll_generation(self, epoch_key) -> None:
        """Drop every entry from a previous epoch (lock held)."""
        if epoch_key != self._epoch_key:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._epoch_key = epoch_key

    def get(self, epoch_key, request_key: str):
        """The cached ``(status, headers, body)`` or ``None`` (a miss)."""
        if self.capacity == 0:
            return None
        with self._lock:
            self._roll_generation(epoch_key)
            entry = self._entries.get(request_key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(request_key)
            self.hits += 1
            return entry

    def put(self, epoch_key, request_key: str, status: int, headers: dict, body: bytes) -> None:
        """Insert one response; LRU-evicts beyond capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._roll_generation(epoch_key)
            if (
                request_key not in self._entries
                and len(self._entries) >= self.capacity
            ):
                self._entries.popitem(last=False)
            self._entries[request_key] = (status, dict(headers), bytes(body))
            self._entries.move_to_end(request_key)
