"""Network serving front-end: a zero-dependency HTTP API over the gateway.

See DESIGN §14.  The entry points are :class:`ReproHTTPServer` (the
stdlib ``ThreadingHTTPServer`` wrapper the ``repro serve`` CLI runs) and
:class:`RetryingClient` (the bundled client ``repro load`` drives).  The
transport-independent core — routing, parameter validation and the typed
error → HTTP status mapping — lives in :class:`RecommendService`, so the
wire behaviour is testable without sockets.
"""

from repro.net.cache import ResponseCache
from repro.net.client import RetryingClient, RetryPolicy
from repro.net.interactions import InteractionLog, interaction_pairs, read_interactions
from repro.net.protocol import (
    HEADER_CACHE,
    HEADER_CLIENT_ID,
    HEADER_DEADLINE_MS,
    HEADER_RETRY_AFTER,
    HEADER_RETRY_AFTER_MS,
    STATUS_TABLE,
    error_envelope,
    map_exception,
    retry_after_headers,
)
from repro.net.ratelimit import TokenBucketLimiter
from repro.net.server import (
    NET_REQUEST_POINT,
    NET_RESPONSE_POINT,
    ChaosSchedule,
    NetConfig,
    RecommendService,
    ReproHTTPServer,
)

__all__ = [
    "ChaosSchedule",
    "HEADER_CACHE",
    "HEADER_CLIENT_ID",
    "HEADER_DEADLINE_MS",
    "HEADER_RETRY_AFTER",
    "HEADER_RETRY_AFTER_MS",
    "InteractionLog",
    "NET_REQUEST_POINT",
    "NET_RESPONSE_POINT",
    "NetConfig",
    "RecommendService",
    "ReproHTTPServer",
    "ResponseCache",
    "RetryPolicy",
    "RetryingClient",
    "STATUS_TABLE",
    "TokenBucketLimiter",
    "error_envelope",
    "interaction_pairs",
    "map_exception",
    "read_interactions",
    "retry_after_headers",
]
