"""repro — reproduction of "Online Video Recommendation in Sharing Community"
(Zhou, Cao, Chen, Huang, Zhang, Wang — SIGMOD 2015).

The package implements the paper's content-social fused video recommender
and every substrate it depends on:

* :mod:`repro.video` — synthetic video substrate (frames, shots, edits);
* :mod:`repro.signatures` — video cuboid signatures + literature baselines;
* :mod:`repro.emd` — Earth Mover's Distance solvers and the L1 embedding;
* :mod:`repro.measures` — SimC/κJ, ERP, DTW;
* :mod:`repro.index` — chained hashing, Z-order, B+-tree, LSB, inverted files;
* :mod:`repro.social` — descriptors, UIG, sub-communities, SAR, dynamics;
* :mod:`repro.community` — the synthetic sharing-community dataset;
* :mod:`repro.core` — fusion, recommenders (CR/SR/CSF/SAR/SAR-H/AFFRF), KNN;
* :mod:`repro.evaluation` — AR/AC/MAP metrics, judge panel, harness;
* :mod:`repro.io` — crash-safe persistence: checksummed atomic snapshots,
  the write-ahead log, and ``recover``;
* :mod:`repro.errors` — the typed durability/serving exception hierarchy;
* :mod:`repro.obs` — metrics registry (Prometheus exposition) + query tracing;
* :mod:`repro.testing` — crash-point registry and fault-injection plans;
* :mod:`repro.streaming` — online near-duplicate monitoring (extension);
* :mod:`repro.cli` — ``python -m repro.cli`` command-line interface.

Quickstart::

    from repro.community import build_workload
    from repro.core import CommunityIndex, RecommenderConfig, csf_sar_h_recommender

    workload = build_workload(hours=10.0, seed=7)
    index = CommunityIndex(workload.dataset, RecommenderConfig(k=20))
    recommender = csf_sar_h_recommender(index)
    print(recommender.recommend(workload.sources[0], top_k=10))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
