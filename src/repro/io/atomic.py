"""Crash-safe file replacement: temp file + fsync + ``os.replace``.

The old snapshot writer opened the destination in place — a crash
mid-write destroyed the only copy.  Every archive writer now goes through
:func:`atomic_write_bytes`: the bytes land in a same-directory temp file,
the file is fsynced, then atomically renamed over the destination, then
the directory entry is fsynced.  At no instant does the destination hold
anything but either the complete old or the complete new content.

The write path fires the ``snapshot.*`` crash points so the fault suite
can kill the process model at each step and assert the invariant.
"""

from __future__ import annotations

import os
import pathlib

from repro.testing.faults import NO_FAULTS, FaultPlan, register_crash_point

__all__ = ["atomic_write_bytes"]

#: Before anything is written (the destination is untouched).
POINT_BEFORE_WRITE = register_crash_point(
    "snapshot.before_write", "before the temp file is created"
)
#: Half the payload is in the temp file (a torn temp file on crash).
POINT_TORN_WRITE = register_crash_point(
    "snapshot.torn_write", "half the payload written to the temp file"
)
#: The temp file is complete and fsynced but not yet renamed.
POINT_BEFORE_REPLACE = register_crash_point(
    "snapshot.before_replace", "temp file durable, rename pending"
)
#: The rename happened but the directory entry is not yet fsynced.
POINT_AFTER_REPLACE = register_crash_point(
    "snapshot.after_replace", "renamed over the destination, dir fsync pending"
)


def _fsync_directory(directory: pathlib.Path) -> None:
    """Persist the directory entry of a just-renamed file (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | pathlib.Path, data: bytes, faults: FaultPlan | None = None
) -> None:
    """Atomically replace *path* with *data* (never a partial file).

    Crash at any point leaves either the previous complete content (or no
    file) or the new complete content at *path*; a leftover ``*.tmp``
    neighbour is the only possible residue and is overwritten by the next
    write.
    """
    faults = NO_FAULTS if faults is None else faults
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    faults.fire(POINT_BEFORE_WRITE, path=tmp)
    with open(tmp, "wb") as handle:
        handle.write(data[: len(data) // 2])
        handle.flush()
        faults.fire(POINT_TORN_WRITE, path=tmp)
        handle.write(data[len(data) // 2 :])
        handle.flush()
        os.fsync(handle.fileno())
    faults.fire(POINT_BEFORE_REPLACE, path=tmp)
    os.replace(tmp, path)
    faults.fire(POINT_AFTER_REPLACE, path=path)
    _fsync_directory(path.parent)
