"""JSON-based persistence for community datasets.

A generated :class:`~repro.community.models.CommunityDataset` is tiny on
disk — video *records* store generation seeds, not frames — so plain
gzipped JSON is the right format: diffable, portable, dependency-free.

The schema is versioned; loaders raise a typed
:class:`~repro.errors.SchemaMismatchError` on payloads from a different
major version rather than mis-parse them.  Writes go through the atomic
replace path, so a crash mid-save never destroys an existing dataset.
"""

from __future__ import annotations

import gzip
import json
import pathlib

from repro.community.models import Comment, CommunityDataset, User, VideoRecord
from repro.errors import SchemaMismatchError
from repro.io.atomic import atomic_write_bytes

__all__ = [
    "SCHEMA_VERSION",
    "check_schema",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "record_from_dict",
    "record_to_dict",
    "save_dataset",
]

#: Bump the major component on breaking schema changes.
SCHEMA_VERSION = "1.0"


def check_schema(payload: dict, supported: str = SCHEMA_VERSION) -> None:
    """Raise :class:`SchemaMismatchError` on a foreign major version."""
    version = str(payload.get("schema", ""))
    if version.split(".")[0] != supported.split(".")[0]:
        raise SchemaMismatchError(
            f"incompatible schema version {version!r} (supported: {supported})"
        )


def record_to_dict(record: VideoRecord) -> dict:
    """Serialise one :class:`VideoRecord` (shared with the WAL)."""
    return {
        "video_id": record.video_id,
        "topic": record.topic,
        "seed": record.seed,
        "owner": record.owner,
        "title": record.title,
        "tags": list(record.tags),
        "lineage": record.lineage,
        "edit_seed": record.edit_seed,
        "group": record.group,
    }


def record_from_dict(entry: dict) -> VideoRecord:
    """Inverse of :func:`record_to_dict`."""
    return VideoRecord(
        video_id=entry["video_id"],
        topic=entry["topic"],
        seed=entry["seed"],
        owner=entry["owner"],
        title=entry["title"],
        tags=tuple(entry["tags"]),
        lineage=entry["lineage"],
        edit_seed=entry["edit_seed"],
        group=entry.get("group", 0),
    )


def dataset_to_dict(dataset: CommunityDataset) -> dict:
    """Serialise *dataset* into plain JSON-compatible structures."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "community-dataset",
        "topics": list(dataset.topics),
        "clip_params": dict(dataset.clip_params),
        "records": [record_to_dict(record) for record in dataset.records.values()],
        "users": [
            {
                "user_id": user.user_id,
                "home_topic": user.home_topic,
                "interests": list(user.interests),
                "drift_topic": user.drift_topic,
                "group": user.group,
            }
            for user in dataset.users.values()
        ],
        "comments": [
            [comment.user_id, comment.video_id, comment.month]
            for comment in dataset.comments
        ],
    }


def dataset_from_dict(payload: dict) -> CommunityDataset:
    """Inverse of :func:`dataset_to_dict`.

    Raises
    ------
    ValueError
        On a wrong ``kind``; :class:`SchemaMismatchError` (a
        :class:`ValueError` subclass) on an incompatible major version.
    """
    if payload.get("kind") != "community-dataset":
        raise ValueError(f"not a community dataset payload: kind={payload.get('kind')!r}")
    check_schema(payload)
    records = {
        entry["video_id"]: record_from_dict(entry) for entry in payload["records"]
    }
    users = {
        entry["user_id"]: User(
            user_id=entry["user_id"],
            home_topic=entry["home_topic"],
            interests=tuple(entry["interests"]),
            drift_topic=entry["drift_topic"],
            group=entry.get("group", 0),
        )
        for entry in payload["users"]
    }
    comments = [
        Comment(user_id=user_id, video_id=video_id, month=month)
        for user_id, video_id, month in payload["comments"]
    ]
    clip_params = dict(payload.get("clip_params", {}))
    if "frames_per_shot" in clip_params:
        clip_params["frames_per_shot"] = tuple(clip_params["frames_per_shot"])
    return CommunityDataset(
        records=records,
        users=users,
        comments=comments,
        topics=tuple(payload["topics"]),
        clip_params=clip_params,
    )


def save_dataset(dataset: CommunityDataset, path: str | pathlib.Path) -> None:
    """Write *dataset* as gzipped JSON to *path* (atomic replace).

    A ``.json`` suffix writes plain JSON; anything else gzips.
    """
    path = pathlib.Path(path)
    payload = json.dumps(dataset_to_dict(dataset), separators=(",", ":"))
    if path.suffix == ".json":
        atomic_write_bytes(path, payload.encode("utf-8"))
    else:
        atomic_write_bytes(path, gzip.compress(payload.encode("utf-8"), mtime=0))


def load_dataset(path: str | pathlib.Path) -> CommunityDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    if path.suffix == ".json":
        text = path.read_text()
    else:
        with gzip.open(path, "rt") as handle:
            text = handle.read()
    return dataset_from_dict(json.loads(text))
