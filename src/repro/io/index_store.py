"""Persistence for built community indexes.

Re-extracting signatures for a large community takes minutes; loading the
extracted state takes milliseconds.  This module serialises the expensive,
deterministic parts of a :class:`~repro.core.pipeline.CommunityIndex` —
the signature series, global features and social descriptors — together
with the dataset and configuration, and rebuilds the cheap derived
structures (UIG partition, hash table, SAR vectors, inverted file, LSB
forest) on load.

Format: a single ``.npz``-style archive is avoided in favour of gzipped
JSON (arrays here are small; the payload stays portable and diffable).
"""

from __future__ import annotations

import gzip
import json
import pathlib
from dataclasses import asdict

import numpy as np

from repro.core.config import RecommenderConfig
from repro.core.pipeline import CommunityIndex, GlobalFeatures
from repro.io.serialize import SCHEMA_VERSION, dataset_from_dict, dataset_to_dict
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries

__all__ = ["save_index", "load_index"]


def _series_to_dict(series: SignatureSeries) -> list[dict]:
    return [
        {"values": signature.values.tolist(), "weights": signature.weights.tolist()}
        for signature in series
    ]


def _series_from_dict(video_id: str, entries: list[dict]) -> SignatureSeries:
    return SignatureSeries(
        video_id=video_id,
        signatures=tuple(
            CuboidSignature(
                values=np.asarray(entry["values"]),
                weights=np.asarray(entry["weights"]),
            )
            for entry in entries
        ),
    )


def _features_to_dict(features: GlobalFeatures) -> dict:
    return {
        "histogram": features.histogram.tolist(),
        "envelope": features.envelope.tolist(),
        "tokens": sorted(features.tokens),
    }


def _features_from_dict(entry: dict) -> GlobalFeatures:
    return GlobalFeatures(
        histogram=np.asarray(entry["histogram"]),
        envelope=np.asarray(entry["envelope"]),
        tokens=frozenset(entry["tokens"]),
    )


def save_index(index: CommunityIndex, path: str | pathlib.Path) -> None:
    """Serialise *index* (dataset + config + extracted features)."""
    config = asdict(index.config)
    config["embedding_range"] = list(config["embedding_range"])
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "community-index",
        "dataset": dataset_to_dict(index.dataset),
        "config": config,
        "series": {
            video_id: _series_to_dict(series)
            for video_id, series in index.series.items()
        },
        "features": {
            video_id: _features_to_dict(features)
            for video_id, features in index.features.items()
        },
        "has_lsb": index.lsb is not None,
    }
    with gzip.open(pathlib.Path(path), "wt") as handle:
        handle.write(json.dumps(payload, separators=(",", ":")))


def load_index(path: str | pathlib.Path, up_to_month: int = 11) -> CommunityIndex:
    """Rebuild a :class:`CommunityIndex` from a :func:`save_index` archive.

    The stored signature series and global features are injected instead
    of re-extracted; derived structures (social index, SAR dictionaries,
    LSB forest) are rebuilt deterministically from them.
    """
    with gzip.open(pathlib.Path(path), "rt") as handle:
        payload = json.loads(handle.read())
    if payload.get("kind") != "community-index":
        raise ValueError(f"not a community index payload: kind={payload.get('kind')!r}")
    version = str(payload.get("schema", ""))
    if version.split(".")[0] != SCHEMA_VERSION.split(".")[0]:
        raise ValueError(
            f"incompatible schema version {version!r} (supported: {SCHEMA_VERSION})"
        )

    dataset = dataset_from_dict(payload["dataset"])
    config_dict = dict(payload["config"])
    config_dict["embedding_range"] = tuple(config_dict["embedding_range"])
    config = RecommenderConfig(**config_dict)

    index = CommunityIndex.__new__(CommunityIndex)
    index.dataset = dataset
    index.config = config
    index.series = {
        video_id: _series_from_dict(video_id, entries)
        for video_id, entries in payload["series"].items()
    }
    index.features = {
        video_id: _features_from_dict(entry)
        for video_id, entry in payload["features"].items()
    }

    if payload.get("has_lsb", False):
        from repro.emd.embedding import EmdEmbedding
        from repro.index.lsb import LsbIndex

        embedding = EmdEmbedding(
            lo=config.embedding_range[0],
            hi=config.embedding_range[1],
            resolution=config.embedding_resolution,
        )
        index.lsb = LsbIndex(
            embedding,
            num_projections=config.lsh_projections,
            bits_per_dim=config.lsh_bits,
            bucket_width=config.lsh_width,
            num_trees=config.lsh_trees,
        )
        for video_id in sorted(index.series):
            for position, signature in enumerate(index.series[video_id]):
                index.lsb.insert(video_id, position, signature)
    else:
        index.lsb = None

    from repro.social.updates import DynamicSocialIndex

    descriptors = dataset.descriptors(up_to_month=up_to_month)
    index.social = DynamicSocialIndex.build(
        descriptors.values(), config.k, uig_pair_cap=config.uig_pair_cap
    )
    index.rebuild_sorted_dictionary()
    return index
