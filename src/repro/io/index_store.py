"""Persistence for built community indexes.

Re-extracting signatures for a large community takes minutes; loading the
extracted state takes milliseconds.  This module serialises the expensive,
deterministic parts of a :class:`~repro.core.pipeline.CommunityIndex` —
the signature series, global features and the **live social state** (the
descriptors plus the ``up_to_month`` comment watermark, which may have
diverged from the dataset's historical log under online maintenance) —
together with the dataset, configuration and store revisions, and rebuilds
the cheap derived structures (UIG partition, hash table, SAR vectors,
inverted file, LSB forest) on load.

Loads return a :class:`~repro.core.pipeline.LiveCommunityIndex`, so a
restored snapshot can keep ingesting and retiring right away.

Format: a single ``.npz``-style archive is avoided in favour of gzipped
JSON (arrays here are small; the payload stays portable and diffable).
"""

from __future__ import annotations

import gzip
import json
import pathlib
from dataclasses import asdict

import numpy as np

from repro.core.config import RecommenderConfig
from repro.core.pipeline import CommunityIndex, GlobalFeatures, LiveCommunityIndex
from repro.core.stores import ContentStore, SocialStore
from repro.io.serialize import SCHEMA_VERSION, dataset_from_dict, dataset_to_dict
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor

__all__ = ["save_index", "load_index"]


def _series_to_dict(series: SignatureSeries) -> list[dict]:
    return [
        {"values": signature.values.tolist(), "weights": signature.weights.tolist()}
        for signature in series
    ]


def _series_from_dict(video_id: str, entries: list[dict]) -> SignatureSeries:
    return SignatureSeries(
        video_id=video_id,
        signatures=tuple(
            CuboidSignature(
                values=np.asarray(entry["values"]),
                weights=np.asarray(entry["weights"]),
            )
            for entry in entries
        ),
    )


def _features_to_dict(features: GlobalFeatures) -> dict:
    return {
        "histogram": features.histogram.tolist(),
        "envelope": features.envelope.tolist(),
        "tokens": sorted(features.tokens),
    }


def _features_from_dict(entry: dict) -> GlobalFeatures:
    return GlobalFeatures(
        histogram=np.asarray(entry["histogram"]),
        envelope=np.asarray(entry["envelope"]),
        tokens=frozenset(entry["tokens"]),
    )


def save_index(index: CommunityIndex, path: str | pathlib.Path) -> None:
    """Serialise *index* (dataset + config + extracted features + social state)."""
    config = asdict(index.config)
    config["embedding_range"] = list(config["embedding_range"])
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "community-index",
        "dataset": dataset_to_dict(index.dataset),
        "config": config,
        "series": {
            video_id: _series_to_dict(series)
            for video_id, series in index.series.items()
        },
        "features": {
            video_id: _features_to_dict(features)
            for video_id, features in index.features.items()
        },
        "has_lsb": index.lsb is not None,
        # Live social state: what the index actually serves, which under
        # online maintenance is NOT re-derivable from the dataset log.
        "social": {
            "up_to_month": index.up_to_month,
            "descriptors": {
                video_id: sorted(descriptor.users)
                for video_id, descriptor in index.social_store.descriptors.items()
            },
        },
        "revisions": list(index.revisions),
    }
    with gzip.open(pathlib.Path(path), "wt") as handle:
        handle.write(json.dumps(payload, separators=(",", ":")))


def load_index(
    path: str | pathlib.Path, up_to_month: int | None = None
) -> LiveCommunityIndex:
    """Rebuild a :class:`LiveCommunityIndex` from a :func:`save_index` archive.

    The stored signature series, global features and social descriptors are
    injected instead of re-extracted; derived structures (social index, SAR
    dictionaries, LSB forest) are rebuilt deterministically from them.

    ``up_to_month=None`` (the default) restores the snapshot's saved
    watermark and descriptors exactly.  Passing an explicit month discards
    the saved social state and re-derives descriptors from the dataset's
    comment log through that month instead.
    """
    with gzip.open(pathlib.Path(path), "rt") as handle:
        payload = json.loads(handle.read())
    if payload.get("kind") != "community-index":
        raise ValueError(f"not a community index payload: kind={payload.get('kind')!r}")
    version = str(payload.get("schema", ""))
    if version.split(".")[0] != SCHEMA_VERSION.split(".")[0]:
        raise ValueError(
            f"incompatible schema version {version!r} (supported: {SCHEMA_VERSION})"
        )

    dataset = dataset_from_dict(payload["dataset"])
    config_dict = dict(payload["config"])
    config_dict["embedding_range"] = tuple(config_dict["embedding_range"])
    config = RecommenderConfig(**config_dict)

    features = {
        video_id: _features_from_dict(entry)
        for video_id, entry in payload["features"].items()
    }
    content = ContentStore(
        config,
        build_lsb=payload.get("has_lsb", False),
        build_global_features=bool(features),
    )
    for video_id in sorted(payload["series"]):
        content.add_series(
            video_id,
            _series_from_dict(video_id, payload["series"][video_id]),
            features.get(video_id),
        )

    social_payload = payload.get("social")
    if up_to_month is not None or social_payload is None:
        # Explicit watermark (or a pre-watermark archive): re-derive the
        # social state from the dataset's historical comment log.
        watermark = 11 if up_to_month is None else up_to_month
        descriptors = dataset.descriptors(up_to_month=watermark)
    else:
        watermark = int(social_payload["up_to_month"])
        descriptors = {
            video_id: SocialDescriptor.from_users(video_id, users)
            for video_id, users in social_payload["descriptors"].items()
        }
    social_store = SocialStore(
        descriptors,
        k=config.k,
        uig_pair_cap=config.uig_pair_cap,
        up_to_month=watermark,
    )

    # Restore the staleness clocks so consumers spanning a save/load cycle
    # (same process, e.g. A/B harnesses) never see a revision go backwards.
    saved_revisions = payload.get("revisions")
    if saved_revisions is not None:
        content.revision = max(content.revision, int(saved_revisions[0]))
        social_store._base_revision = int(saved_revisions[1])

    return LiveCommunityIndex._from_parts(dataset, config, content, social_store)
