"""Persistence for built community indexes.

Re-extracting signatures for a large community takes minutes; loading the
extracted state takes milliseconds.  This module serialises the expensive,
deterministic parts of a :class:`~repro.core.pipeline.CommunityIndex` —
the signature series, global features and the **live social state** (the
descriptors plus the ``up_to_month`` comment watermark, which may have
diverged from the dataset's historical log under online maintenance) —
together with the dataset, configuration, store revisions and the WAL
watermark, and rebuilds the cheap derived structures (UIG partition, hash
table, SAR vectors, inverted file, LSB forest) on load.

Loads return a :class:`~repro.core.pipeline.LiveCommunityIndex`, so a
restored snapshot can keep ingesting and retiring right away.

Format: gzipped JSON (arrays here are small; the payload stays portable
and diffable).  The archive is an **envelope** carrying a CRC32 of the
canonical payload encoding; writes go to a temp file that is fsynced and
atomically renamed over the destination, so a crash mid-save can never
destroy the previous snapshot, and a flipped byte can never be served as
truth.  Failures raise the typed :mod:`repro.errors` hierarchy instead of
raw ``gzip``/``json`` tracebacks.
"""

from __future__ import annotations

import gzip
import json
import pathlib
import zlib
from dataclasses import asdict

import numpy as np

from repro.community.models import DEFAULT_UP_TO_MONTH
from repro.core.config import RecommenderConfig
from repro.core.pipeline import CommunityIndex, GlobalFeatures, LiveCommunityIndex
from repro.core.stores import ContentStore, SocialStore
from repro.errors import SnapshotCorruptionError
from repro.io.atomic import atomic_write_bytes
from repro.io.serialize import (
    SCHEMA_VERSION,
    check_schema,
    dataset_from_dict,
    dataset_to_dict,
)
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor
from repro.testing.faults import FaultPlan

__all__ = ["save_index", "load_index"]


def series_to_dict(series: SignatureSeries) -> list[dict]:
    """Serialise a signature series (shared with the WAL's ingest records)."""
    return [
        {"values": signature.values.tolist(), "weights": signature.weights.tolist()}
        for signature in series
    ]


def series_from_dict(video_id: str, entries: list[dict]) -> SignatureSeries:
    """Inverse of :func:`series_to_dict`."""
    return SignatureSeries(
        video_id=video_id,
        signatures=tuple(
            CuboidSignature(
                values=np.asarray(entry["values"]),
                weights=np.asarray(entry["weights"]),
            )
            for entry in entries
        ),
    )


def features_to_dict(features: GlobalFeatures) -> dict:
    """Serialise one video's global features (shared with the WAL)."""
    return {
        "histogram": features.histogram.tolist(),
        "envelope": features.envelope.tolist(),
        "tokens": sorted(features.tokens),
    }


def features_from_dict(entry: dict) -> GlobalFeatures:
    """Inverse of :func:`features_to_dict`."""
    return GlobalFeatures(
        histogram=np.asarray(entry["histogram"]),
        envelope=np.asarray(entry["envelope"]),
        tokens=frozenset(entry["tokens"]),
    )


def _canonical(payload: dict) -> bytes:
    """The checksummed encoding: sorted keys, no whitespace, UTF-8."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _index_payload(index: CommunityIndex) -> dict:
    config = asdict(index.config)
    config["embedding_range"] = list(config["embedding_range"])
    return {
        "dataset": dataset_to_dict(index.dataset),
        "config": config,
        "series": {
            video_id: series_to_dict(series)
            for video_id, series in index.series.items()
        },
        "features": {
            video_id: features_to_dict(features)
            for video_id, features in index.features.items()
        },
        "has_lsb": index.lsb is not None,
        # Live social state: what the index actually serves, which under
        # online maintenance is NOT re-derivable from the dataset log.
        "social": {
            "up_to_month": index.up_to_month,
            "descriptors": {
                video_id: sorted(descriptor.users)
                for video_id, descriptor in index.social_store.descriptors.items()
            },
        },
        "revisions": list(index.revisions),
        "wal_seq": int(getattr(index, "wal_seq", 0)),
    }


def save_index(
    index: CommunityIndex,
    path: str | pathlib.Path,
    faults: FaultPlan | None = None,
) -> None:
    """Serialise *index* (dataset + config + features + social state).

    The write is atomic (temp file + fsync + ``os.replace``): a crash at
    any instant leaves the previous archive intact.  The payload CRC32 is
    embedded in the envelope, so any later bit rot is detected at load
    time.  The gzip stream is built with ``mtime=0``, making archives of
    identical state byte-identical.
    """
    payload = _index_payload(index)
    # The checksum covers the canonical payload encoding; the loader
    # re-canonicalises after parsing, so JSON round-trip stability (repr
    # floats, sorted keys) is the only property this relies on.
    envelope = {
        "kind": "community-index",
        "schema": SCHEMA_VERSION,
        "crc32": zlib.crc32(_canonical(payload)),
        "payload": payload,
    }
    atomic_write_bytes(
        pathlib.Path(path), gzip.compress(_canonical(envelope), mtime=0), faults
    )


def _read_archive(path: pathlib.Path) -> dict:
    """Decompress + parse an archive, mapping failures to typed errors."""
    try:
        with gzip.open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raise
    except (OSError, EOFError, zlib.error) as error:
        raise SnapshotCorruptionError(f"unreadable snapshot {path}: {error}") from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptionError(
            f"snapshot {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(document, dict):
        raise SnapshotCorruptionError(f"snapshot {path} holds no JSON object")
    return document


def _verified_payload(path: pathlib.Path, document: dict) -> dict:
    """Unwrap the checksummed envelope (tolerating pre-envelope archives)."""
    if "payload" not in document:
        # Legacy (pre-durability) archive: the payload is the document,
        # kind/schema live inside it, and there is no checksum to verify.
        return document
    payload = document["payload"]
    if not isinstance(payload, dict):
        raise SnapshotCorruptionError(f"snapshot {path} has a malformed payload")
    stored = document.get("crc32")
    actual = zlib.crc32(_canonical(payload))
    if stored != actual:
        raise SnapshotCorruptionError(
            f"snapshot {path} failed its checksum "
            f"(stored crc32={stored!r}, computed {actual}); refusing to serve "
            "corrupt state"
        )
    payload = dict(payload)
    payload.setdefault("kind", document.get("kind"))
    payload.setdefault("schema", document.get("schema"))
    return payload


def load_index(
    path: str | pathlib.Path, up_to_month: int | None = None
) -> LiveCommunityIndex:
    """Rebuild a :class:`LiveCommunityIndex` from a :func:`save_index` archive.

    The stored signature series, global features and social descriptors are
    injected instead of re-extracted; derived structures (social index, SAR
    dictionaries, LSB forest) are rebuilt deterministically from them.

    ``up_to_month=None`` (the default) restores the snapshot's saved
    watermark and descriptors exactly.  Passing an explicit month discards
    the saved social state and re-derives descriptors from the dataset's
    comment log through that month instead.

    Raises
    ------
    FileNotFoundError
        When *path* does not exist.
    SnapshotCorruptionError
        On a truncated/garbled gzip stream, undecodable JSON, checksum
        mismatch, or a payload of the wrong kind.
    SchemaMismatchError
        On an archive from an incompatible schema major version.
    """
    path = pathlib.Path(path)
    payload = _verified_payload(path, _read_archive(path))
    if payload.get("kind") != "community-index":
        raise SnapshotCorruptionError(
            f"not a community index payload: kind={payload.get('kind')!r}"
        )
    check_schema(payload)

    dataset = dataset_from_dict(payload["dataset"])
    config_dict = dict(payload["config"])
    config_dict["embedding_range"] = tuple(config_dict["embedding_range"])
    config = RecommenderConfig(**config_dict)

    features = {
        video_id: features_from_dict(entry)
        for video_id, entry in payload["features"].items()
    }
    content = ContentStore(
        config,
        build_lsb=payload.get("has_lsb", False),
        build_global_features=bool(features),
    )
    for video_id in sorted(payload["series"]):
        content.add_series(
            video_id,
            series_from_dict(video_id, payload["series"][video_id]),
            features.get(video_id),
        )

    social_payload = payload.get("social")
    if up_to_month is not None or social_payload is None:
        # Explicit watermark (or a pre-watermark archive): re-derive the
        # social state from the dataset's historical comment log.
        watermark = DEFAULT_UP_TO_MONTH if up_to_month is None else up_to_month
        descriptors = dataset.descriptors(up_to_month=watermark)
    else:
        watermark = int(social_payload["up_to_month"])
        descriptors = {
            video_id: SocialDescriptor.from_users(video_id, users)
            for video_id, users in social_payload["descriptors"].items()
        }
    social_store = SocialStore(
        descriptors,
        k=config.k,
        uig_pair_cap=config.uig_pair_cap,
        up_to_month=watermark,
        sketch_bits=config.sketch_bits,
        sketch_seed=config.sketch_seed,
    )

    # Restore the staleness clocks so consumers spanning a save/load cycle
    # (same process, e.g. A/B harnesses) never see a revision go backwards.
    saved_revisions = payload.get("revisions")
    if saved_revisions is not None:
        content.restore_revision(int(saved_revisions[0]))
        social_store.restore_revision(int(saved_revisions[1]))

    index = LiveCommunityIndex._from_parts(dataset, config, content, social_store)
    index.wal_seq = int(payload.get("wal_seq", 0))
    return index
