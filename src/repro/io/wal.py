"""Append-only write-ahead log for live index mutations, plus recovery.

Snapshots are checkpoints; everything between two checkpoints used to be
volatile — process death lost every acknowledged ingest/retire/comment
batch since the last ``save_index``.  The WAL closes that window:

* Every :class:`~repro.core.pipeline.LiveCommunityIndex` mutation appends
  one JSONL record **before** any store mutates.  A record carries a
  monotonically increasing sequence number and a CRC32 over its canonical
  body, so replay can tell "the tail was torn by a crash" (tolerated:
  truncate at the first bad record) from "the middle of an acknowledged
  log is damaged" (refused: :class:`WalCorruptionError`).
* Ingest records log the extracted signature series, global features and
  descriptor members, so replay never re-extracts — recovery is exact
  even for uploaded clips whose frames are not re-derivable.
* Snapshots persist ``wal_seq``, the last record they cover; replay skips
  that prefix, making :func:`recover` idempotent whichever side of a
  checkpoint the crash landed on.

:func:`recover(snapshot, wal) <recover>` therefore yields a live index
bit-identical to the uninterrupted run for any crash at a registered
point — the fault-injection suite asserts exactly that.

Record format (one per line, UTF-8)::

    {"crc": <crc32>, "op": "...", "payload": {...}, "seq": <n>}

where ``crc`` is computed over the canonical (sorted-key, no-whitespace)
encoding of ``{"op", "payload", "seq"}``.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from dataclasses import dataclass, field

from repro.community.models import Comment
from repro.core.pipeline import LiveCommunityIndex
from repro.core.stores import GlobalFeatures
from repro.errors import WalCorruptionError
from repro.io.index_store import (
    features_from_dict,
    features_to_dict,
    load_index,
    series_from_dict,
    series_to_dict,
)
from repro.io.serialize import record_from_dict, record_to_dict
from repro.obs import get_metrics
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor
from repro.testing.faults import NO_FAULTS, FaultPlan, register_crash_point

__all__ = [
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "read_wal",
    "recover",
    "replay_wal",
    "RecoveryInfo",
]

#: Before any byte of the record is written.
POINT_BEFORE_APPEND = register_crash_point(
    "wal.before_append", "record not yet written"
)
#: Half the record line is on disk (a torn tail on crash).
POINT_TORN_APPEND = register_crash_point(
    "wal.torn_append", "half the record line written"
)
#: The full line is written but not yet fsynced.
POINT_BEFORE_FSYNC = register_crash_point(
    "wal.before_fsync", "record written, fsync pending"
)
#: The record is durable; the in-memory mutation has not yet applied.
POINT_AFTER_APPEND = register_crash_point(
    "wal.after_append", "record durable, mutation pending"
)


@dataclass(frozen=True)
class WalRecord:
    """One validated log record."""

    seq: int
    op: str
    payload: dict


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a log file."""

    records: list[WalRecord]
    torn_tail: bool
    valid_bytes: int


def _record_crc(seq: int, op: str, payload: dict) -> int:
    body = json.dumps(
        {"op": op, "payload": payload, "seq": seq},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return zlib.crc32(body)


def _parse_line(line: bytes, expected_seq: int | None) -> WalRecord | None:
    """A validated record, or ``None`` if *line* is damaged in any way."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    try:
        seq, op, payload, crc = doc["seq"], doc["op"], doc["payload"], doc["crc"]
    except KeyError:
        return None
    if not isinstance(seq, int) or not isinstance(op, str) or not isinstance(payload, dict):
        return None
    if crc != _record_crc(seq, op, payload):
        return None
    if expected_seq is not None and seq != expected_seq:
        return None
    if expected_seq is None and seq < 1:
        return None
    return WalRecord(seq=seq, op=op, payload=payload)


def read_wal(path: str | pathlib.Path, missing_ok: bool = False) -> WalScan:
    """Scan a WAL, tolerating a torn tail.

    Records are validated line by line (JSON shape, CRC32, contiguous
    sequence numbers).  The first bad line and everything after it is
    dropped **only if** nothing after it validates — a crash can tear the
    tail, but it cannot damage the middle of an acknowledged log, so a
    valid record after a bad one means real corruption and raises
    :class:`WalCorruptionError`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        if missing_ok:
            return WalScan(records=[], torn_tail=False, valid_bytes=0)
        raise FileNotFoundError(f"no write-ahead log at {path}")
    raw = path.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    valid_bytes = 0
    bad_at: int | None = None
    for line in raw.split(b"\n"):
        advance = len(line) + 1
        if offset + len(line) >= len(raw):
            # Final fragment without a trailing newline: an append in
            # flight when the process died.  Empty means a clean end.
            if line and bad_at is None:
                bad_at = offset
            break
        expected = records[-1].seq + 1 if records else None
        record = None if bad_at is not None else _parse_line(line, expected)
        if bad_at is None and record is None:
            bad_at = offset
        elif bad_at is not None and _parse_line(line, None) is not None:
            raise WalCorruptionError(
                f"WAL {path} is corrupt: invalid record at byte {bad_at} is "
                "followed by valid ones (not a torn tail); refusing to "
                "silently drop acknowledged mutations"
            )
        elif record is not None:
            records.append(record)
            valid_bytes = offset + advance
        offset += advance
    return WalScan(records=records, torn_tail=bad_at is not None, valid_bytes=valid_bytes)


class WriteAheadLog:
    """Append-only JSONL log with per-record sequence numbers and CRC32.

    Opening an existing log scans it (repairing a torn tail by truncating
    to the last valid record) and continues the sequence.  Each append is
    flushed and fsynced before it returns, so an acknowledged mutation is
    durable; the ``wal.*`` crash points let the fault suite kill the
    process model at every step of that path.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        faults: FaultPlan | None = None,
        sync: bool = True,
    ) -> None:
        self.path = pathlib.Path(path)
        self.faults = NO_FAULTS if faults is None else faults
        self.sync = sync
        self._handle = None
        scan = read_wal(self.path, missing_ok=True)
        self.seq = scan.records[-1].seq if scan.records else 0
        if scan.torn_tail:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)

    # ------------------------------------------------------------------
    # Raw append path
    # ------------------------------------------------------------------
    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, op: str, payload: dict) -> int:
        """Durably append one record; returns its sequence number."""
        seq = self.seq + 1
        line = json.dumps(
            {
                "crc": _record_crc(seq, op, payload),
                "op": op,
                "payload": payload,
                "seq": seq,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8") + b"\n"
        self.faults.fire(POINT_BEFORE_APPEND, path=self.path)
        handle = self._open()
        handle.write(line[: len(line) // 2])
        handle.flush()
        self.faults.fire(POINT_TORN_APPEND, path=self.path)
        handle.write(line[len(line) // 2 :])
        handle.flush()
        self.faults.fire(POINT_BEFORE_FSYNC, path=self.path)
        metrics = get_metrics()
        if self.sync:
            os.fsync(handle.fileno())
            metrics.inc("repro_wal_fsyncs_total")
        self.faults.fire(POINT_AFTER_APPEND, path=self.path)
        self.seq = seq
        metrics.inc("repro_wal_appends_total")
        metrics.inc("repro_wal_bytes_total", len(line))
        return seq

    def close(self) -> None:
        """Close the underlying file handle (reopened on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mutation records (the LiveCommunityIndex logging protocol)
    # ------------------------------------------------------------------
    def log_ingest(
        self,
        record,
        series: SignatureSeries,
        features: GlobalFeatures | None,
        members,
    ) -> int:
        """Log one video ingest: record, extracted state, social members."""
        return self.append(
            "ingest",
            {
                "record": record_to_dict(record),
                "series": series_to_dict(series),
                "features": None if features is None else features_to_dict(features),
                "members": sorted(members),
            },
        )

    def log_retire(self, video_id: str) -> int:
        """Log one video retirement."""
        return self.append("retire", {"video_id": video_id})

    def log_comments(self, pairs, incremental: bool) -> int:
        """Log one comment batch (exact or incremental application)."""
        return self.append(
            "comments",
            {
                "pairs": [[user, video_id] for user, video_id in pairs],
                "incremental": bool(incremental),
            },
        )

    def log_comment_removal(self, pairs) -> int:
        """Log one comment-revocation batch (spam quarantine un-apply)."""
        return self.append(
            "comments_removed",
            {"pairs": [[user, video_id] for user, video_id in pairs]},
        )

    def log_watermark(self, month: int) -> int:
        """Log a watermark advance."""
        return self.append("watermark", {"month": int(month)})

    def log_comment_history(self, comments) -> int:
        """Log an extension of the dataset's historical comment log."""
        return self.append(
            "comment_history",
            {"comments": [[c.user_id, c.video_id, c.month] for c in comments]},
        )

    def log_social_add(self, video_id: str, members) -> int:
        """Log a social-only descriptor add (replication to a non-owner shard)."""
        return self.append(
            "social_add", {"video_id": video_id, "members": sorted(members)}
        )

    def log_social_retire(self, video_id: str) -> int:
        """Log a social-only descriptor retirement (non-owner shard)."""
        return self.append("social_retire", {"video_id": video_id})


@dataclass
class RecoveryInfo:
    """What :func:`recover` did (attached to the returned index)."""

    replayed: int = 0
    skipped: int = 0
    torn_tail: bool = False
    ops: dict[str, int] = field(default_factory=dict)


def _replay_record(index: LiveCommunityIndex, record: WalRecord) -> None:
    payload = record.payload
    if record.op == "ingest":
        video_record = record_from_dict(payload["record"])
        index.dataset.records[video_record.video_id] = video_record
        index.content.add_series(
            video_record.video_id,
            series_from_dict(video_record.video_id, payload["series"]),
            None
            if payload["features"] is None
            else features_from_dict(payload["features"]),
        )
        index.social_store.add_video(
            SocialDescriptor.from_users(video_record.video_id, payload["members"])
        )
    elif record.op == "retire":
        index.retire_video(payload["video_id"])
    elif record.op == "comments":
        index.apply_comments(
            [(user, video_id) for user, video_id in payload["pairs"]],
            incremental=payload["incremental"],
        )
    elif record.op == "comments_removed":
        index.remove_comments(
            [(user, video_id) for user, video_id in payload["pairs"]]
        )
    elif record.op == "watermark":
        index.advance_watermark(payload["month"])
    elif record.op == "comment_history":
        index.dataset.comments.extend(
            Comment(user_id=user, video_id=video_id, month=month)
            for user, video_id, month in payload["comments"]
        )
    elif record.op == "social_add":
        index.social_store.add_video(
            SocialDescriptor.from_users(payload["video_id"], payload["members"])
        )
    elif record.op == "social_retire":
        index.social_store.retire_video(payload["video_id"])
    else:
        raise WalCorruptionError(f"unknown WAL op {record.op!r} (seq {record.seq})")


def replay_wal(
    index: LiveCommunityIndex, wal_path: str | pathlib.Path
) -> RecoveryInfo:
    """Replay a WAL onto an already-loaded index (the recovery core).

    Replays every record with a sequence number beyond the index's
    ``wal_seq`` watermark.  A torn log tail (the record a crash
    interrupted) is dropped — that mutation was never acknowledged, so
    clients re-submit it; mid-log damage raises
    :class:`WalCorruptionError` instead of silently dropping history.
    Split out of :func:`recover` so a sharded deployment can load its
    shard snapshots independently (and in parallel) and replay each
    shard's own log.  The returned :class:`RecoveryInfo` also lands on
    ``index.recovery``.
    """
    scan = read_wal(wal_path, missing_ok=True)
    info = RecoveryInfo(torn_tail=scan.torn_tail)
    for record in scan.records:
        if record.seq <= index.wal_seq:
            info.skipped += 1
            continue
        _replay_record(index, record)
        index.wal_seq = record.seq
        info.replayed += 1
        info.ops[record.op] = info.ops.get(record.op, 0) + 1
    index.recovery = info
    metrics = get_metrics()
    metrics.inc("repro_wal_recoveries_total")
    metrics.inc("repro_wal_replayed_total", info.replayed)
    return info


def recover(
    snapshot_path: str | pathlib.Path, wal_path: str | pathlib.Path
) -> LiveCommunityIndex:
    """Rebuild the live index from a snapshot plus its write-ahead log.

    Loads the snapshot, then replays the log via :func:`replay_wal`.  The
    result is bit-identical (recommendations and component scores) to
    the uninterrupted run, which the fault-injection suite pins for every
    registered crash point.  A :class:`RecoveryInfo` lands on the returned
    index's ``recovery`` attribute.
    """
    index = load_index(snapshot_path)
    replay_wal(index, wal_path)
    return index
