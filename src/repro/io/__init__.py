"""Persistence: gzipped-JSON save/load for datasets and built indexes."""

from repro.io.index_store import load_index, save_index
from repro.io.serialize import (
    SCHEMA_VERSION,
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)

__all__ = [
    "SCHEMA_VERSION",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "load_index",
    "save_dataset",
    "save_index",
]
