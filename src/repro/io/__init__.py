"""Persistence: crash-safe gzipped-JSON archives, the WAL, and recovery."""

from repro.io.atomic import atomic_write_bytes
from repro.io.index_store import load_index, save_index
from repro.io.serialize import (
    SCHEMA_VERSION,
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)
from repro.io.wal import (
    RecoveryInfo,
    WalRecord,
    WalScan,
    WriteAheadLog,
    read_wal,
    recover,
    replay_wal,
)

__all__ = [
    "SCHEMA_VERSION",
    "RecoveryInfo",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "atomic_write_bytes",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "load_index",
    "read_wal",
    "recover",
    "replay_wal",
    "save_dataset",
    "save_index",
]
