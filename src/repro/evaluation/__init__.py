"""Evaluation: AR/AC/MAP metrics, the simulated judge panel, the harness."""

from repro.evaluation.harness import (
    EffectivenessReport,
    MetricsRow,
    Timer,
    evaluate_method,
    format_table,
)
from repro.evaluation.judges import DEFAULT_GRADE_RATINGS, JudgePanel
from repro.evaluation.metrics import (
    RELEVANT_THRESHOLD,
    average_accuracy,
    average_precision,
    average_rating,
    mean_average_precision,
)

__all__ = [
    "DEFAULT_GRADE_RATINGS",
    "EffectivenessReport",
    "JudgePanel",
    "MetricsRow",
    "RELEVANT_THRESHOLD",
    "Timer",
    "average_accuracy",
    "average_precision",
    "average_rating",
    "evaluate_method",
    "format_table",
    "mean_average_precision",
]
