"""Simulated user-study panel (substitute for the paper's 10 evaluators).

The paper's effectiveness numbers come from a subjective study: ten
computer-science students rate each recommended video 1–5 for relevance to
the source video.  We replace them with a seeded panel of simulated judges
anchored on the dataset's ground truth:

* a **near-duplicate** of the source (grade 2) reads as clearly relevant —
  base rating 4.8;
* a **same-topic** video (grade 1) is what a human calls "relevant but
  different footage" — base rating 4.35;
* an **unrelated** video (grade 0) — base rating 1.8.

Each judge carries a small personal bias (some rate harsher) and per-item
noise, and scores are clipped to ``[1, 5]``.  The per-video rating used by
the metrics is the panel mean, exactly as a user study averages its
evaluators.  Because every method is scored by the same panel against the
same ground truth, the *ordering* of methods is preserved even though the
absolute scale is synthetic.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.community.models import CommunityDataset
from repro.index.hashing import shift_add_xor

__all__ = ["JudgePanel", "DEFAULT_GRADE_RATINGS"]

#: Base rating each ground-truth grade anchors to.
DEFAULT_GRADE_RATINGS: dict[int, float] = {2: 4.8, 1: 4.35, 0: 1.8}


class JudgePanel:
    """A seeded panel of simulated relevance judges.

    Parameters
    ----------
    dataset:
        Supplies the ground-truth relevance grades.
    num_judges:
        Panel size (the paper used 10).
    noise:
        Per-judge, per-item rating noise (standard deviation).
    bias_spread:
        Standard deviation of each judge's personal offset.
    seed:
        Panel seed.  Ratings are deterministic per
        ``(query, video, judge)`` triple — the same pair always receives
        the same score regardless of which method retrieved it, like a
        real evaluator would.
    """

    def __init__(
        self,
        dataset: CommunityDataset,
        num_judges: int = 10,
        noise: float = 0.35,
        bias_spread: float = 0.15,
        grade_ratings: dict[int, float] | None = None,
        seed: int = 99,
    ) -> None:
        if num_judges < 1:
            raise ValueError("need at least one judge")
        self._dataset = dataset
        self._num_judges = num_judges
        self._noise = noise
        self._grade_ratings = dict(DEFAULT_GRADE_RATINGS if grade_ratings is None else grade_ratings)
        rng = np.random.default_rng(seed)
        self._biases = rng.normal(0.0, bias_spread, size=num_judges)
        self._seed = seed

    @property
    def num_judges(self) -> int:
        """Panel size."""
        return self._num_judges

    def rate(self, query_id: str, video_id: str) -> float:
        """Panel-mean rating of *video_id* as a recommendation for *query_id*.

        Deterministic per pair: the per-item noise is seeded from the pair
        identity, so ratings behave like cached human judgements.
        """
        grade = self._dataset.relevance_grade(query_id, video_id)
        base = self._grade_ratings[grade]
        # Stable across processes (Python's str hash is randomised).
        pair_seed = shift_add_xor(f"{self._seed}|{query_id}|{video_id}") & 0x7FFFFFFF
        rng = np.random.default_rng(pair_seed)
        scores = base + self._biases + rng.normal(0.0, self._noise, size=self._num_judges)
        return float(np.clip(scores, 1.0, 5.0).mean())

    def rate_list(self, query_id: str, video_ids: Sequence[str]) -> list[float]:
        """Ratings of a ranked recommendation list."""
        return [self.rate(query_id, video_id) for video_id in video_ids]
