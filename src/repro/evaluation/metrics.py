"""Effectiveness metrics: AR, AC, AP and MAP (paper Eqs. 10–12).

* **AR** — average rating score of the returned videos (Eq. 10a);
* **AC** — average accuracy: the proportion of returned videos whose
  rating exceeds 4 (Eq. 10b);
* **AP / MAP** — non-interpolated average precision, the TRECVID metric.
  The paper's Eq. 11 writes ``AP = sum P(γ) rel(γ)`` and separately defines
  ``N`` as the number of retrieved videos rated above 4; the standard
  TRECVID AP divides that sum by ``N``.  We follow the standard
  normalisation (documented here because the paper's equation omits it —
  almost certainly a typesetting slip, since an unnormalised AP is not a
  precision and cannot lie in [0, 1]).

Ratings are the per-video mean scores of the simulated judge panel, so
they are continuous in ``[1, 5]``.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["average_rating", "average_accuracy", "average_precision", "mean_average_precision", "RELEVANT_THRESHOLD"]

#: A returned video counts as relevant when its rating exceeds this value
#: ("rating score bigger than 4", Section 5.2).
RELEVANT_THRESHOLD = 4.0


def _validate(ratings: Sequence[float]) -> list[float]:
    values = [float(r) for r in ratings]
    if not values:
        raise ValueError("need at least one rating")
    for value in values:
        if not 1.0 <= value <= 5.0:
            raise ValueError(f"ratings live in [1, 5], got {value}")
    return values


def average_rating(ratings: Sequence[float]) -> float:
    """AR (Eq. 10a): mean rating of the returned videos."""
    values = _validate(ratings)
    return sum(values) / len(values)


def average_accuracy(ratings: Sequence[float], threshold: float = RELEVANT_THRESHOLD) -> float:
    """AC (Eq. 10b): share of returned videos rated above *threshold*."""
    values = _validate(ratings)
    relevant = sum(1 for value in values if value > threshold)
    return relevant / len(values)


def average_precision(ratings: Sequence[float], threshold: float = RELEVANT_THRESHOLD) -> float:
    """Non-interpolated AP over a ranked rating list (Eqs. 11).

    ``rel(γ)`` is 1 when the video at rank γ is rated above *threshold*;
    ``P(γ)`` is the precision of the prefix ending at γ.  Returns 0 when
    nothing relevant was retrieved.
    """
    values = _validate(ratings)
    hits = 0
    precision_sum = 0.0
    for rank, value in enumerate(values, start=1):
        if value > threshold:
            hits += 1
            precision_sum += hits / rank
    if hits == 0:
        return 0.0
    return precision_sum / hits


def mean_average_precision(
    rating_lists: Sequence[Sequence[float]], threshold: float = RELEVANT_THRESHOLD
) -> float:
    """MAP (Eq. 12): mean of per-query APs."""
    if not rating_lists:
        raise ValueError("need at least one query")
    return sum(average_precision(ratings, threshold) for ratings in rating_lists) / len(
        rating_lists
    )
