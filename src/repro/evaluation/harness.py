"""Experiment harness: run recommenders over sources, score, and tabulate.

The effectiveness protocol of Section 5 of the paper: for each of the 10
source videos, ask the system for its top-5 / top-10 / top-20
recommendations, have the judge panel rate every returned video, and report
AR, AC and MAP over all queries.  This module wraps that loop so every
bench and example runs through identical machinery.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.evaluation.judges import JudgePanel
from repro.evaluation.metrics import (
    average_accuracy,
    average_rating,
    mean_average_precision,
)
from repro.obs import get_metrics

__all__ = ["MetricsRow", "EffectivenessReport", "evaluate_method", "format_table", "Timer"]

#: A recommender under evaluation: ``(query_video_id, top_k) -> ranked ids``.
RecommendFn = Callable[[str, int], Sequence[str]]


@dataclass(frozen=True)
class MetricsRow:
    """AR / AC / MAP at one cut-off for one method."""

    method: str
    top_k: int
    ar: float
    ac: float
    map: float


@dataclass(frozen=True)
class EffectivenessReport:
    """All metric rows of one method plus its total recommendation time."""

    method: str
    rows: tuple[MetricsRow, ...]
    seconds: float

    def row(self, top_k: int) -> MetricsRow:
        """The row at cut-off *top_k*."""
        for row in self.rows:
            if row.top_k == top_k:
                return row
        raise KeyError(f"no row for top_k={top_k}")


def evaluate_method(
    method: str,
    recommend: RecommendFn,
    sources: Sequence[str],
    panel: JudgePanel,
    top_ks: Sequence[int] = (5, 10, 20),
    exclude_query: bool = True,
    close: bool = False,
    registry=None,
) -> EffectivenessReport:
    """Run *recommend* for every source and score the returned lists.

    The source video itself is dropped from its own recommendation list
    (recommending the clip the user is already watching is vacuous); one
    extra result is requested to compensate.

    *recommend* may be the usual ``(query, top_k) -> ids`` callable or an
    object exposing ``.recommend`` (e.g. a
    :class:`~repro.core.recommender.FusionRecommender`).  Every query is
    recorded into *registry* (the process-wide
    :func:`~repro.obs.get_metrics` one by default) as the
    ``repro_harness_query_seconds`` histogram and
    ``repro_harness_queries_total`` counter.  With ``close=True`` the
    recommender's ``close()`` (when it has one) is called afterwards, so
    sweeps that construct one recommender per configuration do not leak
    κJ worker pools.
    """
    if not sources:
        raise ValueError("need at least one source video")
    metrics = get_metrics() if registry is None else registry
    recommend_fn = getattr(recommend, "recommend", recommend)
    max_k = max(top_ks)
    ranked_lists: dict[str, list[str]] = {}
    started = time.perf_counter()
    try:
        for source in sources:
            with metrics.time("repro_harness_query_seconds"):
                results = list(
                    recommend_fn(source, max_k + (1 if exclude_query else 0))
                )
            metrics.inc("repro_harness_queries_total")
            if exclude_query:
                results = [video_id for video_id in results if video_id != source]
            ranked_lists[source] = results[:max_k]
    finally:
        if close:
            owner = getattr(recommend, "__self__", recommend)
            closer = getattr(owner, "close", None)
            if closer is not None:
                closer()
    seconds = time.perf_counter() - started

    rows = []
    for top_k in top_ks:
        per_query_ratings = [
            panel.rate_list(source, ranked_lists[source][:top_k]) for source in sources
        ]
        flat = [rating for ratings in per_query_ratings for rating in ratings]
        rows.append(
            MetricsRow(
                method=method,
                top_k=top_k,
                ar=average_rating(flat),
                ac=average_accuracy(flat),
                map=mean_average_precision(per_query_ratings),
            )
        )
    return EffectivenessReport(method=method, rows=tuple(rows), seconds=seconds)


def format_table(reports: Sequence[EffectivenessReport], top_ks: Sequence[int] = (5, 10, 20)) -> str:
    """Render reports as the AR/AC/MAP table the paper's figures chart."""
    header = f"{'method':<14}" + "".join(
        f"  AR@{k:<4} AC@{k:<4} MAP@{k:<3}" for k in top_ks
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        cells = []
        for top_k in top_ks:
            row = report.row(top_k)
            cells.append(f"  {row.ar:6.3f} {row.ac:6.3f} {row.map:7.3f}")
        lines.append(f"{report.method:<14}" + "".join(cells))
    return "\n".join(lines)


class Timer:
    """Tiny context-manager stopwatch used by the efficiency benches."""

    def __enter__(self) -> "Timer":
        self.seconds = 0.0
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._started
