"""Whole-video content features: series of cuboid signatures.

A video's content feature ``q_f`` is its *signature series*: one cuboid
signature per shot segment q-gram (Section 4.1).  This module runs the full
extraction pipeline — shot detection, keyframe selection, q-gram grouping,
cuboid extraction — and wraps the result in :class:`SignatureSeries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.emd.one_dim import PackedDistributions, pack_distributions
from repro.signatures.cuboid import CuboidSignature, signature_from_qgram
from repro.video.clip import VideoClip
from repro.video.keyframes import segment_qgrams
from repro.video.shots import segment_clip

__all__ = ["SignatureSeries", "extract_signature_series"]


@dataclass(frozen=True)
class SignatureSeries:
    """The ordered cuboid signatures of one video.

    κJ (Eq. 4) treats the series as a *set* — temporal order across
    segments deliberately does not matter — but order is preserved here
    because the ERP/DTW baseline measures (Fig. 7) need it.
    """

    video_id: str
    signatures: tuple[CuboidSignature, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.signatures:
            raise ValueError("a signature series must be non-empty")

    def __len__(self) -> int:
        return len(self.signatures)

    def __iter__(self):
        return iter(self.signatures)

    def __getitem__(self, index: int) -> CuboidSignature:
        return self.signatures[index]

    @cached_property
    def packed(self) -> PackedDistributions:
        """The series' signatures as contiguous padded value/weight matrices.

        Computed once (typically at index-build time) and cached on the
        instance; the batch scoring engine feeds these matrices straight
        into :func:`repro.emd.one_dim.emd_1d_one_vs_many` instead of
        re-reading per-signature arrays on every query.
        """
        return pack_distributions(
            [signature.values for signature in self.signatures],
            [signature.weights for signature in self.signatures],
        )


def extract_signature_series(
    clip: VideoClip,
    grid: int = 8,
    merge_threshold: float = 6.0,
    q: int = 2,
    keyframes_per_segment: int = 3,
    cut_median_factor: float = 3.0,
    cut_min_difference: float = 8.0,
) -> SignatureSeries:
    """Run the full content pipeline on *clip*.

    Segments come from the adaptive cut detector; each segment contributes
    ``keyframes_per_segment - q + 1`` q-grams (at least one), each of which
    becomes one cuboid signature.
    """
    segments = segment_clip(
        clip,
        median_factor=cut_median_factor,
        min_abs_difference=cut_min_difference,
    )
    signatures: list[CuboidSignature] = []
    for segment in segments:
        for qgram in segment_qgrams(clip, segment, q=q, keyframes_per_segment=keyframes_per_segment):
            signatures.append(
                signature_from_qgram(qgram, grid=grid, merge_threshold=merge_threshold)
            )
    return SignatureSeries(video_id=clip.video_id, signatures=tuple(signatures))
