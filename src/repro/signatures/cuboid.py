"""The video cuboid signature (Section 4.1 / reference [35] of the paper).

Construction over a video q-gram of ``q`` temporally consecutive keyframes:

1. divide every keyframe into a fixed ``grid x grid`` lattice of equal-size
   blocks;
2. in the **reference keyframe** (the first of the q-gram), merge spatially
   adjacent *similar* blocks into variable-size regions (region growing with
   4-connectivity, similarity = block-mean within ``merge_threshold`` of the
   growing region's running mean);
3. build one **video cuboid** per region by grouping the temporally adjacent
   blocks of the following keyframes; describe it as a pair ``(v, mu)``
   where ``v`` is the average intensity change between temporally adjacent
   blocks across the region and ``mu`` is the region's share of the frame
   area.

Weights are normalised to total mass 1 as Definition 1 requires, so two
signatures are comparable by EMD regardless of how many cuboids each has.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.video.frame import block_means

__all__ = ["CuboidSignature", "merge_blocks", "signature_from_qgram"]


@dataclass(frozen=True)
class CuboidSignature:
    """A set of video cuboids ``{(v_i, mu_i)}`` with unit total mass.

    Attributes
    ----------
    values:
        Scalar intensity-change values, one per cuboid.
    weights:
        Matching non-negative masses summing to 1.
    """

    values: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64).reshape(-1)
        weights = np.asarray(self.weights, dtype=np.float64).reshape(-1)
        if values.size == 0:
            raise ValueError("a signature needs at least one cuboid")
        if values.size != weights.size:
            raise ValueError("values and weights must have matching lengths")
        if np.any(weights <= 0):
            raise ValueError("cuboid weights must be positive")
        total = weights.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            weights = weights / total
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "weights", weights)

    @property
    def size(self) -> int:
        """Number of cuboids in the signature."""
        return int(self.values.size)

    def __len__(self) -> int:
        return self.size


def merge_blocks(reference_means: np.ndarray, merge_threshold: float) -> np.ndarray:
    """Merge spatially adjacent similar blocks of the reference keyframe.

    Region growing over the ``(grid, grid)`` block-mean lattice with
    4-connectivity: a neighbouring block joins the region when its mean is
    within *merge_threshold* of the region's running mean.

    Returns
    -------
    numpy.ndarray
        ``(grid, grid)`` integer label array; labels are contiguous from 0.
    """
    if merge_threshold < 0:
        raise ValueError("merge_threshold must be non-negative")
    grid_h, grid_w = reference_means.shape
    labels = np.full((grid_h, grid_w), -1, dtype=np.int64)
    next_label = 0
    for si in range(grid_h):
        for sj in range(grid_w):
            if labels[si, sj] != -1:
                continue
            labels[si, sj] = next_label
            region_sum = float(reference_means[si, sj])
            region_count = 1
            queue = deque([(si, sj)])
            while queue:
                i, j = queue.popleft()
                for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                    if not (0 <= ni < grid_h and 0 <= nj < grid_w):
                        continue
                    if labels[ni, nj] != -1:
                        continue
                    region_mean = region_sum / region_count
                    if abs(reference_means[ni, nj] - region_mean) <= merge_threshold:
                        labels[ni, nj] = next_label
                        region_sum += float(reference_means[ni, nj])
                        region_count += 1
                        queue.append((ni, nj))
            next_label += 1
    return labels


def signature_from_qgram(
    keyframes: list[np.ndarray],
    grid: int = 8,
    merge_threshold: float = 12.0,
) -> CuboidSignature:
    """Extract the cuboid signature of one q-gram of keyframes.

    Parameters
    ----------
    keyframes:
        ``q >= 2`` equal-shape grayscale frames, temporally ordered.
    grid:
        Block lattice resolution per keyframe.
    merge_threshold:
        Intensity tolerance for the spatial block merge on the reference
        keyframe.

    Returns
    -------
    CuboidSignature
        One ``(v, mu)`` cuboid per merged region: ``v`` is the mean
        temporal intensity change over the region, ``mu`` its area share.
    """
    if len(keyframes) < 2:
        raise ValueError("a q-gram needs at least two keyframes")
    shapes = {frame.shape for frame in keyframes}
    if len(shapes) != 1:
        raise ValueError(f"keyframes must share one shape, got {shapes}")

    means = np.stack([block_means(frame, grid) for frame in keyframes])
    labels = merge_blocks(means[0], merge_threshold)
    # Temporal change per block: mean of consecutive differences, i.e. the
    # total drift divided by the number of steps.
    changes = np.diff(means, axis=0).mean(axis=0)

    n_regions = int(labels.max()) + 1
    values = np.empty(n_regions, dtype=np.float64)
    weights = np.empty(n_regions, dtype=np.float64)
    flat_labels = labels.reshape(-1)
    flat_changes = changes.reshape(-1)
    for region in range(n_regions):
        mask = flat_labels == region
        values[region] = flat_changes[mask].mean()
        weights[region] = mask.sum()
    return CuboidSignature(values=values, weights=weights / weights.sum())
