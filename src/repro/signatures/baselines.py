"""Baseline compact signatures from the near-duplicate-detection literature.

Section 2.2 / 4.1 of the paper surveys the alternatives to the cuboid
signature — ordinal signatures [14], color-shift signatures [40] and
centroid signatures [40] — and argues each has a weakness the cuboid model
avoids.  We implement them so the ablation benches can demonstrate those
weaknesses on the synthetic substrate:

* **ordinal**: per-keyframe rank matrix of block means — invariant to global
  photometric change, broken by spatial editing (crops shift the ranks);
* **color shift**: per-step global mean-intensity difference — robust but
  barely discriminative (a single scalar per frame step);
* **centroid**: movement of the lightest and darkest block centroids between
  adjacent keyframes.
"""

from __future__ import annotations

import numpy as np

from repro.video.clip import VideoClip
from repro.video.frame import block_means
from repro.video.keyframes import select_keyframes
from repro.video.shots import segment_clip

__all__ = [
    "ordinal_signature",
    "ordinal_distance",
    "color_shift_signature",
    "color_shift_distance",
    "centroid_signature",
    "centroid_distance",
]


def ordinal_signature(frame: np.ndarray, grid: int = 4) -> np.ndarray:
    """Rank matrix of block mean intensities (flattened, ranks from 0)."""
    means = block_means(frame, grid).reshape(-1)
    ranks = np.empty_like(means, dtype=np.int64)
    ranks[np.argsort(means, kind="stable")] = np.arange(means.size)
    return ranks


def ordinal_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Normalised L1 distance between two rank matrices (in ``[0, 1]``)."""
    if first.shape != second.shape:
        raise ValueError("ordinal signatures must share a shape")
    n = first.size
    # Max L1 distance between two permutations of {0..n-1} is floor(n^2 / 2).
    worst = max((n * n) // 2, 1)
    return float(np.sum(np.abs(first - second))) / worst


def color_shift_signature(clip: VideoClip, samples: int = 16) -> np.ndarray:
    """Sequence of global mean-intensity differences between sampled frames."""
    if samples < 2:
        raise ValueError("need at least two samples")
    indices = np.linspace(0, clip.num_frames - 1, samples).astype(int)
    means = np.array([float(clip.frames[i].mean()) for i in indices])
    return np.diff(means)


def color_shift_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Mean absolute difference between two color-shift sequences."""
    n = min(first.size, second.size)
    if n == 0:
        raise ValueError("empty color-shift signature")
    return float(np.mean(np.abs(first[:n] - second[:n])))


def centroid_signature(clip: VideoClip, grid: int = 4, samples: int = 8) -> np.ndarray:
    """Track the (row, col) of the lightest and darkest blocks over time.

    Returns a ``(samples, 4)`` array: lightest row/col then darkest row/col
    per sampled keyframe, in block coordinates.
    """
    indices = np.linspace(0, clip.num_frames - 1, samples).astype(int)
    track = np.empty((samples, 4), dtype=np.float64)
    for row, frame_index in enumerate(indices):
        means = block_means(clip.frames[frame_index], grid)
        light = np.unravel_index(int(np.argmax(means)), means.shape)
        dark = np.unravel_index(int(np.argmin(means)), means.shape)
        track[row] = (light[0], light[1], dark[0], dark[1])
    return track


def centroid_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Mean Euclidean displacement between two centroid tracks."""
    n = min(first.shape[0], second.shape[0])
    if n == 0:
        raise ValueError("empty centroid signature")
    gap = first[:n] - second[:n]
    light = np.linalg.norm(gap[:, :2], axis=1)
    dark = np.linalg.norm(gap[:, 2:], axis=1)
    return float(np.mean(light + dark))


def segment_color_shift_series(clip: VideoClip, samples_per_segment: int = 4) -> list[np.ndarray]:
    """Per-segment color-shift signatures (segment-level baseline variant)."""
    series = []
    for segment in segment_clip(clip):
        keyframes = select_keyframes(clip, segment, samples_per_segment)
        means = np.array([float(frame.mean()) for frame in keyframes])
        series.append(np.diff(means))
    return series
