"""Compact content signatures: the cuboid model plus literature baselines."""

from repro.signatures.baselines import (
    centroid_distance,
    centroid_signature,
    color_shift_distance,
    color_shift_signature,
    ordinal_distance,
    ordinal_signature,
)
from repro.signatures.cuboid import CuboidSignature, merge_blocks, signature_from_qgram
from repro.signatures.series import SignatureSeries, extract_signature_series

__all__ = [
    "CuboidSignature",
    "SignatureSeries",
    "centroid_distance",
    "centroid_signature",
    "color_shift_distance",
    "color_shift_signature",
    "extract_signature_series",
    "merge_blocks",
    "ordinal_distance",
    "ordinal_signature",
    "signature_from_qgram",
]
