"""Whole-sequence content measures: ERP and DTW over signature series.

Figure 7 of the paper compares κJ against two classic time-series measures
applied to the signature series — **ERP** (Edit distance with Real Penalty,
Chen & Ng) and **DTW** (Dynamic Time Warping).  Both respect the temporal
order of the *whole* sequence, which is exactly why sequence re-editing
(segment reordering, insertions) breaks them while the set-based κJ is
unaffected.

The element distance between two cuboid signatures is their EMD; ERP's gap
penalty is the EMD to the *zero signature* (a single cuboid at value 0 with
unit mass), following ERP's constant-reference-gap construction.  Both
measures are exposed as distances plus ``1 / (1 + d)`` similarities so the
recommendation harness can rank with any of the three measures uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.emd.one_dim import emd_1d
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries

__all__ = [
    "erp_distance",
    "erp_similarity",
    "dtw_distance",
    "dtw_similarity",
]

_ZERO_SIGNATURE = CuboidSignature(values=np.array([0.0]), weights=np.array([1.0]))


def _emd(first: CuboidSignature, second: CuboidSignature) -> float:
    return emd_1d(first.values, first.weights, second.values, second.weights)


def erp_distance(first: SignatureSeries, second: SignatureSeries) -> float:
    """Edit distance with Real Penalty between two signature series.

    Standard ERP recurrence with the zero signature as the gap reference:
    aligning a signature against a gap costs its EMD to the zero signature.
    """
    n, m = len(first), len(second)
    gap_a = np.array([_emd(sig, _ZERO_SIGNATURE) for sig in first])
    gap_b = np.array([_emd(sig, _ZERO_SIGNATURE) for sig in second])
    table = np.zeros((n + 1, m + 1), dtype=np.float64)
    table[1:, 0] = np.cumsum(gap_a)
    table[0, 1:] = np.cumsum(gap_b)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            match = table[i - 1, j - 1] + _emd(first[i - 1], second[j - 1])
            delete = table[i - 1, j] + gap_a[i - 1]
            insert = table[i, j - 1] + gap_b[j - 1]
            table[i, j] = min(match, delete, insert)
    return float(table[n, m])


def erp_similarity(first: SignatureSeries, second: SignatureSeries) -> float:
    """``1 / (1 + ERP)`` similarity in ``(0, 1]``."""
    return 1.0 / (1.0 + erp_distance(first, second))


def dtw_distance(
    first: SignatureSeries,
    second: SignatureSeries,
    normalize: bool = True,
) -> float:
    """Dynamic Time Warping distance between two signature series.

    Classic unconstrained DTW with EMD as the local cost.  With
    ``normalize=True`` the accumulated cost is divided by ``n + m`` so that
    series of different lengths are comparable when ranking.
    """
    n, m = len(first), len(second)
    table = np.full((n + 1, m + 1), np.inf, dtype=np.float64)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = _emd(first[i - 1], second[j - 1])
            table[i, j] = cost + min(
                table[i - 1, j - 1], table[i - 1, j], table[i, j - 1]
            )
    distance = float(table[n, m])
    return distance / (n + m) if normalize else distance


def dtw_similarity(first: SignatureSeries, second: SignatureSeries) -> float:
    """``1 / (1 + DTW)`` similarity in ``(0, 1]``."""
    return 1.0 / (1.0 + dtw_distance(first, second))
