"""Content relevance: SimC (Eq. 3) and the extended Jaccard κJ (Eq. 4).

``SimC(C1, C2) = 1 / (1 + EMD(C1, C2))`` maps the EMD between two cuboid
signatures into a ``(0, 1]`` similarity.

``κJ(S1, S2)`` extends the Jaccard coefficient from exact set intersection
to *soft* intersection: matched signature pairs contribute their SimC value
to the numerator, and the denominator is the size of the union under the
matching.  The paper's Eq. 4 leaves the pair-matching implicit ("the
similarity between matched video cuboid signatures"); we implement a
one-to-one greedy matching over descending SimC with a minimum-similarity
threshold, plus a literal all-pairs variant for the ablation bench.

Two execution paths compute the SimC matrix:

* **scalar** — one :func:`repro.emd.one_dim.emd_1d` call per signature
  pair (the original per-pair path, kept for parity testing and the
  Figure-12 wall-clock benches);
* **batch** — one :func:`repro.emd.one_dim.emd_1d_one_vs_many` call per
  *query* signature against padded candidate matrices.
  :class:`SignatureBank` extends this to one query against every series
  in a community at once, which is what the batch recommendation engine
  drives.

Both paths share :func:`_greedy_match`, so the matching semantics are
identical by construction.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.emd.one_dim import PackedDistributions, emd_1d, emd_1d_one_vs_many
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries

__all__ = [
    "sim_c",
    "kappa_j",
    "kappa_j_all_pairs",
    "pairwise_sim_matrix",
    "SignatureBank",
]


def sim_c(first: CuboidSignature, second: CuboidSignature) -> float:
    """EMD-derived similarity between two cuboid signatures (Eq. 3)."""
    distance = emd_1d(first.values, first.weights, second.values, second.weights)
    return 1.0 / (1.0 + distance)


def _sim_matrix_vs_packed(
    query: SignatureSeries, packed: PackedDistributions
) -> np.ndarray:
    """``(len(query), len(packed))`` SimC matrix via the batched EMD kernel."""
    matrix = np.empty((len(query), len(packed)), dtype=np.float64)
    for i, signature in enumerate(query):
        matrix[i] = emd_1d_one_vs_many(
            signature.values, signature.weights, packed.values, packed.weights
        )
    np.reciprocal(1.0 + matrix, out=matrix)
    return matrix


def pairwise_sim_matrix(
    first: SignatureSeries, second: SignatureSeries, engine: str = "scalar"
) -> np.ndarray:
    """``(len(first), len(second))`` matrix of SimC values.

    ``engine="batch"`` computes each row with one vectorized
    :func:`emd_1d_one_vs_many` call over *second*'s padded arrays instead
    of a Python double loop; results agree with the scalar path to float
    rounding (well under 1e-9).
    """
    if engine == "batch":
        return _sim_matrix_vs_packed(first, second.packed)
    matrix = np.empty((len(first), len(second)), dtype=np.float64)
    for i, sig_a in enumerate(first):
        for j, sig_b in enumerate(second):
            matrix[i, j] = sim_c(sig_a, sig_b)
    return matrix


def _greedy_match(matrix: np.ndarray, match_threshold: float) -> tuple[float, int]:
    """One-to-one greedy matching over descending SimC.

    Returns ``(sum of matched SimC, number of matched pairs)``.  Shared by
    the scalar and batch κJ paths so their matching semantics cannot
    diverge.
    """
    n1, n2 = matrix.shape
    order = np.argsort(matrix, axis=None)[::-1]
    used_rows = np.zeros(n1, dtype=bool)
    used_cols = np.zeros(n2, dtype=bool)
    matched_total = 0.0
    matched_count = 0
    for flat in order:
        i, j = divmod(int(flat), n2)
        value = matrix[i, j]
        if value < match_threshold:
            break
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        matched_total += float(value)
        matched_count += 1
    return matched_total, matched_count


def kappa_j(
    first: SignatureSeries,
    second: SignatureSeries,
    match_threshold: float = 0.2,
    sim_matrix: np.ndarray | None = None,
) -> float:
    """Extended Jaccard similarity between two signature series (Eq. 4).

    Pairs are matched greedily by descending SimC; only pairs with SimC at
    least *match_threshold* count as matched.  With ``M`` matched pairs the
    result is ``sum(matched SimC) / (|S1| + |S2| - M)`` — reducing to the
    classic Jaccard coefficient when all matched similarities are exactly 1.

    Parameters
    ----------
    sim_matrix:
        Optional precomputed :func:`pairwise_sim_matrix` (benchmarks reuse
        it across threshold sweeps, and the batch engine passes in slices
        of a :class:`SignatureBank` matrix) — the matching step consumes
        scalar- and batch-computed matrices identically.
    """
    if not 0.0 <= match_threshold <= 1.0:
        raise ValueError(f"match_threshold must be in [0, 1], got {match_threshold}")
    matrix = sim_matrix if sim_matrix is not None else pairwise_sim_matrix(first, second)
    n1, n2 = matrix.shape
    matched_total, matched_count = _greedy_match(matrix, match_threshold)
    union = n1 + n2 - matched_count
    return matched_total / union if union > 0 else 0.0


def kappa_j_all_pairs(first: SignatureSeries, second: SignatureSeries) -> float:
    """Literal all-pairs reading of Eq. 4 (ablation variant).

    Sums SimC over *every* cross pair and divides by ``|S1| + |S2|``.  Less
    selective than the matched version — kept to quantify how much the
    matching step matters.
    """
    matrix = pairwise_sim_matrix(first, second)
    return float(matrix.sum()) / (len(first) + len(second))


class SignatureBank:
    """All of a community's signatures stacked for one-vs-all κJ scoring.

    Concatenates every series' cuboid value/weight arrays into one padded
    matrix pair (rows grouped per video), so a query series needs only
    ``len(query)`` vectorized EMD calls to obtain the SimC matrices
    against *every* candidate, after which the per-candidate greedy
    matching runs on column slices.  This is the content kernel of the
    batch recommendation engine.

    The bank is **incrementally maintainable**: :meth:`append` adds a
    video's rows at the tail (amortised-O(rows) via capacity doubling),
    :meth:`remove` tombstones a video's rows in place, and
    :meth:`compact` reclaims dead rows and re-packs to the live maximum
    signature width.  Removal compacts automatically when the dead
    fraction exceeds 50% *or* when the padded width could shrink — the
    latter keeps batch scores bit-identical to a bank built cold from the
    same live series (padding width perturbs float reduction order).
    """

    def __init__(self, series: dict[str, SignatureSeries]) -> None:
        if not series:
            raise ValueError("cannot build a SignatureBank from no series")
        self.video_ids: list[str] = []
        self._series: dict[str, SignatureSeries] = {}
        self._row_slices: dict[str, slice] = {}
        self._count = 0
        self._dead_rows = 0
        self._width = 0
        self._values = np.empty((0, 0), dtype=np.float64)
        self._weights = np.empty((0, 0), dtype=np.float64)
        self._lengths = np.empty(0, dtype=np.int64)
        self._pads = np.empty(0, dtype=np.float64)
        for video_id in sorted(series):
            self.append(video_id, series[video_id])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """``(rows, width)`` padded value matrix (live + tombstoned rows)."""
        return self._values[: self._count]

    @property
    def weights(self) -> np.ndarray:
        """``(rows, width)`` normalised weight matrix matching :attr:`values`."""
        return self._weights[: self._count]

    @property
    def width(self) -> int:
        """Current padded signature width."""
        return self._width

    @property
    def dead_rows(self) -> int:
        """Tombstoned rows not yet reclaimed by :meth:`compact`."""
        return self._dead_rows

    def __len__(self) -> int:
        return len(self.video_ids)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._row_slices

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def _grow(self, extra_rows: int, width: int) -> None:
        capacity = self._values.shape[0]
        needed = self._count + extra_rows
        if needed > capacity or width > self._width:
            new_capacity = max(needed, 2 * capacity)
            new_width = max(width, self._width)
            values = np.empty((new_capacity, new_width), dtype=np.float64)
            weights = np.zeros((new_capacity, new_width), dtype=np.float64)
            lengths = np.empty(new_capacity, dtype=np.int64)
            pads = np.empty(new_capacity, dtype=np.float64)
            count = self._count
            values[:count, : self._width] = self._values[:count]
            # Widening extends every existing row with its own pad value,
            # exactly as a cold build at the new width would.
            if new_width > self._width and count:
                values[:count, self._width :] = self._pads[:count, None]
            weights[:count, : self._width] = self._weights[:count]
            lengths[:count] = self._lengths[:count]
            pads[:count] = self._pads[:count]
            self._values, self._weights = values, weights
            self._lengths, self._pads = lengths, pads
            self._width = new_width

    def append(self, video_id: str, series: SignatureSeries) -> None:
        """Add *series* under *video_id* without rebuilding existing rows."""
        if video_id in self._row_slices:
            raise ValueError(f"video {video_id!r} is already in the bank")
        if len(series) == 0:
            raise ValueError(f"cannot append an empty series for {video_id!r}")
        rows = len(series)
        width = max(signature.values.size for signature in series)
        self._grow(rows, width)
        start = self._count
        for offset, signature in enumerate(series):
            v, w = signature.values, signature.weights
            n = v.size
            row = start + offset
            pad = v.max()
            self._values[row, :n] = v
            self._values[row, n:] = pad
            self._weights[row, :n] = w / w.sum()
            self._weights[row, n:] = 0.0
            self._lengths[row] = n
            self._pads[row] = pad
        self._row_slices[video_id] = slice(start, start + rows)
        bisect.insort(self.video_ids, video_id)
        self._series[video_id] = series
        self._count += rows

    def remove(self, video_id: str) -> None:
        """Tombstone *video_id*'s rows; compacts when width can shrink."""
        block = self._row_slices.pop(video_id, None)
        if block is None:
            raise KeyError(f"video {video_id!r} is not in the bank")
        self.video_ids.remove(video_id)
        del self._series[video_id]
        self._dead_rows += block.stop - block.start
        live_width = max(
            (
                int(self._lengths[s.start : s.stop].max())
                for s in self._row_slices.values()
            ),
            default=0,
        )
        if live_width < self._width or self._dead_rows > 0.5 * max(1, self._count):
            self.compact()

    def compact(self) -> None:
        """Reclaim tombstoned rows and re-pack at the live maximum width.

        The result is bit-identical (rows, padding and order) to a bank
        built cold from the surviving series.
        """
        live_rows = self._count - self._dead_rows
        live_width = max(
            (
                int(self._lengths[s.start : s.stop].max())
                for s in self._row_slices.values()
            ),
            default=0,
        )
        values = np.empty((live_rows, live_width), dtype=np.float64)
        weights = np.zeros((live_rows, live_width), dtype=np.float64)
        lengths = np.empty(live_rows, dtype=np.int64)
        pads = np.empty(live_rows, dtype=np.float64)
        slices: dict[str, slice] = {}
        start = 0
        for video_id in self.video_ids:
            old = self._row_slices[video_id]
            rows = old.stop - old.start
            # Narrower rows carry their pad value in the trailing columns
            # already, so a plain truncating copy preserves the padding.
            values[start : start + rows] = self._values[old, :live_width]
            weights[start : start + rows] = self._weights[old, :live_width]
            lengths[start : start + rows] = self._lengths[old]
            pads[start : start + rows] = self._pads[old]
            slices[video_id] = slice(start, start + rows)
            start += rows
        self._values, self._weights = values, weights
        self._lengths, self._pads = lengths, pads
        self._row_slices = slices
        self._count = live_rows
        self._dead_rows = 0
        self._width = live_width

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "SignatureBank":
        """A copy-on-write snapshot sharing the padded matrices.

        The containers (video ids, row slices, series map) are copied; the
        value/weight/length/pad arrays are **shared**.  Sharing is safe
        under the bank's append-only array discipline: live mutations only
        ever (a) write rows at or beyond the current ``_count`` — which a
        snapshot taken at that count never reads — or (b) swap in freshly
        allocated arrays (``_grow`` widening, :meth:`compact`), which the
        snapshot does not observe.  This is what gives the serving
        gateway's epoch publication O(videos) cost instead of O(rows ×
        width).  The snapshot itself must be treated as immutable except
        for its own :meth:`compact` (which allocates fresh arrays and so
        cannot disturb the live bank)."""
        clone = SignatureBank.__new__(SignatureBank)
        clone.video_ids = list(self.video_ids)
        clone._series = dict(self._series)
        clone._row_slices = dict(self._row_slices)
        clone._count = self._count
        clone._dead_rows = self._dead_rows
        clone._width = self._width
        clone._values = self._values
        clone._weights = self._weights
        clone._lengths = self._lengths
        clone._pads = self._pads
        return clone

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def sim_matrix(self, query: SignatureSeries) -> np.ndarray:
        """``(len(query), live_signatures)`` SimC matrix vs every live row."""
        if self._dead_rows:
            self.compact()
        matrix = np.empty((len(query), self._count), dtype=np.float64)
        for i, signature in enumerate(query):
            matrix[i] = emd_1d_one_vs_many(
                signature.values, signature.weights, self.values, self.weights
            )
        np.reciprocal(1.0 + matrix, out=matrix)
        return matrix

    def kappa_j_scores(
        self,
        query: SignatureSeries,
        video_ids: list[str],
        match_threshold: float,
    ) -> np.ndarray:
        """κJ of *query* against each listed video, batch-computed.

        One vectorized EMD call per query signature covers every listed
        candidate at once; the greedy matching then consumes per-candidate
        column slices of the shared SimC matrix.  When *video_ids* is a
        strict subset (KNN refinement blocks, worker chunks) only the
        relevant signature rows are gathered and scored.
        """
        slices = [self._row_slices[video_id] for video_id in video_ids]
        total_rows = self.values.shape[0]
        if sum(s.stop - s.start for s in slices) == total_rows:
            values, weights = self.values, self.weights
            local = slices
        else:
            rows = np.concatenate(
                [np.arange(s.start, s.stop) for s in slices]
            )
            values = self.values[rows]
            weights = self.weights[rows]
            local = []
            start = 0
            for s in slices:
                local.append(slice(start, start + (s.stop - s.start)))
                start = local[-1].stop

        sim = np.empty((len(query), values.shape[0]), dtype=np.float64)
        for i, signature in enumerate(query):
            sim[i] = emd_1d_one_vs_many(
                signature.values, signature.weights, values, weights
            )
        np.reciprocal(1.0 + sim, out=sim)

        n1 = len(query)
        scores = np.empty(len(video_ids), dtype=np.float64)
        for position, block_slice in enumerate(local):
            block = sim[:, block_slice]
            matched_total, matched_count = _greedy_match(block, match_threshold)
            union = n1 + block.shape[1] - matched_count
            scores[position] = matched_total / union if union > 0 else 0.0
        return scores
