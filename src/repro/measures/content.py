"""Content relevance: SimC (Eq. 3) and the extended Jaccard κJ (Eq. 4).

``SimC(C1, C2) = 1 / (1 + EMD(C1, C2))`` maps the EMD between two cuboid
signatures into a ``(0, 1]`` similarity.

``κJ(S1, S2)`` extends the Jaccard coefficient from exact set intersection
to *soft* intersection: matched signature pairs contribute their SimC value
to the numerator, and the denominator is the size of the union under the
matching.  The paper's Eq. 4 leaves the pair-matching implicit ("the
similarity between matched video cuboid signatures"); we implement a
one-to-one greedy matching over descending SimC with a minimum-similarity
threshold, plus a literal all-pairs variant for the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.emd.one_dim import emd_1d
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries

__all__ = ["sim_c", "kappa_j", "kappa_j_all_pairs", "pairwise_sim_matrix"]


def sim_c(first: CuboidSignature, second: CuboidSignature) -> float:
    """EMD-derived similarity between two cuboid signatures (Eq. 3)."""
    distance = emd_1d(first.values, first.weights, second.values, second.weights)
    return 1.0 / (1.0 + distance)


def pairwise_sim_matrix(
    first: SignatureSeries, second: SignatureSeries
) -> np.ndarray:
    """``(len(first), len(second))`` matrix of SimC values."""
    matrix = np.empty((len(first), len(second)), dtype=np.float64)
    for i, sig_a in enumerate(first):
        for j, sig_b in enumerate(second):
            matrix[i, j] = sim_c(sig_a, sig_b)
    return matrix


def kappa_j(
    first: SignatureSeries,
    second: SignatureSeries,
    match_threshold: float = 0.2,
    sim_matrix: np.ndarray | None = None,
) -> float:
    """Extended Jaccard similarity between two signature series (Eq. 4).

    Pairs are matched greedily by descending SimC; only pairs with SimC at
    least *match_threshold* count as matched.  With ``M`` matched pairs the
    result is ``sum(matched SimC) / (|S1| + |S2| - M)`` — reducing to the
    classic Jaccard coefficient when all matched similarities are exactly 1.

    Parameters
    ----------
    sim_matrix:
        Optional precomputed :func:`pairwise_sim_matrix` (benchmarks reuse
        it across threshold sweeps).
    """
    if not 0.0 <= match_threshold <= 1.0:
        raise ValueError(f"match_threshold must be in [0, 1], got {match_threshold}")
    matrix = sim_matrix if sim_matrix is not None else pairwise_sim_matrix(first, second)
    n1, n2 = matrix.shape
    order = np.argsort(matrix, axis=None)[::-1]
    used_rows = np.zeros(n1, dtype=bool)
    used_cols = np.zeros(n2, dtype=bool)
    matched_total = 0.0
    matched_count = 0
    for flat in order:
        i, j = divmod(int(flat), n2)
        value = matrix[i, j]
        if value < match_threshold:
            break
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        matched_total += float(value)
        matched_count += 1
    union = n1 + n2 - matched_count
    return matched_total / union if union > 0 else 0.0


def kappa_j_all_pairs(first: SignatureSeries, second: SignatureSeries) -> float:
    """Literal all-pairs reading of Eq. 4 (ablation variant).

    Sums SimC over *every* cross pair and divides by ``|S1| + |S2|``.  Less
    selective than the matched version — kept to quantify how much the
    matching step matters.
    """
    matrix = pairwise_sim_matrix(first, second)
    return float(matrix.sum()) / (len(first) + len(second))
