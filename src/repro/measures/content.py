"""Content relevance: SimC (Eq. 3) and the extended Jaccard κJ (Eq. 4).

``SimC(C1, C2) = 1 / (1 + EMD(C1, C2))`` maps the EMD between two cuboid
signatures into a ``(0, 1]`` similarity.

``κJ(S1, S2)`` extends the Jaccard coefficient from exact set intersection
to *soft* intersection: matched signature pairs contribute their SimC value
to the numerator, and the denominator is the size of the union under the
matching.  The paper's Eq. 4 leaves the pair-matching implicit ("the
similarity between matched video cuboid signatures"); we implement a
one-to-one greedy matching over descending SimC with a minimum-similarity
threshold, plus a literal all-pairs variant for the ablation bench.

Two execution paths compute the SimC matrix:

* **scalar** — one :func:`repro.emd.one_dim.emd_1d` call per signature
  pair (the original per-pair path, kept for parity testing and the
  Figure-12 wall-clock benches);
* **batch** — one :func:`repro.emd.one_dim.emd_1d_one_vs_many` call per
  *query* signature against padded candidate matrices.
  :class:`SignatureBank` extends this to one query against every series
  in a community at once, which is what the batch recommendation engine
  drives.

Both paths share :func:`_greedy_match`, so the matching semantics are
identical by construction.
"""

from __future__ import annotations

import numpy as np

from repro.emd.one_dim import PackedDistributions, emd_1d, emd_1d_one_vs_many
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries

__all__ = [
    "sim_c",
    "kappa_j",
    "kappa_j_all_pairs",
    "pairwise_sim_matrix",
    "SignatureBank",
]


def sim_c(first: CuboidSignature, second: CuboidSignature) -> float:
    """EMD-derived similarity between two cuboid signatures (Eq. 3)."""
    distance = emd_1d(first.values, first.weights, second.values, second.weights)
    return 1.0 / (1.0 + distance)


def _sim_matrix_vs_packed(
    query: SignatureSeries, packed: PackedDistributions
) -> np.ndarray:
    """``(len(query), len(packed))`` SimC matrix via the batched EMD kernel."""
    matrix = np.empty((len(query), len(packed)), dtype=np.float64)
    for i, signature in enumerate(query):
        matrix[i] = emd_1d_one_vs_many(
            signature.values, signature.weights, packed.values, packed.weights
        )
    np.reciprocal(1.0 + matrix, out=matrix)
    return matrix


def pairwise_sim_matrix(
    first: SignatureSeries, second: SignatureSeries, engine: str = "scalar"
) -> np.ndarray:
    """``(len(first), len(second))`` matrix of SimC values.

    ``engine="batch"`` computes each row with one vectorized
    :func:`emd_1d_one_vs_many` call over *second*'s padded arrays instead
    of a Python double loop; results agree with the scalar path to float
    rounding (well under 1e-9).
    """
    if engine == "batch":
        return _sim_matrix_vs_packed(first, second.packed)
    matrix = np.empty((len(first), len(second)), dtype=np.float64)
    for i, sig_a in enumerate(first):
        for j, sig_b in enumerate(second):
            matrix[i, j] = sim_c(sig_a, sig_b)
    return matrix


def _greedy_match(matrix: np.ndarray, match_threshold: float) -> tuple[float, int]:
    """One-to-one greedy matching over descending SimC.

    Returns ``(sum of matched SimC, number of matched pairs)``.  Shared by
    the scalar and batch κJ paths so their matching semantics cannot
    diverge.
    """
    n1, n2 = matrix.shape
    order = np.argsort(matrix, axis=None)[::-1]
    used_rows = np.zeros(n1, dtype=bool)
    used_cols = np.zeros(n2, dtype=bool)
    matched_total = 0.0
    matched_count = 0
    for flat in order:
        i, j = divmod(int(flat), n2)
        value = matrix[i, j]
        if value < match_threshold:
            break
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        matched_total += float(value)
        matched_count += 1
    return matched_total, matched_count


def kappa_j(
    first: SignatureSeries,
    second: SignatureSeries,
    match_threshold: float = 0.2,
    sim_matrix: np.ndarray | None = None,
) -> float:
    """Extended Jaccard similarity between two signature series (Eq. 4).

    Pairs are matched greedily by descending SimC; only pairs with SimC at
    least *match_threshold* count as matched.  With ``M`` matched pairs the
    result is ``sum(matched SimC) / (|S1| + |S2| - M)`` — reducing to the
    classic Jaccard coefficient when all matched similarities are exactly 1.

    Parameters
    ----------
    sim_matrix:
        Optional precomputed :func:`pairwise_sim_matrix` (benchmarks reuse
        it across threshold sweeps, and the batch engine passes in slices
        of a :class:`SignatureBank` matrix) — the matching step consumes
        scalar- and batch-computed matrices identically.
    """
    if not 0.0 <= match_threshold <= 1.0:
        raise ValueError(f"match_threshold must be in [0, 1], got {match_threshold}")
    matrix = sim_matrix if sim_matrix is not None else pairwise_sim_matrix(first, second)
    n1, n2 = matrix.shape
    matched_total, matched_count = _greedy_match(matrix, match_threshold)
    union = n1 + n2 - matched_count
    return matched_total / union if union > 0 else 0.0


def kappa_j_all_pairs(first: SignatureSeries, second: SignatureSeries) -> float:
    """Literal all-pairs reading of Eq. 4 (ablation variant).

    Sums SimC over *every* cross pair and divides by ``|S1| + |S2|``.  Less
    selective than the matched version — kept to quantify how much the
    matching step matters.
    """
    matrix = pairwise_sim_matrix(first, second)
    return float(matrix.sum()) / (len(first) + len(second))


class SignatureBank:
    """All of a community's signatures stacked for one-vs-all κJ scoring.

    Concatenates every series' cuboid value/weight arrays into one padded
    matrix pair (rows grouped per video), so a query series needs only
    ``len(query)`` vectorized EMD calls to obtain the SimC matrices
    against *every* candidate, after which the per-candidate greedy
    matching runs on column slices.  This is the content kernel of the
    batch recommendation engine.
    """

    def __init__(self, series: dict[str, SignatureSeries]) -> None:
        if not series:
            raise ValueError("cannot build a SignatureBank from no series")
        self.video_ids: list[str] = sorted(series)
        self._series = series
        self._row_slices: dict[str, slice] = {}
        values_list: list[np.ndarray] = []
        weights_list: list[np.ndarray] = []
        start = 0
        for video_id in self.video_ids:
            one = series[video_id]
            self._row_slices[video_id] = slice(start, start + len(one))
            start += len(one)
            for signature in one:
                values_list.append(signature.values)
                weights_list.append(signature.weights)
        width = max(v.size for v in values_list)
        self.values = np.empty((start, width), dtype=np.float64)
        self.weights = np.zeros((start, width), dtype=np.float64)
        for row, (v, w) in enumerate(zip(values_list, weights_list)):
            n = v.size
            self.values[row, :n] = v
            self.values[row, n:] = v.max()
            self.weights[row, :n] = w / w.sum()

    def __len__(self) -> int:
        return len(self.video_ids)

    def sim_matrix(self, query: SignatureSeries) -> np.ndarray:
        """``(len(query), total_signatures)`` SimC matrix vs every row."""
        matrix = np.empty((len(query), self.values.shape[0]), dtype=np.float64)
        for i, signature in enumerate(query):
            matrix[i] = emd_1d_one_vs_many(
                signature.values, signature.weights, self.values, self.weights
            )
        np.reciprocal(1.0 + matrix, out=matrix)
        return matrix

    def kappa_j_scores(
        self,
        query: SignatureSeries,
        video_ids: list[str],
        match_threshold: float,
    ) -> np.ndarray:
        """κJ of *query* against each listed video, batch-computed.

        One vectorized EMD call per query signature covers every listed
        candidate at once; the greedy matching then consumes per-candidate
        column slices of the shared SimC matrix.  When *video_ids* is a
        strict subset (KNN refinement blocks, worker chunks) only the
        relevant signature rows are gathered and scored.
        """
        slices = [self._row_slices[video_id] for video_id in video_ids]
        total_rows = self.values.shape[0]
        if sum(s.stop - s.start for s in slices) == total_rows:
            values, weights = self.values, self.weights
            local = slices
        else:
            rows = np.concatenate(
                [np.arange(s.start, s.stop) for s in slices]
            )
            values = self.values[rows]
            weights = self.weights[rows]
            local = []
            start = 0
            for s in slices:
                local.append(slice(start, start + (s.stop - s.start)))
                start = local[-1].stop

        sim = np.empty((len(query), values.shape[0]), dtype=np.float64)
        for i, signature in enumerate(query):
            sim[i] = emd_1d_one_vs_many(
                signature.values, signature.weights, values, weights
            )
        np.reciprocal(1.0 + sim, out=sim)

        n1 = len(query)
        scores = np.empty(len(video_ids), dtype=np.float64)
        for position, block_slice in enumerate(local):
            block = sim[:, block_slice]
            matched_total, matched_count = _greedy_match(block, match_threshold)
            union = n1 + block.shape[1] - matched_count
            scores[position] = matched_total / union if union > 0 else 0.0
        return scores
