"""Content relevance: SimC (Eq. 3) and the extended Jaccard κJ (Eq. 4).

``SimC(C1, C2) = 1 / (1 + EMD(C1, C2))`` maps the EMD between two cuboid
signatures into a ``(0, 1]`` similarity.

``κJ(S1, S2)`` extends the Jaccard coefficient from exact set intersection
to *soft* intersection: matched signature pairs contribute their SimC value
to the numerator, and the denominator is the size of the union under the
matching.  The paper's Eq. 4 leaves the pair-matching implicit ("the
similarity between matched video cuboid signatures"); we implement a
one-to-one greedy matching over descending SimC with a minimum-similarity
threshold, plus a literal all-pairs variant for the ablation bench.

Two execution paths compute the SimC matrix:

* **scalar** — one :func:`repro.emd.one_dim.emd_1d` call per signature
  pair (the original per-pair path, kept for parity testing and the
  Figure-12 wall-clock benches);
* **batch** — one :func:`repro.emd.one_dim.emd_1d_one_vs_many` call per
  *query* signature against padded candidate matrices.
  :class:`SignatureBank` extends this to one query against every series
  in a community at once, which is what the batch recommendation engine
  drives.

Both paths share :func:`_greedy_match`, so the matching semantics are
identical by construction.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.emd.one_dim import (
    EMD_KEY_WEIGHT_SIGN,
    PackedDistributions,
    emd_1d,
    emd_1d_one_vs_many,
    emd_1d_sorted_keys_many_vs_many,
    get_workspace,
    pack_emd_keys,
)
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries

__all__ = [
    "sim_c",
    "kappa_j",
    "kappa_j_all_pairs",
    "pairwise_sim_matrix",
    "SignatureBank",
    "SignatureFastPack",
]


def sim_c(first: CuboidSignature, second: CuboidSignature) -> float:
    """EMD-derived similarity between two cuboid signatures (Eq. 3)."""
    distance = emd_1d(first.values, first.weights, second.values, second.weights)
    return 1.0 / (1.0 + distance)


def _sim_matrix_vs_packed(
    query: SignatureSeries, packed: PackedDistributions
) -> np.ndarray:
    """``(len(query), len(packed))`` SimC matrix via the batched EMD kernel."""
    matrix = np.empty((len(query), len(packed)), dtype=np.float64)
    for i, signature in enumerate(query):
        matrix[i] = emd_1d_one_vs_many(
            signature.values, signature.weights, packed.values, packed.weights
        )
    np.reciprocal(1.0 + matrix, out=matrix)
    return matrix


def pairwise_sim_matrix(
    first: SignatureSeries, second: SignatureSeries, engine: str = "scalar"
) -> np.ndarray:
    """``(len(first), len(second))`` matrix of SimC values.

    ``engine="batch"`` computes each row with one vectorized
    :func:`emd_1d_one_vs_many` call over *second*'s padded arrays instead
    of a Python double loop; results agree with the scalar path to float
    rounding (well under 1e-9).
    """
    if engine == "batch":
        return _sim_matrix_vs_packed(first, second.packed)
    matrix = np.empty((len(first), len(second)), dtype=np.float64)
    for i, sig_a in enumerate(first):
        for j, sig_b in enumerate(second):
            matrix[i, j] = sim_c(sig_a, sig_b)
    return matrix


def _greedy_match(matrix: np.ndarray, match_threshold: float) -> tuple[float, int]:
    """One-to-one greedy matching over descending SimC.

    Returns ``(sum of matched SimC, number of matched pairs)``.  Shared by
    the scalar and batch κJ paths so their matching semantics cannot
    diverge.
    """
    n1, n2 = matrix.shape
    order = np.argsort(matrix, axis=None)[::-1]
    used_rows = np.zeros(n1, dtype=bool)
    used_cols = np.zeros(n2, dtype=bool)
    matched_total = 0.0
    matched_count = 0
    for flat in order:
        i, j = divmod(int(flat), n2)
        value = matrix[i, j]
        if value < match_threshold:
            break
        if used_rows[i] or used_cols[j]:
            continue
        used_rows[i] = True
        used_cols[j] = True
        matched_total += float(value)
        matched_count += 1
    return matched_total, matched_count


def _greedy_match_many(
    blocks: np.ndarray, match_threshold: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized greedy matching over a stack of SimC blocks.

    *blocks* is a ``(B, n1, n2max)`` stack — one padded SimC matrix per
    candidate, pad cells set to ``-1`` (below any reachable SimC, which
    is always positive) — stored with BOTH signature axes reversed:
    cell ``[b, i, j]`` holds the SimC of query signature ``n1-1-i`` vs
    candidate signature ``n2max-1-j``.  Reversing the layout turns
    :func:`_greedy_match`'s tie rule (descending value, then descending
    flat index in natural order) into a plain first-occurrence ``argmax``
    over contiguous memory — an argmax over a negative-stride reverse
    view is several times slower.  Each round takes every candidate's
    current maximum, accepts it when it clears *match_threshold*, and
    masks its row and column; all candidates advance together, so the
    Python-level loop runs at most ``min(n1, n2max)`` times regardless
    of B.  *blocks* is consumed (mutated).

    Returns ``(matched totals, matched counts)`` as ``(B,)`` vectors;
    totals accumulate in float64 in the same descending-value order as
    the scalar matcher.
    """
    many, n1, n2 = blocks.shape
    flat = blocks.reshape(many, n1 * n2)
    totals = np.zeros(many, dtype=np.float64)
    counts = np.zeros(many, dtype=np.int64)
    batch = np.arange(many)
    for _ in range(min(n1, n2)):
        # First flat maximum in reversed layout == last in natural
        # layout — _greedy_match's reversed-stable-argsort tie order.
        index = flat.argmax(axis=1)
        values = flat[batch, index]
        active = values >= match_threshold
        if not active.any():
            break
        # Exhausted candidates ride along unfiltered: masking their
        # current (sub-threshold) maximum changes nothing they could
        # still match, and skipping the fancy-index subsetting keeps the
        # round at a fixed handful of full-batch ops.
        np.add(totals, values, out=totals, where=active)
        counts += active
        row, col = np.divmod(index, n2)
        blocks[batch, row, :] = -1.0
        blocks[batch, :, col] = -1.0
    return totals, counts


def _segment_integrals(
    values: np.ndarray,
    weights: np.ndarray,
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row CDF integrals over a uniform grid — the EMD bound precompute.

    For a step CDF ``G`` with atoms ``(v_k, w_k)``, the integral over a
    segment ``[a, b]`` is ``Σ_k w_k · (b - clip(v_k, a, b))``.  Returns
    ``(grid, integrals)`` with *integrals* shaped ``(rows, SEGMENTS)`` —
    accumulated in float64, stored float32 (the bound arithmetic runs in
    float32; the scan's 1e-3 slack dwarfs the rounding).  When *grid* is
    omitted it spans the value range of *values* (a degenerate range
    yields all-zero integrals, which makes the bound vacuous but still
    valid).  Chunked over rows to bound the temporary
    ``(chunk, width, SEGMENTS)`` broadcast.
    """
    segments = SignatureFastPack.SEGMENTS
    if grid is None:
        grid = np.linspace(
            float(values.min()), float(values.max()), segments + 1
        )
    rows = values.shape[0]
    integrals = np.empty((rows, segments), dtype=np.float32)
    lower = grid[None, None, :-1]
    upper = grid[None, None, 1:]
    chunk = max(1, (1 << 22) // max(1, values.shape[1] * segments))
    for start in range(0, rows, chunk):
        stop = min(rows, start + chunk)
        v = values[start:stop, :, None].astype(np.float64)
        w = weights[start:stop, :, None].astype(np.float64)
        integrals[start:stop] = (w * (upper - np.clip(v, lower, upper))).sum(axis=1)
    return grid, integrals


class SignatureFastPack:
    """Float32 scoring view of a :class:`SignatureBank`, packed per epoch.

    Rows are gathered live-only in sorted video-id order and **row-sorted
    ascending by value** (weights permuted alongside), so the sorted-merge
    EMD kernel never re-sorts candidate rows at query time.  Built lazily
    by :meth:`SignatureBank.fast_pack` and keyed on the bank's mutation
    version — one pack per published epoch, shared by every query and by
    copy-on-write bank snapshots.

    Attributes
    ----------
    version:
        The bank mutation version this pack reflects.
    values / weights:
        ``(live_rows, width)`` float32 row-sorted matrices.
    starts / counts:
        ``(N,)`` int64 per-video row offsets/lengths, aligned with
        :attr:`ids` (sorted video-id order).
    ids:
        ``(N,)`` numpy string array of the packed video ids.
    index_of:
        ``video_id -> position`` into :attr:`ids`.
    keys / offset:
        ``(live_rows, width)`` int64 candidate-side merge keys
        (:func:`repro.emd.one_dim.pack_emd_keys`, weights negated),
        encoded once per pack so block scoring gathers a single array
        and skips per-call key construction; *offset* is the value shift
        the keys were encoded under (``pack min - 1``), which any
        query-side encoding must share.
    row_sizes:
        ``(live_rows,)`` int64 count of nonzero-weight entries per row.
        Zero-weight pads never move an EMD, so scoring trims each block's
        trailing pad columns to the block's widest real row — merge-sort
        cost follows actual signature sizes, not the pack-wide maximum.
    grid / seg_integrals:
        Pruning-bound precompute: *grid* is a ``(SEGMENTS + 1,)`` float64
        uniform grid over the pack's value range and *seg_integrals* a
        ``(live_rows, SEGMENTS)`` float32 matrix of per-row CDF integrals
        over each grid segment.  1-D EMD is ``∫|F - G|``, so for any
        segmentation ``Σ_t |∫_t F - ∫_t G|`` is a lower bound (triangle
        inequality per segment); the pruned scan turns it into per-pair
        SimC caps and per-video κJ caps (DESIGN §12).
    """

    #: Grid segments of the pruning bound.  More segments tighten the
    #: EMD lower bound (SEGMENTS = 1 degenerates to the mean-gap bound)
    #: at O(rows * SEGMENTS) per-query bound cost.
    SEGMENTS = 8

    __slots__ = (
        "version",
        "values",
        "weights",
        "starts",
        "counts",
        "ids",
        "index_of",
        "keys",
        "offset",
        "row_sizes",
        "grid",
        "seg_integrals",
    )

    def __init__(
        self,
        version,
        values,
        weights,
        starts,
        counts,
        ids,
        index_of,
        keys,
        offset,
        row_sizes,
        grid,
        seg_integrals,
    ):
        self.version = version
        self.values = values
        self.weights = weights
        self.starts = starts
        self.counts = counts
        self.ids = ids
        self.index_of = index_of
        self.keys = keys
        self.offset = offset
        self.row_sizes = row_sizes
        self.grid = grid
        self.seg_integrals = seg_integrals

    def query_keys_at(self, position: int) -> tuple[np.ndarray, slice]:
        """Query-side merge keys for the packed video at *position*.

        The hot path's queries are themselves indexed videos, so their
        rows already sit in the pack — sorted, normalised, float32 and
        key-encoded.  Candidate-side keys differ from query-side keys
        only in the weight sign, so one vectorized XOR of the float32
        sign bit in the low payload half turns the video's pack rows
        into query keys; no per-signature Python loop, no re-encoding.
        Returns ``(keys, rows)`` with *rows* the pack row slice (the
        pruned scan reads :attr:`seg_integrals` through it).
        """
        start = int(self.starts[position])
        rows = slice(start, start + int(self.counts[position]))
        width = int(self.row_sizes[rows].max())
        return self.keys[rows, :width] ^ EMD_KEY_WEIGHT_SIGN, rows

    def pack_query(
        self, query: SignatureSeries
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Query-side ``(keys, values, weights)`` matrices for *query*.

        All three are ``(n1, max_cuboids)`` and row-padded to the
        bank-pack layout (pads equal each row's maximum and carry zero
        weight): *keys* are int64 merge keys for the batched merge-sort
        kernel (:func:`repro.emd.one_dim.pack_emd_keys`), *values* /
        *weights* the float32 matrices they encode (the pruned scan
        derives its query-side CDF segment integrals from them).  The
        query-side sort, weight normalisation and key encoding happen
        once here and are reused by every scoring block of the query's
        scan.  Keys share the pack's value offset, so every query value
        must exceed ``pack min - 1`` (any value inside the pack's range
        qualifies; :func:`repro.emd.one_dim.pack_emd_keys` raises
        otherwise).  Indexed queries should prefer :meth:`query_keys_at`,
        which skips this construction entirely.
        """
        n1 = len(query)
        nq = max(signature.size for signature in query)
        values = np.empty((n1, nq), dtype=np.float32)
        weights = np.zeros((n1, nq), dtype=np.float32)
        for i, signature in enumerate(query):
            order = np.argsort(signature.values, kind="stable")
            row_values = np.asarray(signature.values, dtype=np.float64).reshape(-1)
            row_weights = np.asarray(signature.weights, dtype=np.float64).reshape(-1)
            row_weights = row_weights / row_weights.sum()
            size = row_values.size
            values[i, :size] = row_values[order]
            weights[i, :size] = row_weights[order]
            values[i, size:] = values[i, size - 1]
        return pack_emd_keys(values, weights, offset=self.offset), values, weights


def kappa_j(
    first: SignatureSeries,
    second: SignatureSeries,
    match_threshold: float = 0.2,
    sim_matrix: np.ndarray | None = None,
) -> float:
    """Extended Jaccard similarity between two signature series (Eq. 4).

    Pairs are matched greedily by descending SimC; only pairs with SimC at
    least *match_threshold* count as matched.  With ``M`` matched pairs the
    result is ``sum(matched SimC) / (|S1| + |S2| - M)`` — reducing to the
    classic Jaccard coefficient when all matched similarities are exactly 1.

    Parameters
    ----------
    sim_matrix:
        Optional precomputed :func:`pairwise_sim_matrix` (benchmarks reuse
        it across threshold sweeps, and the batch engine passes in slices
        of a :class:`SignatureBank` matrix) — the matching step consumes
        scalar- and batch-computed matrices identically.
    """
    if not 0.0 <= match_threshold <= 1.0:
        raise ValueError(f"match_threshold must be in [0, 1], got {match_threshold}")
    matrix = sim_matrix if sim_matrix is not None else pairwise_sim_matrix(first, second)
    n1, n2 = matrix.shape
    matched_total, matched_count = _greedy_match(matrix, match_threshold)
    union = n1 + n2 - matched_count
    return matched_total / union if union > 0 else 0.0


def kappa_j_all_pairs(first: SignatureSeries, second: SignatureSeries) -> float:
    """Literal all-pairs reading of Eq. 4 (ablation variant).

    Sums SimC over *every* cross pair and divides by ``|S1| + |S2|``.  Less
    selective than the matched version — kept to quantify how much the
    matching step matters.
    """
    matrix = pairwise_sim_matrix(first, second)
    return float(matrix.sum()) / (len(first) + len(second))


class SignatureBank:
    """All of a community's signatures stacked for one-vs-all κJ scoring.

    Concatenates every series' cuboid value/weight arrays into one padded
    matrix pair (rows grouped per video), so a query series needs only
    ``len(query)`` vectorized EMD calls to obtain the SimC matrices
    against *every* candidate, after which the per-candidate greedy
    matching runs on column slices.  This is the content kernel of the
    batch recommendation engine.

    The bank is **incrementally maintainable**: :meth:`append` adds a
    video's rows at the tail (amortised-O(rows) via capacity doubling),
    :meth:`remove` tombstones a video's rows in place, and
    :meth:`compact` reclaims dead rows and re-packs to the live maximum
    signature width.  Removal compacts automatically when the dead
    fraction exceeds 50% *or* when the padded width could shrink — the
    latter keeps batch scores bit-identical to a bank built cold from the
    same live series (padding width perturbs float reduction order).
    """

    def __init__(self, series: dict[str, SignatureSeries]) -> None:
        if not series:
            raise ValueError("cannot build a SignatureBank from no series")
        self.video_ids: list[str] = []
        self._series: dict[str, SignatureSeries] = {}
        self._row_slices: dict[str, slice] = {}
        self._count = 0
        self._dead_rows = 0
        self._width = 0
        self._values = np.empty((0, 0), dtype=np.float64)
        self._weights = np.empty((0, 0), dtype=np.float64)
        self._lengths = np.empty(0, dtype=np.int64)
        self._pads = np.empty(0, dtype=np.float64)
        self._version = 0
        self._fast_pack: SignatureFastPack | None = None
        self._pinned_width = 0
        self._pinned_offset: float | None = None
        self._pinned_grid: np.ndarray | None = None
        for video_id in sorted(series):
            self.append(video_id, series[video_id])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """``(rows, width)`` padded value matrix (live + tombstoned rows)."""
        return self._values[: self._count]

    @property
    def weights(self) -> np.ndarray:
        """``(rows, width)`` normalised weight matrix matching :attr:`values`."""
        return self._weights[: self._count]

    @property
    def width(self) -> int:
        """Current padded signature width."""
        return self._width

    @property
    def dead_rows(self) -> int:
        """Tombstoned rows not yet reclaimed by :meth:`compact`."""
        return self._dead_rows

    def __len__(self) -> int:
        return len(self.video_ids)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._row_slices

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def _grow(self, extra_rows: int, width: int) -> None:
        capacity = self._values.shape[0]
        needed = self._count + extra_rows
        if needed > capacity or width > self._width:
            new_capacity = max(needed, 2 * capacity)
            new_width = max(width, self._width)
            values = np.empty((new_capacity, new_width), dtype=np.float64)
            weights = np.zeros((new_capacity, new_width), dtype=np.float64)
            lengths = np.empty(new_capacity, dtype=np.int64)
            pads = np.empty(new_capacity, dtype=np.float64)
            count = self._count
            values[:count, : self._width] = self._values[:count]
            # Widening extends every existing row with its own pad value,
            # exactly as a cold build at the new width would.
            if new_width > self._width and count:
                values[:count, self._width :] = self._pads[:count, None]
            weights[:count, : self._width] = self._weights[:count]
            lengths[:count] = self._lengths[:count]
            pads[:count] = self._pads[:count]
            self._values, self._weights = values, weights
            self._lengths, self._pads = lengths, pads
            self._width = new_width

    def append(self, video_id: str, series: SignatureSeries) -> None:
        """Add *series* under *video_id* without rebuilding existing rows."""
        if video_id in self._row_slices:
            raise ValueError(f"video {video_id!r} is already in the bank")
        if len(series) == 0:
            raise ValueError(f"cannot append an empty series for {video_id!r}")
        rows = len(series)
        width = max(signature.values.size for signature in series)
        self._grow(rows, width)
        start = self._count
        for offset, signature in enumerate(series):
            v, w = signature.values, signature.weights
            n = v.size
            row = start + offset
            pad = v.max()
            self._values[row, :n] = v
            self._values[row, n:] = pad
            self._weights[row, :n] = w / w.sum()
            self._weights[row, n:] = 0.0
            self._lengths[row] = n
            self._pads[row] = pad
        self._row_slices[video_id] = slice(start, start + rows)
        bisect.insort(self.video_ids, video_id)
        self._series[video_id] = series
        self._count += rows
        self._version += 1
        self._fast_pack = None

    def remove(self, video_id: str) -> None:
        """Tombstone *video_id*'s rows; compacts when width can shrink."""
        block = self._row_slices.pop(video_id, None)
        if block is None:
            raise KeyError(f"video {video_id!r} is not in the bank")
        self.video_ids.remove(video_id)
        del self._series[video_id]
        self._dead_rows += block.stop - block.start
        self._version += 1
        self._fast_pack = None
        live_width = max(
            (
                int(self._lengths[s.start : s.stop].max())
                for s in self._row_slices.values()
            ),
            default=0,
        )
        if (
            max(live_width, self._pinned_width) < self._width
            or self._dead_rows > 0.5 * max(1, self._count)
        ):
            self.compact()

    def compact(self) -> None:
        """Reclaim tombstoned rows and re-pack at the live maximum width.

        The result is bit-identical (rows, padding and order) to a bank
        built cold from the surviving series.  A pinned width
        (:meth:`pin_layout`) acts as a floor on the packed width.
        """
        live_rows = self._count - self._dead_rows
        live_width = max(
            (
                int(self._lengths[s.start : s.stop].max())
                for s in self._row_slices.values()
            ),
            default=0,
        )
        target_width = max(live_width, self._pinned_width)
        copy_width = min(self._width, target_width)
        values = np.empty((live_rows, target_width), dtype=np.float64)
        weights = np.zeros((live_rows, target_width), dtype=np.float64)
        lengths = np.empty(live_rows, dtype=np.int64)
        pads = np.empty(live_rows, dtype=np.float64)
        slices: dict[str, slice] = {}
        start = 0
        for video_id in self.video_ids:
            old = self._row_slices[video_id]
            rows = old.stop - old.start
            # Narrower rows carry their pad value in the trailing columns
            # already, so a plain truncating copy preserves the padding;
            # widening extends each row with its own pad value, exactly
            # as a cold build at the target width would.
            values[start : start + rows, :copy_width] = self._values[old, :copy_width]
            if target_width > self._width:
                values[start : start + rows, self._width :] = self._pads[old, None]
            weights[start : start + rows, :copy_width] = self._weights[old, :copy_width]
            lengths[start : start + rows] = self._lengths[old]
            pads[start : start + rows] = self._pads[old]
            slices[video_id] = slice(start, start + rows)
            start += rows
        self._values, self._weights = values, weights
        self._lengths, self._pads = lengths, pads
        self._row_slices = slices
        self._count = live_rows
        self._dead_rows = 0
        self._width = target_width
        self._version += 1
        self._fast_pack = None

    # ------------------------------------------------------------------
    # Pinned layout (sharded parity)
    # ------------------------------------------------------------------
    def layout_extremes(self) -> tuple[int, float | None, float | None]:
        """``(natural_width, min_value, max_value)`` over the live rows.

        *natural_width* is the maximum real signature size — what a cold
        build would pad to, ignoring any pinned floor; *min_value* /
        *max_value* are the float32 extremes over all live values — what
        :meth:`fast_pack`'s natural key offset and segment grid derive
        from — or ``None`` when the bank is empty.  Sharded deployments
        reduce these across shards to obtain the global layout to pin
        (:meth:`pin_layout`).
        """
        if self._dead_rows:
            self.compact()
        if not self.video_ids:
            return 0, None, None
        natural = max(
            int(self._lengths[s.start : s.stop].max())
            for s in self._row_slices.values()
        )
        # float32 cast is monotonic, so the casts of the float64 extremes
        # equal the extremes of the cast matrix fast_pack() builds (pads
        # duplicate each row's maximum, so they shift neither).
        live = self._values[: self._count]
        return (
            natural,
            float(np.float32(live.min())),
            float(np.float32(live.max())),
        )

    def pin_layout(
        self,
        width: int | None = None,
        offset: float | None = None,
        grid=None,
    ) -> bool:
        """Pin the padded width floor, fast-pack key offset and/or grid.

        Sharded deployments pin every shard's bank to the global layout
        (maximum natural width across shards, offset derived from the
        global minimum value) so the float32 reduction width and merge-key
        encoding — and therefore every score — stay bit-identical to one
        bank holding all series.  The pinned width is a floor: the bank
        still widens past it when a wider series arrives.  The pinned
        offset replaces the natural one outright; callers must keep it
        below every value in the bank (``pack_emd_keys`` raises
        otherwise).  *grid* pins the segment-integral grid (the pruning
        bound is valid on any grid, so this affects no score) — with
        every shard on one grid, a guest query's integrals are computed
        once per scatter and shared.  Returns ``True`` when the layout
        actually changed (the mutation version is bumped so cached packs
        rebuild).
        """
        changed = False
        if width is not None and int(width) != self._pinned_width:
            self._pinned_width = int(width)
            changed = True
        if offset is not None and (
            self._pinned_offset is None or float(offset) != self._pinned_offset
        ):
            self._pinned_offset = float(offset)
            changed = True
        if grid is not None and (
            self._pinned_grid is None
            or not np.array_equal(np.asarray(grid), self._pinned_grid)
        ):
            self._pinned_grid = np.asarray(grid, dtype=np.float64)
            changed = True
        if not changed:
            return False
        if self._dead_rows:
            self.compact()
        live_width = max(
            (
                int(self._lengths[s.start : s.stop].max())
                for s in self._row_slices.values()
            ),
            default=0,
        )
        target = max(live_width, self._pinned_width)
        if target > self._width:
            self._grow(0, target)
        elif target < self._width:
            self.compact()
        self._version += 1
        self._fast_pack = None
        return True

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "SignatureBank":
        """A copy-on-write snapshot sharing the padded matrices.

        The containers (video ids, row slices, series map) are copied; the
        value/weight/length/pad arrays are **shared**.  Sharing is safe
        under the bank's append-only array discipline: live mutations only
        ever (a) write rows at or beyond the current ``_count`` — which a
        snapshot taken at that count never reads — or (b) swap in freshly
        allocated arrays (``_grow`` widening, :meth:`compact`), which the
        snapshot does not observe.  This is what gives the serving
        gateway's epoch publication O(videos) cost instead of O(rows ×
        width).  The snapshot itself must be treated as immutable except
        for its own :meth:`compact` (which allocates fresh arrays and so
        cannot disturb the live bank)."""
        clone = SignatureBank.__new__(SignatureBank)
        clone.video_ids = list(self.video_ids)
        clone._series = dict(self._series)
        clone._row_slices = dict(self._row_slices)
        clone._count = self._count
        clone._dead_rows = self._dead_rows
        clone._width = self._width
        clone._values = self._values
        clone._weights = self._weights
        clone._lengths = self._lengths
        clone._pads = self._pads
        # The pack is immutable and version-keyed, so a snapshot can share
        # it outright — epoch publication inherits an already-warm pack.
        clone._version = self._version
        clone._fast_pack = self._fast_pack
        clone._pinned_width = self._pinned_width
        clone._pinned_offset = self._pinned_offset
        clone._pinned_grid = self._pinned_grid
        return clone

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def sim_matrix(self, query: SignatureSeries) -> np.ndarray:
        """``(len(query), live_signatures)`` SimC matrix vs every live row."""
        if self._dead_rows:
            self.compact()
        matrix = np.empty((len(query), self._count), dtype=np.float64)
        for i, signature in enumerate(query):
            matrix[i] = emd_1d_one_vs_many(
                signature.values, signature.weights, self.values, self.weights
            )
        np.reciprocal(1.0 + matrix, out=matrix)
        return matrix

    def fast_pack(self) -> SignatureFastPack:
        """The bank's float32 scoring pack, rebuilt only after mutations.

        Compacts first (the pack is live-rows-only), then reuses the
        cached pack while the bank's mutation version is unchanged —
        "pack once per epoch" in steady-state serving.
        """
        if self._dead_rows:
            self.compact()
        pack = self._fast_pack
        if pack is not None and pack.version == self._version:
            return pack
        counts = np.array(
            [
                self._row_slices[video_id].stop - self._row_slices[video_id].start
                for video_id in self.video_ids
            ],
            dtype=np.int64,
        )
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        rows = np.concatenate(
            [
                np.arange(self._row_slices[v].start, self._row_slices[v].stop)
                for v in self.video_ids
            ]
        )
        values = self.values[rows]
        weights = self.weights[rows]
        # Row-sort ascending once at pack time; pads equal each row's
        # maximum so they stay trailing (with zero weight) after the sort.
        order = np.argsort(values, axis=1, kind="stable")
        values = np.take_along_axis(values, order, axis=1).astype(np.float32)
        weights = np.take_along_axis(weights, order, axis=1).astype(np.float32)
        grid, seg_integrals = _segment_integrals(
            values, weights, grid=self._pinned_grid
        )
        if self._pinned_offset is not None:
            offset = self._pinned_offset
        else:
            offset = float(values.min()) - 1.0 if values.size else -1.0
        pack = SignatureFastPack(
            version=self._version,
            values=values,
            weights=weights,
            starts=starts,
            counts=counts,
            ids=np.array(self.video_ids),
            index_of={v: i for i, v in enumerate(self.video_ids)},
            keys=pack_emd_keys(values, weights, negate=True, offset=offset),
            offset=offset,
            row_sizes=np.count_nonzero(weights, axis=1).astype(np.int64),
            grid=grid,
            seg_integrals=seg_integrals,
        )
        self._fast_pack = pack
        return pack

    def kappa_j_scores_at(
        self,
        query_keys: np.ndarray,
        positions: np.ndarray,
        match_threshold: float,
        pack: SignatureFastPack | None = None,
    ) -> np.ndarray:
        """Float32 κJ of a key-packed query against pack *positions*.

        The fast-path counterpart of :meth:`kappa_j_scores`: the query
        arrives as ``(n1, nq)`` int64 merge keys — from
        :meth:`SignatureFastPack.query_keys_at` for indexed queries or
        :meth:`SignatureFastPack.pack_query` otherwise —
        candidates are addressed by position into the :meth:`fast_pack`
        (as the pruned scan's block loop does), the SimC matrix comes
        from the merge-sort EMD kernel in float32 scratch, and the
        per-candidate greedy matching is vectorized over the whole block.  Scores
        return as float64 (the fusion arithmetic stays float64 either
        way); agreement with the reference path is within float32
        rounding of the EMD sums.
        """
        if pack is None:
            pack = self.fast_pack()
        workspace = get_workspace()
        counts = pack.counts[positions]
        starts = pack.starts[positions]
        many = positions.size
        n1 = query_keys.shape[0]
        total_rows = int(counts.sum())
        n2max = int(counts.max())
        # Gathered row index: for each selected video its contiguous pack
        # rows, concatenated (repeat/cumsum trick, no Python loop).
        offsets = np.cumsum(counts) - counts
        row_index = np.repeat(starts - offsets, counts) + np.arange(total_rows)
        # Candidate rows keep the full pack width rather than trimming to
        # the block's widest real row: the merged width then depends only
        # on (query, pack), never on how candidates were batched, so the
        # float32 EMD of a pair is bit-identical across block sizes (the
        # gap sgemm's summation order is fixed by the reduction width).
        # Trailing pads duplicate each row's max value at zero weight, so
        # they contribute exact zeros.
        cand_keys = pack.keys[row_index]

        # SimC of every query signature vs every gathered row — the whole
        # cross product in one batched kernel call — plus one trailing
        # sentinel column that padded block cells map onto.
        sim = workspace.get("sim", (n1, total_rows + 1), np.float32)
        sim[:, :total_rows] = emd_1d_sorted_keys_many_vs_many(
            query_keys, cand_keys, workspace
        )
        body = sim[:, :total_rows]
        np.add(body, np.float32(1.0), out=body)
        np.reciprocal(body, out=body)
        sim[:, total_rows] = -1.0

        # Per-candidate padded SimC blocks (B, n1, n2max); pad cells read
        # the sentinel column (-1, below any real SimC).  Both signature
        # axes are reversed during the gather — the layout
        # _greedy_match_many wants for its contiguous tie-break argmax.
        cols = offsets[:, None] + np.arange(n2max)[None, :]
        invalid = np.arange(n2max)[None, :] >= counts[:, None]
        cols[invalid] = total_rows
        blocks = workspace.get("blocks", (many, n1, n2max), np.float32)
        np.copyto(blocks, sim[::-1, cols[:, ::-1]].transpose(1, 0, 2))

        totals, matched = _greedy_match_many(blocks, match_threshold)
        union = n1 + counts - matched
        scores = np.zeros(many, dtype=np.float64)
        np.divide(totals, union, out=scores, where=union > 0)
        return scores

    def kappa_j_scores(
        self,
        query: SignatureSeries,
        video_ids: list[str],
        match_threshold: float,
        dtype: str = "float64",
    ) -> np.ndarray:
        """κJ of *query* against each listed video, batch-computed.

        One vectorized EMD call per query signature covers every listed
        candidate at once; the greedy matching then consumes per-candidate
        column slices of the shared SimC matrix.  When *video_ids* is a
        strict subset (KNN refinement blocks, worker chunks) only the
        relevant signature rows are gathered and scored.

        ``dtype="float32"`` routes through the packed fast path
        (:meth:`fast_pack` + :meth:`kappa_j_scores_at`); ``"float64"`` is
        the reference path that parity tests pin against.
        """
        if dtype == "float32":
            pack = self.fast_pack()
            positions = np.array(
                [pack.index_of[video_id] for video_id in video_ids],
                dtype=np.int64,
            )
            return self.kappa_j_scores_at(
                pack.pack_query(query)[0], positions, match_threshold, pack=pack
            )
        if dtype != "float64":
            raise ValueError(f"dtype must be 'float32' or 'float64', got {dtype!r}")
        slices = [self._row_slices[video_id] for video_id in video_ids]
        total_rows = self.values.shape[0]
        if sum(s.stop - s.start for s in slices) == total_rows:
            values, weights = self.values, self.weights
            local = slices
        else:
            rows = np.concatenate(
                [np.arange(s.start, s.stop) for s in slices]
            )
            values = self.values[rows]
            weights = self.weights[rows]
            local = []
            start = 0
            for s in slices:
                local.append(slice(start, start + (s.stop - s.start)))
                start = local[-1].stop

        sim = np.empty((len(query), values.shape[0]), dtype=np.float64)
        for i, signature in enumerate(query):
            sim[i] = emd_1d_one_vs_many(
                signature.values, signature.weights, values, weights
            )
        np.reciprocal(1.0 + sim, out=sim)

        n1 = len(query)
        scores = np.empty(len(video_ids), dtype=np.float64)
        for position, block_slice in enumerate(local):
            block = sim[:, block_slice]
            matched_total, matched_count = _greedy_match(block, match_threshold)
            union = n1 + block.shape[1] - matched_count
            scores[position] = matched_total / union if union > 0 else 0.0
        return scores
