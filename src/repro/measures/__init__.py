"""Content similarity measures: SimC / κJ (paper's choice), ERP and DTW."""

from repro.measures.content import (
    kappa_j,
    kappa_j_all_pairs,
    pairwise_sim_matrix,
    sim_c,
)
from repro.measures.sequence import (
    dtw_distance,
    dtw_similarity,
    erp_distance,
    erp_similarity,
)

__all__ = [
    "dtw_distance",
    "dtw_similarity",
    "erp_distance",
    "erp_similarity",
    "kappa_j",
    "kappa_j_all_pairs",
    "pairwise_sim_matrix",
    "sim_c",
]
