"""The recommenders: CR, SR, CSF and the SAR / SAR-H optimised variants.

All variants share one skeleton — score every candidate video against the
query with some mix of content and social relevance, rank, return the top
K — and differ exactly along the two axes the paper evaluates:

* **content measure**: κJ (the paper's choice), ERP or DTW (Figure 7);
* **social mode**: ``exact`` set Jaccard, ``naive`` quadratic Jaccard (the
  cost model the paper charges to unoptimised CSF), ``sar``
  (sorted-dictionary vectorization + Eq. 6), ``sar-h`` (chained-hash
  vectorization + Eq. 6) — Figure 12(a)'s three curves — or ``sketch``
  (fixed-size odd sketches estimating the exact Jaccard,
  :mod:`repro.social.sketch`).

Two **scoring engines** drive the exhaustive scan:

* ``"batch"`` (the default) — one query is scored against *all*
  candidates with array-level kernels: the community-wide
  :class:`repro.measures.content.SignatureBank` turns the κJ SimC
  matrices into a handful of vectorized EMD calls, and the materialized
  ``(N, k)`` SAR matrix turns s̃J into one ``minimum``/``maximum``
  reduction (:func:`repro.social.sar.approx_jaccard_batch`).  An optional
  ``num_workers`` fans the κJ stage out over candidate blocks.
* ``"scalar"`` — the original per-pair Python calls, kept for parity
  testing and for the Figure-12 wall-clock benches whose whole point is
  measuring the per-candidate cost the batch engine amortises away.

Both engines produce identical rankings (scores agree to float rounding);
the parity suite in ``tests/test_batch_engine.py`` pins this for every
``social_mode`` × ``content_measure`` combination.

Serving degrades instead of failing: when the social store is marked
unavailable (or has lost more maintenance batches than the configured
staleness bound), :meth:`FusionRecommender.recommend` renormalises ω to
zero and returns a content-only ranking flagged ``degraded``; a per-query
``time_budget`` cuts the candidate scan short and returns the best-effort
prefix flagged ``partial``.  The :class:`Recommendations` result is a
``list`` subclass, so existing equality-based callers are unaffected.

The named constructors at the bottom produce the four systems of the
paper's Figure 10 plus the two optimised CSF flavours of Figure 12.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.fusion import fuse_fj
from repro.core.pipeline import CommunityIndex
from repro.emd.one_dim import get_workspace
from repro.measures.content import _segment_integrals, kappa_j
from repro.measures.sequence import dtw_similarity, erp_similarity
from repro.obs import NULL_TRACE, MetricsRegistry, get_metrics
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor, jaccard, jaccard_naive
from repro.social.sar import approx_jaccard, approx_jaccard_batch
from repro.social.sketch import estimate_jaccard, sketch_jaccard_batch, sketch_users

__all__ = [
    "FusionRecommender",
    "Recommendations",
    "content_recommender",
    "social_recommender",
    "csf_recommender",
    "csf_sar_recommender",
    "csf_sar_h_recommender",
]

#: Content measures selectable by name (Figure 7's three candidates).
CONTENT_MEASURES: dict[str, Callable[[SignatureSeries, SignatureSeries], float]] = {
    "kj": kappa_j,
    "erp": erp_similarity,
    "dtw": dtw_similarity,
}

#: Social relevance modes (None disables the social term entirely).
SOCIAL_MODES = ("exact", "naive", "sar", "sar-h", "sketch")

#: Scoring engines of the exhaustive scan.
ENGINES = ("scalar", "batch")

#: Minimum candidates per worker chunk — below this the thread fan-out
#: costs more than it saves.
_MIN_CHUNK = 16

#: Candidates scored between deadline checks under a time budget.  Small
#: enough that overrun past the budget stays bounded, large enough that
#: the per-chunk bookkeeping doesn't dominate the array kernels.
_BUDGET_CHUNK = 32

#: Recording sink for untraced internal calls (``component_scores``, the
#: parameter-sweep path) — disabled, so they pay no clock reads.
_NO_METRICS = MetricsRegistry(enabled=False)

#: Ones vectors for the segment-bound gemv, keyed by segment count.
_BOUND_ONES: dict = {}


def _bound_ones(segments: int) -> np.ndarray:
    ones = _BOUND_ONES.get(segments)
    if ones is None:
        ones = np.ones(segments, dtype=np.float32)
        _BOUND_ONES[segments] = ones
    return ones


class _stage:
    """Time one named stage into both the span tree and the registry.

    A slotted context manager rather than a ``@contextmanager`` generator:
    the hot path enters several stages per query, and the generator
    machinery (a contextlib frame plus two ``next`` calls per stage) is
    measurable at sub-millisecond query latencies.
    """

    __slots__ = ("trace", "metrics", "name", "_span", "_started")

    def __init__(self, trace, metrics, name: str) -> None:
        self.trace = trace
        self.metrics = metrics
        self.name = name

    def __enter__(self) -> "_stage":
        self._span = self.trace.span(self.name)
        self._span.__enter__()
        metrics = self.metrics
        self._started = metrics.clock() if metrics.enabled else 0.0
        return self

    def __exit__(self, exc_type, exc, tb):
        metrics = self.metrics
        if metrics.enabled:
            metrics.observe(
                "repro_stage_seconds",
                metrics.clock() - self._started,
                stage=self.name,
            )
        return self._span.__exit__(exc_type, exc, tb)


class Recommendations(list):
    """A ranked id list plus how it was served.

    A ``list`` subclass: equality, iteration and indexing behave exactly
    like the plain list :meth:`FusionRecommender.recommend` used to
    return, so callers that compare against expected id lists keep
    working.  The extra attributes say whether the ranking was served in
    degraded mode and why.

    Slicing (and :meth:`copy`) returns another :class:`Recommendations`
    carrying the *same* metadata — ``recommend(...)[:5]`` stays
    inspectable instead of silently decaying to a bare ``list`` and
    dropping the degraded/partial flags callers must check.

    Attributes
    ----------
    degraded:
        True when the ranking deviates from full fused service — social
        relevance dropped, or the candidate scan cut short.
    partial:
        True when the per-query time budget expired before every
        candidate was scored (``scored < total``).
    reasons:
        Human-readable explanations, one per degradation cause.
    scored / total:
        Candidates actually scored vs. the full candidate count.
    scores:
        Fused FJ scores aligned with the ranked ids (``None`` when the
        producing path did not attach them); sliced alongside the ids.
    """

    def __init__(
        self,
        ids=(),
        *,
        degraded: bool = False,
        partial: bool = False,
        reasons=(),
        scored: int = 0,
        total: int = 0,
        scores=None,
    ) -> None:
        super().__init__(ids)
        self.degraded = bool(degraded)
        self.partial = bool(partial)
        self.reasons = tuple(reasons)
        self.scored = int(scored)
        self.total = int(total)
        self.scores = None if scores is None else list(scores)

    def _like(self, ids, scores=None) -> "Recommendations":
        """A new :class:`Recommendations` over *ids* with this metadata."""
        return Recommendations(
            ids,
            degraded=self.degraded,
            partial=self.partial,
            reasons=self.reasons,
            scored=self.scored,
            total=self.total,
            scores=scores,
        )

    def __getitem__(self, item):
        result = super().__getitem__(item)
        if isinstance(item, slice):
            sliced = None if self.scores is None else self.scores[item]
            return self._like(result, sliced)
        return result

    def copy(self) -> "Recommendations":
        return self._like(
            list(self), None if self.scores is None else list(self.scores)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ""
        if self.degraded:
            flags = f", degraded=True, reasons={list(self.reasons)!r}"
        if self.partial:
            flags += f", partial={self.scored}/{self.total}"
        return f"Recommendations({list(self)!r}{flags})"


class FusionRecommender:
    """Exhaustive-scan recommender over a :class:`CommunityIndex`.

    Parameters
    ----------
    index:
        The built community index.
    omega:
        Fusion weight; 0 gives pure content (CR), 1 pure social (SR).
    social_mode:
        One of :data:`SOCIAL_MODES`; irrelevant when ``omega == 0``.
    content_measure:
        Key into :data:`CONTENT_MEASURES`; irrelevant when ``omega == 1``.
    engine:
        ``"batch"`` or ``"scalar"``; defaults to the index configuration's
        :attr:`~repro.core.config.RecommenderConfig.engine`.
    num_workers:
        Worker threads for the batch engine's chunked κJ fan-out; defaults
        to the index configuration's value.  0/1 = single-threaded.
    time_budget:
        Per-query wall-clock budget (seconds) for :meth:`recommend`;
        ``None`` (the config default) scans every candidate.
    max_social_staleness:
        Skipped-social-mutation bound beyond which :meth:`recommend`
        serves content-only; ``None`` (the config default) only degrades
        when the store is marked unavailable outright.
    precomputed:
        Batch engine only: when ``False``, SAR candidate histograms are
        re-vectorized through the dictionary backend at query time (the
        scalar path's cost model) instead of read from the index's
        materialized SAR matrix — this keeps Figure 12(a)'s wall-clock
        semantics available under the batch kernels.

    SAR modes on the **scalar** engine vectorize candidate descriptors *at
    query time* through the configured dictionary backend, so a wall-clock
    measurement of :meth:`recommend` exposes exactly the cost difference
    the paper's Figure 12(a) reports (quadratic set Jaccard vs
    binary-search vectorization vs chained-hash vectorization).
    """

    def __init__(
        self,
        index: CommunityIndex,
        omega: float | None = None,
        social_mode: str = "sar-h",
        content_measure: str = "kj",
        name: str | None = None,
        engine: str | None = None,
        num_workers: int | None = None,
        time_budget: float | None = None,
        max_social_staleness: int | None = None,
        precomputed: bool = True,
        scan_dtype: str | None = None,
        prune: bool | None = None,
        fast_scan: bool = True,
    ) -> None:
        if social_mode not in SOCIAL_MODES:
            raise ValueError(
                f"unknown social mode {social_mode!r}; expected one of {SOCIAL_MODES}"
            )
        if content_measure not in CONTENT_MEASURES:
            raise ValueError(
                f"unknown content measure {content_measure!r}; "
                f"expected one of {tuple(CONTENT_MEASURES)}"
            )
        self.index = index
        self.omega = index.config.omega if omega is None else float(omega)
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        self.engine = index.config.engine if engine is None else engine
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        self.num_workers = (
            index.config.num_workers if num_workers is None else int(num_workers)
        )
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        self.time_budget = (
            index.config.time_budget if time_budget is None else float(time_budget)
        )
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be > 0, got {self.time_budget}")
        self.max_social_staleness = (
            index.config.max_social_staleness
            if max_social_staleness is None
            else int(max_social_staleness)
        )
        if self.max_social_staleness is not None and self.max_social_staleness < 0:
            raise ValueError(
                f"max_social_staleness must be >= 0, got {self.max_social_staleness}"
            )
        self.precomputed = bool(precomputed)
        self.scan_dtype = (
            index.config.scan_dtype if scan_dtype is None else str(scan_dtype)
        )
        if self.scan_dtype not in ("float32", "float64"):
            raise ValueError(
                f"scan_dtype must be 'float32' or 'float64', got {self.scan_dtype!r}"
            )
        self.prune = index.config.prune if prune is None else bool(prune)
        self.fast_scan = bool(fast_scan)
        self.social_mode = social_mode
        self.content_measure_name = content_measure
        if content_measure == "kj":
            threshold = index.config.match_threshold

            def _kj(first: SignatureSeries, second: SignatureSeries) -> float:
                return kappa_j(first, second, match_threshold=threshold)

            self._content = _kj
        else:
            self._content = CONTENT_MEASURES[content_measure]
        self._pool: ThreadPoolExecutor | None = None
        self._pool_revisions: tuple[int, int] | None = None
        self.name = name or f"fusion(omega={self.omega}, {social_mode}, {content_measure})"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the κJ worker pool down (idempotent; a later query that
        needs a pool lazily creates a fresh one).  Call this — or use the
        recommender as a context manager — wherever recommenders are
        constructed in bulk (benches, harness sweeps); an unclosed pool
        leaks its worker threads until the recommender is collected.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_revisions = None

    def __enter__(self) -> "FusionRecommender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Relevance components (per-pair public API)
    # ------------------------------------------------------------------
    def content_relevance(self, query: SignatureSeries, candidate: SignatureSeries) -> float:
        """The configured content similarity between two series."""
        return self._content(query, candidate)

    def social_relevance(
        self, query: SocialDescriptor, candidate: SocialDescriptor
    ) -> float:
        """The configured social similarity between two descriptors."""
        if self.social_mode == "exact":
            return jaccard(query, candidate)
        if self.social_mode == "naive":
            return jaccard_naive(query, candidate)
        if self.social_mode == "sketch":
            config = self.index.config
            first, first_size = sketch_users(
                query.users, bits=config.sketch_bits, seed=config.sketch_seed
            )
            second, second_size = sketch_users(
                candidate.users, bits=config.sketch_bits, seed=config.sketch_seed
            )
            return estimate_jaccard(first, first_size, second, second_size)
        vectorizer = self.index.sar if self.social_mode == "sar" else self.index.sar_h
        return approx_jaccard(
            vectorizer.vectorize(query), vectorizer.vectorize(candidate)
        )

    def score(self, query_id: str, candidate_id: str) -> float:
        """FJ relevance of one candidate (Eq. 9)."""
        content = 0.0
        social = 0.0
        if self.omega < 1.0:
            content = self.content_relevance(
                self.index.series[query_id], self.index.series[candidate_id]
            )
        if self.omega > 0.0:
            social = self.social_relevance(
                self.index.descriptor(query_id), self.index.descriptor(candidate_id)
            )
        return fuse_fj(min(content, 1.0), min(social, 1.0), self.omega)

    # ------------------------------------------------------------------
    # Scalar engine: per-pair calls with hoisted query-side work
    # ------------------------------------------------------------------
    def _content_scores_scalar(
        self, query_id: str, candidates: list[str], query_series=None
    ) -> np.ndarray:
        if query_series is None:
            query_series = self.index.series[query_id]
        return np.array(
            [
                self._content(query_series, self.index.series[candidate_id])
                for candidate_id in candidates
            ],
            dtype=np.float64,
        )

    def _sketch_query_state(self, query_id: str, query_vector):
        """``(matrix, sizes, video_ids, (query row, query size))`` for sketch mode.

        An indexed query's sketch is a row of the materialized bank; a
        guest query either brings its ``(row, size)`` pair along as
        *query_vector* (the sharded scatter path) or — on live indexes,
        where descriptors are replicated — sketches its descriptor.
        """
        matrix, sizes = self.index.sketch_matrix()
        video_ids = np.asarray(self.index.video_ids)
        if query_vector is None:
            position = int(np.searchsorted(video_ids, query_id))
            if position < video_ids.size and video_ids[position] == query_id:
                query_vector = (matrix[position], int(sizes[position]))
            else:
                config = self.index.config
                query_vector = sketch_users(
                    self.index.descriptor(query_id).users,
                    bits=config.sketch_bits,
                    seed=config.sketch_seed,
                )
        return matrix, sizes, video_ids, query_vector

    def _social_scores_scalar(
        self, query_id: str, candidates: list[str], query_vector=None
    ) -> np.ndarray:
        # The query-side descriptor work — including SAR vectorization —
        # happens once per query, not once per candidate; the per-candidate
        # cost (the quantity Figure 12(a) measures) is untouched.  A
        # *query_vector* bypasses the query-side vectorization entirely
        # (sharded scatter passes the owner shard's precomputed row, which
        # a non-owner's row-backed epoch vectorizer could not produce).
        if self.social_mode == "sketch":
            matrix, sizes, video_ids, query_vector = self._sketch_query_state(
                query_id, query_vector
            )
            query_row, query_size = query_vector

            def one(vid: str) -> float:
                row = int(np.searchsorted(video_ids, vid))
                if row >= video_ids.size or video_ids[row] != vid:
                    raise KeyError(f"candidate {vid!r} is not in the index")
                return estimate_jaccard(
                    query_row, query_size, matrix[row], int(sizes[row])
                )

            return np.array([one(vid) for vid in candidates], dtype=np.float64)
        query_descriptor = self.index.descriptor(query_id)
        if self.social_mode == "exact":
            one = lambda vid: jaccard(query_descriptor, self.index.descriptor(vid))
        elif self.social_mode == "naive":
            one = lambda vid: jaccard_naive(query_descriptor, self.index.descriptor(vid))
        else:
            vectorizer = (
                self.index.sar if self.social_mode == "sar" else self.index.sar_h
            )
            if query_vector is None:
                query_vector = vectorizer.vectorize(query_descriptor)
            one = lambda vid: approx_jaccard(
                query_vector, vectorizer.vectorize(self.index.descriptor(vid))
            )
        return np.array([one(vid) for vid in candidates], dtype=np.float64)

    # ------------------------------------------------------------------
    # Batch engine: array kernels over all candidates at once
    # ------------------------------------------------------------------
    def _worker_pool(self) -> ThreadPoolExecutor:
        # Keyed on the index revision pair: a structural swap retires the
        # old pool (and its threads) instead of accumulating executors.
        revisions = self.index.revisions
        if self._pool is not None and self._pool_revisions != revisions:
            self.close()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="repro-kj"
            )
            self._pool_revisions = revisions
        return self._pool

    def _content_scores_batch(
        self,
        query_id: str,
        candidates: list[str],
        dtype: str | None = None,
        query_series=None,
    ) -> np.ndarray:
        if query_series is None:
            query_series = self.index.series[query_id]
        if self.content_measure_name != "kj":
            # ERP/DTW are order-sensitive sequence alignments with no
            # array-level one-vs-many form; they stay per-pair.
            return self._content_scores_scalar(
                query_id, candidates, query_series=query_series
            )
        dtype = self.scan_dtype if dtype is None else dtype
        bank = self.index.signature_bank()
        threshold = self.index.config.match_threshold
        if self.num_workers > 1 and len(candidates) >= 2 * _MIN_CHUNK:
            if dtype == "float32":
                # Build (or reuse) the pack on the caller's thread; the
                # workers then share it read-only instead of racing the
                # lazy build.
                bank.fast_pack()
            chunks = [
                list(chunk)
                for chunk in np.array_split(
                    np.asarray(candidates, dtype=object),
                    min(self.num_workers, len(candidates) // _MIN_CHUNK),
                )
                if len(chunk)
            ]
            parts = self._worker_pool().map(
                lambda chunk: bank.kappa_j_scores(
                    query_series, chunk, threshold, dtype=dtype
                ),
                chunks,
            )
            return np.concatenate(list(parts))
        return bank.kappa_j_scores(query_series, candidates, threshold, dtype=dtype)

    def _social_scores_batch(
        self, query_id: str, candidates: list[str], query_vector=None
    ) -> np.ndarray:
        if self.social_mode in ("exact", "naive"):
            # Set-based Jaccard has no histogram matrix to batch over; the
            # scalar path (with hoisted query descriptor) is already it.
            return self._social_scores_scalar(query_id, candidates)
        if self.social_mode == "sketch":
            # Sketch mode is always matrix-backed (the bank IS the
            # materialization — there is no per-candidate re-vectorization
            # variant, so ``precomputed`` is moot here).
            matrix, sizes, video_ids, query_vector = self._sketch_query_state(
                query_id, query_vector
            )
            query_row, query_size = query_vector
            wanted = np.asarray(candidates)
            rows = np.searchsorted(video_ids, wanted)
            missing = video_ids[np.minimum(rows, video_ids.size - 1)] != wanted
            if missing.any():
                raise KeyError(
                    f"candidate {wanted[missing][0]!r} is not in the index"
                )
            return sketch_jaccard_batch(
                query_row, query_size, matrix[rows], sizes[rows]
            )
        vectorizer = self.index.sar if self.social_mode == "sar" else self.index.sar_h
        if query_vector is None:
            query_vector = vectorizer.vectorize(self.index.descriptor(query_id))
        if self.precomputed:
            # Rows of the materialized matrix follow the sorted video_ids
            # order; searchsorted maps any candidate subset (the full scan
            # or a budget chunk) onto its rows without re-vectorizing.
            matrix = self.index.sar_matrix(self.social_mode)
            video_ids = np.asarray(self.index.video_ids)
            wanted = np.asarray(candidates)
            rows = np.searchsorted(video_ids, wanted)
            # searchsorted returns an *insertion point* — for an id absent
            # from the index it silently lands on some other video's row.
            # Clamp, verify, and raise instead of scoring the wrong video.
            missing = video_ids[np.minimum(rows, len(video_ids) - 1)] != wanted
            if missing.any():
                raise KeyError(
                    f"candidate {wanted[missing][0]!r} is not in the index"
                )
            return approx_jaccard_batch(query_vector, matrix[rows])
        matrix = np.stack(
            [vectorizer.vectorize(self.index.descriptor(vid)) for vid in candidates]
        )
        return approx_jaccard_batch(query_vector, matrix)

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def _score_arrays(
        self,
        query_id: str,
        candidates: list[str],
        omega: float,
        trace=NULL_TRACE,
        metrics: MetricsRegistry = _NO_METRICS,
        dtype: str | None = None,
        query_series=None,
        query_vector=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(content, social)`` score arrays for *candidates*, clipped to 1.

        Components a weight of *omega* would ignore are left as zeros, so
        a degraded (ω-renormalised) scan never touches the social store.
        The κJ and SAR stages are timed separately into *trace* and
        *metrics* (both default to no-op sinks).  *dtype* overrides the
        configured ``scan_dtype`` for the content kernel (batch engine
        only; the scalar engine is float64 by construction).
        *query_series* / *query_vector* carry a guest query's signature
        series and precomputed SAR vector — the sharded scatter path,
        where the query video is indexed on another shard.
        """
        zeros = np.zeros(len(candidates), dtype=np.float64)
        if not candidates:
            return zeros, zeros
        if self.engine == "batch":
            content_of = lambda q, c: self._content_scores_batch(
                q, c, dtype=dtype, query_series=query_series
            )
            social_of = lambda q, c: self._social_scores_batch(
                q, c, query_vector=query_vector
            )
        else:
            content_of = lambda q, c: self._content_scores_scalar(
                q, c, query_series=query_series
            )
            social_of = lambda q, c: self._social_scores_scalar(
                q, c, query_vector=query_vector
            )
        if omega < 1.0:
            with _stage(trace, metrics, "content_scores"):
                content = content_of(query_id, candidates)
        else:
            content = zeros
        if omega > 0.0:
            with _stage(trace, metrics, "social_scores"):
                social = social_of(query_id, candidates)
        else:
            social = zeros
        return np.minimum(content, 1.0), np.minimum(social, 1.0)

    def _degradation_reasons(self) -> list[str]:
        """Why (if at all) the social term must be dropped for this query."""
        if self.omega <= 0.0:
            return []
        store = self.index.social_store
        if not store.available:
            reason = store.unavailable_reason
            suffix = f" ({reason})" if reason else ""
            return [f"social store unavailable{suffix}; serving content-only ranking"]
        bound = self.max_social_staleness
        if bound is not None and store.skipped_mutations > bound:
            return [
                f"social store stale: {store.skipped_mutations} skipped "
                f"mutations exceed the bound of {bound}; "
                "serving content-only ranking"
            ]
        return []

    def component_scores(self, query_id: str) -> dict[str, tuple[float, float]]:
        """Both relevance components for every candidate, in one pass.

        Returns ``candidate_id -> (content, social)``.  Parameter sweeps
        (the ω bench) reuse this to re-rank under many fusion weights
        without recomputing any EMD.  Routed through the configured
        engine; both engines agree to float rounding.  This is the
        non-degrading API: an unavailable social store raises
        :class:`~repro.errors.SocialStoreUnavailableError` (use
        :meth:`recommend` for graceful content-only fallback).
        """
        if query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        candidates = [vid for vid in self.index.video_ids if vid != query_id]
        # Always the full-precision path: this is the float64 oracle the
        # parameter sweeps and parity tests build on, whatever scan_dtype
        # the serving path uses.
        content, social = self._score_arrays(
            query_id, candidates, self.omega, dtype="float64"
        )
        return {
            vid: (float(c), float(s))
            for vid, c, s in zip(candidates, content, social)
        }

    def recommend(
        self,
        query_id: str,
        top_k: int = 10,
        trace=None,
        deadline: float | None = None,
        query_series=None,
        query_vector=None,
        query_pack=None,
        initial_threshold: float | None = None,
    ) -> "Recommendations":
        """Rank every other video by FJ and return the best *top_k* ids.

        Serving never fails soft-dependency checks hard: with ω > 0 and
        the social store unavailable (or staler than
        ``max_social_staleness``), ω is renormalised to zero and the
        content-only ranking is returned flagged ``degraded``.  With a
        ``time_budget``, candidates are scored in chunks until the
        deadline; an expired budget returns the best-effort ranking over
        the scored prefix flagged ``partial`` (at least one chunk is
        always scored).  The result compares equal to the plain id list.

        *deadline* is an **absolute** ``time.monotonic()`` instant for
        this one request (the serving gateway's per-request deadline,
        minus whatever admission already spent).  It threads into the
        same chunked scan as ``time_budget``; when both are set the
        earlier instant wins.  A deadline that is already past still
        scores one chunk — a request never pays admission only to return
        nothing.

        Pass a :class:`~repro.obs.QueryTrace` as *trace* to collect the
        per-stage span tree (``candidates`` / ``content_scores`` /
        ``social_scores`` / ``fuse_topk``); the query is also recorded
        into the process-wide :func:`~repro.obs.get_metrics` registry
        (query/stage latency histograms, served/degraded/partial
        counters) unless that registry is disabled.

        A **guest query** — one indexed elsewhere, as in the sharded
        scatter path — passes its signature series as *query_series* (and,
        for the precomputed SAR modes on epoch views, its SAR vector as
        *query_vector*); every indexed video then counts as a candidate.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if query_series is None and query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        metrics = get_metrics()
        if trace is None:
            trace = NULL_TRACE
        cutoff = None
        cutoff_reason = ""
        if self.time_budget is not None:
            cutoff = time.monotonic() + self.time_budget
            cutoff_reason = f"time budget of {self.time_budget}s expired"
        if deadline is not None:
            deadline = float(deadline)
            if cutoff is None or deadline < cutoff:
                cutoff = deadline
                cutoff_reason = "request deadline expired"
        with trace, metrics.time("repro_query_seconds"):
            with _stage(trace, metrics, "candidates"):
                reasons = self._degradation_reasons()
                omega = 0.0 if reasons else self.omega
                fast = (
                    cutoff is None
                    and bool(self.index.video_ids)
                    and self._fast_scan_applicable(omega)
                )
                if fast:
                    bank = self.index.signature_bank()
                    pack = bank.fast_pack()
                    query_pos = pack.index_of.get(query_id)
                    fast = (
                        query_pos is not None or query_series is not None
                    ) and len(pack.ids) == len(self.index.video_ids)
                if not fast:
                    candidates = [
                        vid for vid in self.index.video_ids if vid != query_id
                    ]
            if fast:
                ranked, ranked_scores, scanned, total = self._scan_pruned(
                    query_id,
                    query_pos,
                    bank,
                    pack,
                    omega,
                    top_k,
                    trace,
                    metrics,
                    query_series=query_series,
                    query_vector=query_vector,
                    query_pack=query_pack,
                    initial_threshold=initial_threshold,
                )
                results = Recommendations(
                    ranked,
                    degraded=bool(reasons),
                    partial=False,
                    reasons=reasons,
                    scored=total,
                    total=total,
                    scores=ranked_scores,
                )
                metrics.inc("repro_queries_total", engine=self.engine)
                metrics.inc("repro_candidates_scored_total", scanned)
                if total > scanned:
                    metrics.inc("repro_candidates_pruned_total", total - scanned)
                if results.degraded:
                    metrics.inc("repro_queries_degraded_total")
                return results
            total = len(candidates)
            if cutoff is None:
                scored = candidates
                content, social = self._score_arrays(
                    query_id,
                    candidates,
                    omega,
                    trace=trace,
                    metrics=metrics,
                    query_series=query_series,
                    query_vector=query_vector,
                )
            else:
                scored = []
                content_parts: list[np.ndarray] = []
                social_parts: list[np.ndarray] = []
                for start in range(0, total, _BUDGET_CHUNK):
                    chunk = candidates[start : start + _BUDGET_CHUNK]
                    chunk_content, chunk_social = self._score_arrays(
                        query_id,
                        chunk,
                        omega,
                        trace=trace,
                        metrics=metrics,
                        query_series=query_series,
                        query_vector=query_vector,
                    )
                    content_parts.append(chunk_content)
                    social_parts.append(chunk_social)
                    scored.extend(chunk)
                    if len(scored) < total and time.monotonic() >= cutoff:
                        reasons = reasons + [
                            f"{cutoff_reason} after "
                            f"{len(scored)}/{total} candidates; ranking the "
                            "scored prefix"
                        ]
                        break
                content = (
                    np.concatenate(content_parts)
                    if content_parts
                    else np.zeros(0, dtype=np.float64)
                )
                social = (
                    np.concatenate(social_parts)
                    if social_parts
                    else np.zeros(0, dtype=np.float64)
                )
            with _stage(trace, metrics, "fuse_topk"):
                components = {
                    vid: (float(c), float(s))
                    for vid, c, s in zip(scored, content, social)
                }
                ranked, ranked_scores = rank_components_scored(
                    components, omega, top_k
                )
        results = Recommendations(
            ranked,
            degraded=bool(reasons),
            partial=len(scored) < total,
            reasons=reasons,
            scored=len(scored),
            total=total,
            scores=ranked_scores,
        )
        metrics.inc("repro_queries_total", engine=self.engine)
        metrics.inc("repro_candidates_scored_total", len(scored))
        if results.degraded:
            metrics.inc("repro_queries_degraded_total")
        if results.partial:
            metrics.inc("repro_queries_partial_total")
        return results

    # ------------------------------------------------------------------
    # Pruned fast scan (batch engine, no deadline)
    # ------------------------------------------------------------------
    def _fast_scan_applicable(self, omega: float) -> bool:
        """Whether the position-addressed pruned scan can serve *omega*.

        It needs array kernels end-to-end: the batch engine, κJ content
        (unless ω = 1 skips content entirely), and the materialized SAR
        matrix for the social term (unless ω = 0 skips it).  Anything
        else falls back to the legacy per-id scan.  ``fast_scan=False``
        forces the legacy scan unconditionally — the bench's honest
        baseline, and an escape hatch should the fast path misbehave.
        """
        if not self.fast_scan:
            return False
        if self.engine != "batch":
            return False
        if omega < 1.0 and self.content_measure_name != "kj":
            return False
        if omega > 0.0 and not (
            (self.social_mode in ("sar", "sar-h") and self.precomputed)
            or self.social_mode == "sketch"
        ):
            return False
        return True

    def _scan_pruned(
        self,
        query_id,
        query_pos,
        bank,
        pack,
        omega,
        top_k,
        trace,
        metrics,
        query_series=None,
        query_vector=None,
        query_pack=None,
        initial_threshold=None,
    ):
        """Bound-ordered top-k scan over pack positions.

        Candidates are visited in descending order of a cheap fused-score
        upper bound — exact social term plus a per-video κJ cap derived
        from the segment-CDF EMD lower bound (DESIGN §12) — in doubling
        blocks clipped to the qualifying prefix; the scan stops as soon
        as every remaining bound falls strictly below the current k-th
        best fused score.  Ties at the boundary are always scored, so the
        returned ranking (ties broken by ascending id) is identical to
        the exhaustive scan's.

        Returns ``(ranked ids, their fused scores, candidates actually
        scored, total candidates)``.

        ``query_pos=None`` marks a guest query (indexed on another shard):
        every pack position is a candidate, the query-side keys come from
        :meth:`~repro.measures.content.SignatureFastPack.pack_query` over
        *query_series*, and the social term uses *query_vector*.  A
        scatter path that already packed the query against the pinned
        layout passes ``(keys, values, weights, seg_integrals)`` as
        *query_pack* — pack output depends only on the query and the
        pinned offset (and the integrals only on the pinned grid), so
        the whole tuple is shard-independent and safe to share.

        *initial_threshold* seeds the pruning threshold with a fused
        score known to be attainable elsewhere (the scatter-gather's
        running merged k-th best).  Candidates whose upper bound falls
        strictly below it can never enter the **merged** top-k, so the
        qualifying prefix starts trimmed; boundary ties (bound ==
        threshold) are kept and scored, exactly like the in-scan
        threshold, which preserves bitwise merged parity.
        """
        index = self.index
        n = len(pack.ids)
        if query_pos is None:
            positions = np.arange(n, dtype=np.int64)
        else:
            positions = np.empty(n - 1, dtype=np.int64) if n else np.empty(0, np.int64)
            positions[:query_pos] = np.arange(query_pos)
            positions[query_pos:] = np.arange(query_pos + 1, n)
        m = positions.size
        if m == 0:
            return [], [], 0, 0

        if omega > 0.0:
            with _stage(trace, metrics, "social_scores"):
                # An indexed query's SAR vector is a row of the
                # precomputed matrix (rows follow pack position order, as
                # the candidate gather relies on) — no per-query
                # descriptor vectorization.  A guest query brings its
                # vector along (or, on live indexes, vectorizes its
                # replicated descriptor).
                if self.social_mode == "sketch":
                    matrix, sketch_sizes = index.sketch_matrix()
                    if query_pos is not None:
                        query_row = matrix[query_pos]
                        query_size = int(sketch_sizes[query_pos])
                    elif query_vector is not None:
                        query_row, query_size = query_vector
                    else:
                        config = index.config
                        query_row, query_size = sketch_users(
                            index.descriptor(query_id).users,
                            bits=config.sketch_bits,
                            seed=config.sketch_seed,
                        )
                    if query_pos is None:
                        cand_rows, cand_sizes = matrix, sketch_sizes
                    else:
                        cand_rows = matrix[positions]
                        cand_sizes = sketch_sizes[positions]
                    social = sketch_jaccard_batch(
                        query_row, query_size, cand_rows, cand_sizes
                    )
                else:
                    matrix = index.sar_matrix(self.social_mode)
                    if query_pos is not None:
                        qvec = matrix[query_pos]
                    elif query_vector is not None:
                        qvec = query_vector
                    else:
                        vectorizer = (
                            index.sar if self.social_mode == "sar" else index.sar_h
                        )
                        qvec = vectorizer.vectorize(index.descriptor(query_id))
                    if query_pos is None:
                        # Guest candidates are every pack position in order:
                        # the gather would copy the whole SAR matrix.
                        cand_rows = matrix
                    else:
                        cand_rows = matrix[positions]
                    social = approx_jaccard_batch(qvec, cand_rows)
                np.minimum(social, 1.0, out=social)
        else:
            social = np.zeros(m, dtype=np.float64)

        def _rank_top(selection, fused):
            # (-score, id) order; positions ascend with ids, so the
            # position itself is the tie-break key.
            order = np.lexsort((positions[selection], -fused))[:top_k]
            chosen = selection[order]
            return pack.ids[positions[chosen]].tolist(), fused[order].tolist()

        if omega >= 1.0:
            # Pure social ranking: no content arithmetic at all, exactly
            # like the legacy path's zero-content fusion.
            with _stage(trace, metrics, "fuse_topk"):
                fused = (1.0 - omega) * np.zeros(m, dtype=np.float64)
                fused += omega * social
                ranked, ranked_scores = _rank_top(np.arange(m), fused)
            return ranked, ranked_scores, m, m

        series = query_series if query_series is not None else index.series[query_id]
        threshold = index.config.match_threshold
        with _stage(trace, metrics, "content_scores"):
            counts = pack.counts[positions]
            n1 = len(series)
            # An indexed query's sorted/normalised/key-encoded rows and
            # its bound integrals are pack slices — no per-query packing
            # work at all.  A guest query packs once against the same
            # offset, so its keys (and therefore its scores) are bitwise
            # what they would be if it were indexed here.
            shared_integrals = None
            if query_pos is not None:
                query_keys, query_rows = pack.query_keys_at(query_pos)
            elif query_pack is not None:
                query_keys, q_values, q_weights, shared_integrals = query_pack
            else:
                query_keys, q_values, q_weights = pack.pack_query(series)
            if self.prune:
                # κJ cap per candidate from the segment-CDF EMD lower
                # bound (DESIGN §12).  For any grid segmentation,
                # EMD(A, B) = ∫|F - G| >= Σ_t |∫_t F - ∫_t G|, so each
                # (query sig, bank row) pair gets a SimC ceiling
                # 1 / (1 + LB); pairs whose ceiling misses the match
                # threshold can never be matched.  Per candidate video:
                # matched pairs M <= min(#query sigs with any eligible
                # partner, n2), matched SimC total <= min(Σ_i
                # best-ceiling_i, M), and κJ = total/union <=
                # total_cap / (n1 + n2 - M).
                if query_pos is not None:
                    query_integrals = pack.seg_integrals[query_rows]
                elif shared_integrals is not None:
                    # Scatter-shared integrals: valid because the sharded
                    # coordinator pins one grid across every shard.
                    query_integrals = shared_integrals
                else:
                    # Guest queries derive their segment integrals on the
                    # pack's own grid — the bound inequality holds for
                    # any grid, so pruning stays sound.
                    query_integrals = _segment_integrals(
                        q_values, q_weights, grid=pack.grid
                    )[1]
                seg = pack.seg_integrals
                segments = seg.shape[1]
                workspace = get_workspace()
                lower = workspace.get("bound_lower", (n1, seg.shape[0]), np.float32)
                # Chunked so the (n1, chunk, SEGMENTS) float32 scratch
                # stays cache-sized at large community scale; explicit
                # out= buffers keep the per-query path allocation-free.
                step = 8192
                scratch = workspace.get(
                    "bound_scratch", (n1, min(step, seg.shape[0]), segments), np.float32
                )
                for chunk_start in range(0, seg.shape[0], step):
                    chunk_stop = min(seg.shape[0], chunk_start + step)
                    part = scratch[:, : chunk_stop - chunk_start]
                    np.subtract(
                        query_integrals[:, None, :],
                        seg[None, chunk_start:chunk_stop, :],
                        out=part,
                    )
                    np.abs(part, out=part)
                    # Segment-sum as a BLAS gemv against a ones vector —
                    # ~3x faster than np.sum over the tiny last axis.
                    np.matmul(
                        part,
                        _bound_ones(segments),
                        out=lower[:, chunk_start:chunk_stop],
                    )
                # The SimC ceiling 1 / (1 + max(LB - 1e-3, 0)) decreases
                # monotonically in LB, so per-pair arithmetic reduces
                # first (min LB per video) and maps after — three passes
                # over the (n1, rows) matrix instead of a dozen.  The
                # eligibility cut inverts "ceiling >= threshold" into LB
                # space; the 1e-3 slack absorbs float32 drift of both
                # sides' integrals and kernel rounding of computed EMDs.
                cut = (
                    np.float32(1.0 / threshold - 1.0 + 1e-3)
                    if threshold > 0.0
                    else np.float32(np.inf)
                )
                best_lower = np.minimum.reduceat(lower, pack.starts, axis=1)
                best = 1.0 / (1.0 + np.maximum(best_lower - 1e-3, 0.0))
                best[best_lower > cut] = 0.0
                sig_edges = (best > 0.0).sum(axis=0)
                matched_cap = np.minimum(sig_edges, pack.counts)
                total_cap = np.minimum(best.sum(axis=0), matched_cap)
                caps = (total_cap / (n1 + pack.counts - matched_cap))[positions]
                # Inflate by the kernel's relative error budget so a
                # float32 EMD rounding up can never push a computed κJ
                # past its cap (float64 rounding is covered a fortiori).
                caps *= 1.0 + 2e-6
                np.minimum(caps, 1.0, out=caps)
                bounds = (1.0 - omega) * caps
                if omega > 0.0:
                    bounds += omega * social
                order = np.argsort(-bounds, kind="stable")
            else:
                bounds = None
                order = np.arange(m)

            if self.scan_dtype == "float32":

                def content_block(block_positions):
                    return bank.kappa_j_scores_at(
                        query_keys, block_positions, threshold, pack=pack
                    )

            else:

                def content_block(block_positions):
                    return bank.kappa_j_scores(
                        series,
                        pack.ids[block_positions].tolist(),
                        threshold,
                        dtype="float64",
                    )

            scores = np.empty(m, dtype=np.float64)
            scanned = 0
            limit = m
            if bounds is not None:
                descending = -bounds[order]
                if initial_threshold is not None:
                    # A fused score this good already exists elsewhere in
                    # the scatter: start from its qualifying prefix.
                    limit = int(
                        np.searchsorted(
                            descending, -float(initial_threshold), side="right"
                        )
                    )
            # The first block is sized so the typical query's qualifying
            # prefix (~2-3x top_k in practice) fits in ONE kernel call —
            # a handful of extra vectorized EMD rows cost far less than a
            # second block's worth of gather/kernel/greedy dispatch.
            block = max(32, 2 * top_k)
            if initial_threshold is not None and bounds is not None:
                # A seeded scan already knows its qualifying prefix; one
                # kernel call over it beats doubling blocks whose fixed
                # dispatch cost dominates at trimmed sizes.
                block = max(block, min(limit, 256))
            while scanned < limit:
                selection = order[scanned : min(scanned + block, limit)]
                content = content_block(positions[selection])
                np.minimum(content, 1.0, out=content)
                fused = (1.0 - omega) * content
                if omega > 0.0:
                    fused += omega * social[selection]
                scores[scanned : scanned + selection.size] = fused
                scanned += selection.size
                if bounds is not None and scanned >= top_k:
                    kth = np.partition(scores[:scanned], scanned - top_k)[
                        scanned - top_k
                    ]
                    if initial_threshold is not None and initial_threshold > kth:
                        kth = float(initial_threshold)
                    # bounds[order] descends, so bisection finds the
                    # qualifying prefix (bound >= kth; boundary ties are
                    # kept and scored) — nothing past it can displace the
                    # current k-th best, and later blocks never score it.
                    limit = max(
                        scanned,
                        int(np.searchsorted(descending, -kth, side="right")),
                    )
                # 1024 candidates x ~6 rows x 2 sides of merge scratch
                # keeps the kernel's working set inside L2/L3; bigger
                # blocks trade cache locality for no fewer numpy calls.
                block = min(2 * block, 1024)

        with _stage(trace, metrics, "fuse_topk"):
            ranked, ranked_scores = _rank_top(order[:scanned], scores[:scanned])
        return ranked, ranked_scores, scanned, m


def rank_components_scored(
    components: dict[str, tuple[float, float]], omega: float, top_k: int
) -> tuple[list[str], list[float]]:
    """Rank precomputed component scores; returns ``(ids, fused scores)``."""
    scored = sorted(
        ((fuse_fj(content, social, omega), candidate_id)
         for candidate_id, (content, social) in components.items()),
        key=lambda pair: (-pair[0], pair[1]),
    )
    top = scored[:top_k]
    return [candidate_id for _, candidate_id in top], [score for score, _ in top]


def rank_components(
    components: dict[str, tuple[float, float]], omega: float, top_k: int
) -> list[str]:
    """Rank precomputed component scores under fusion weight *omega*."""
    return rank_components_scored(components, omega, top_k)[0]


def content_recommender(
    index: CommunityIndex, content_measure: str = "kj", engine: str | None = None
) -> FusionRecommender:
    """CR — content relevance only [35]."""
    return FusionRecommender(
        index, omega=0.0, content_measure=content_measure, name="CR", engine=engine
    )


def social_recommender(index: CommunityIndex, engine: str | None = None) -> FusionRecommender:
    """SR — social relevance only (exact sJ)."""
    return FusionRecommender(
        index, omega=1.0, social_mode="exact", name="SR", engine=engine
    )


def csf_recommender(
    index: CommunityIndex, omega: float | None = None, engine: str | None = None
) -> FusionRecommender:
    """CSF — content-social fusion with exact (naive-cost) social relevance."""
    return FusionRecommender(
        index, omega=omega, social_mode="naive", name="CSF", engine=engine
    )


def csf_sar_recommender(
    index: CommunityIndex, omega: float | None = None, engine: str | None = None
) -> FusionRecommender:
    """CSF-SAR — fusion with sorted-dictionary SAR approximation."""
    return FusionRecommender(
        index, omega=omega, social_mode="sar", name="CSF-SAR", engine=engine
    )


def csf_sar_h_recommender(
    index: CommunityIndex, omega: float | None = None, engine: str | None = None
) -> FusionRecommender:
    """CSF-SAR-H — fusion with chained-hash SAR approximation."""
    return FusionRecommender(
        index, omega=omega, social_mode="sar-h", name="CSF-SAR-H", engine=engine
    )
