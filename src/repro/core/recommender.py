"""The recommenders: CR, SR, CSF and the SAR / SAR-H optimised variants.

All variants share one skeleton — score every candidate video against the
query with some mix of content and social relevance, rank, return the top
K — and differ exactly along the two axes the paper evaluates:

* **content measure**: κJ (the paper's choice), ERP or DTW (Figure 7);
* **social mode**: ``exact`` set Jaccard, ``naive`` quadratic Jaccard (the
  cost model the paper charges to unoptimised CSF), ``sar``
  (sorted-dictionary vectorization + Eq. 6), or ``sar-h`` (chained-hash
  vectorization + Eq. 6) — Figure 12(a)'s three curves.

Two **scoring engines** drive the exhaustive scan:

* ``"batch"`` (the default) — one query is scored against *all*
  candidates with array-level kernels: the community-wide
  :class:`repro.measures.content.SignatureBank` turns the κJ SimC
  matrices into a handful of vectorized EMD calls, and the materialized
  ``(N, k)`` SAR matrix turns s̃J into one ``minimum``/``maximum``
  reduction (:func:`repro.social.sar.approx_jaccard_batch`).  An optional
  ``num_workers`` fans the κJ stage out over candidate blocks.
* ``"scalar"`` — the original per-pair Python calls, kept for parity
  testing and for the Figure-12 wall-clock benches whose whole point is
  measuring the per-candidate cost the batch engine amortises away.

Both engines produce identical rankings (scores agree to float rounding);
the parity suite in ``tests/test_batch_engine.py`` pins this for every
``social_mode`` × ``content_measure`` combination.

Serving degrades instead of failing: when the social store is marked
unavailable (or has lost more maintenance batches than the configured
staleness bound), :meth:`FusionRecommender.recommend` renormalises ω to
zero and returns a content-only ranking flagged ``degraded``; a per-query
``time_budget`` cuts the candidate scan short and returns the best-effort
prefix flagged ``partial``.  The :class:`Recommendations` result is a
``list`` subclass, so existing equality-based callers are unaffected.

The named constructors at the bottom produce the four systems of the
paper's Figure 10 plus the two optimised CSF flavours of Figure 12.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from repro.core.fusion import fuse_fj
from repro.core.pipeline import CommunityIndex
from repro.measures.content import kappa_j
from repro.measures.sequence import dtw_similarity, erp_similarity
from repro.obs import NULL_TRACE, MetricsRegistry, get_metrics
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor, jaccard, jaccard_naive
from repro.social.sar import approx_jaccard, approx_jaccard_batch

__all__ = [
    "FusionRecommender",
    "Recommendations",
    "content_recommender",
    "social_recommender",
    "csf_recommender",
    "csf_sar_recommender",
    "csf_sar_h_recommender",
]

#: Content measures selectable by name (Figure 7's three candidates).
CONTENT_MEASURES: dict[str, Callable[[SignatureSeries, SignatureSeries], float]] = {
    "kj": kappa_j,
    "erp": erp_similarity,
    "dtw": dtw_similarity,
}

#: Social relevance modes (None disables the social term entirely).
SOCIAL_MODES = ("exact", "naive", "sar", "sar-h")

#: Scoring engines of the exhaustive scan.
ENGINES = ("scalar", "batch")

#: Minimum candidates per worker chunk — below this the thread fan-out
#: costs more than it saves.
_MIN_CHUNK = 16

#: Candidates scored between deadline checks under a time budget.  Small
#: enough that overrun past the budget stays bounded, large enough that
#: the per-chunk bookkeeping doesn't dominate the array kernels.
_BUDGET_CHUNK = 32

#: Recording sink for untraced internal calls (``component_scores``, the
#: parameter-sweep path) — disabled, so they pay no clock reads.
_NO_METRICS = MetricsRegistry(enabled=False)


@contextmanager
def _stage(trace, metrics, name: str):
    """Time one named stage into both the span tree and the registry."""
    with trace.span(name), metrics.time("repro_stage_seconds", stage=name):
        yield


class Recommendations(list):
    """A ranked id list plus how it was served.

    A ``list`` subclass: equality, iteration and indexing behave exactly
    like the plain list :meth:`FusionRecommender.recommend` used to
    return, so callers that compare against expected id lists keep
    working.  The extra attributes say whether the ranking was served in
    degraded mode and why.

    Slicing (and :meth:`copy`) returns another :class:`Recommendations`
    carrying the *same* metadata — ``recommend(...)[:5]`` stays
    inspectable instead of silently decaying to a bare ``list`` and
    dropping the degraded/partial flags callers must check.

    Attributes
    ----------
    degraded:
        True when the ranking deviates from full fused service — social
        relevance dropped, or the candidate scan cut short.
    partial:
        True when the per-query time budget expired before every
        candidate was scored (``scored < total``).
    reasons:
        Human-readable explanations, one per degradation cause.
    scored / total:
        Candidates actually scored vs. the full candidate count.
    """

    def __init__(
        self,
        ids=(),
        *,
        degraded: bool = False,
        partial: bool = False,
        reasons=(),
        scored: int = 0,
        total: int = 0,
    ) -> None:
        super().__init__(ids)
        self.degraded = bool(degraded)
        self.partial = bool(partial)
        self.reasons = tuple(reasons)
        self.scored = int(scored)
        self.total = int(total)

    def _like(self, ids) -> "Recommendations":
        """A new :class:`Recommendations` over *ids* with this metadata."""
        return Recommendations(
            ids,
            degraded=self.degraded,
            partial=self.partial,
            reasons=self.reasons,
            scored=self.scored,
            total=self.total,
        )

    def __getitem__(self, item):
        result = super().__getitem__(item)
        if isinstance(item, slice):
            return self._like(result)
        return result

    def copy(self) -> "Recommendations":
        return self._like(list(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ""
        if self.degraded:
            flags = f", degraded=True, reasons={list(self.reasons)!r}"
        if self.partial:
            flags += f", partial={self.scored}/{self.total}"
        return f"Recommendations({list(self)!r}{flags})"


class FusionRecommender:
    """Exhaustive-scan recommender over a :class:`CommunityIndex`.

    Parameters
    ----------
    index:
        The built community index.
    omega:
        Fusion weight; 0 gives pure content (CR), 1 pure social (SR).
    social_mode:
        One of :data:`SOCIAL_MODES`; irrelevant when ``omega == 0``.
    content_measure:
        Key into :data:`CONTENT_MEASURES`; irrelevant when ``omega == 1``.
    engine:
        ``"batch"`` or ``"scalar"``; defaults to the index configuration's
        :attr:`~repro.core.config.RecommenderConfig.engine`.
    num_workers:
        Worker threads for the batch engine's chunked κJ fan-out; defaults
        to the index configuration's value.  0/1 = single-threaded.
    time_budget:
        Per-query wall-clock budget (seconds) for :meth:`recommend`;
        ``None`` (the config default) scans every candidate.
    max_social_staleness:
        Skipped-social-mutation bound beyond which :meth:`recommend`
        serves content-only; ``None`` (the config default) only degrades
        when the store is marked unavailable outright.
    precomputed:
        Batch engine only: when ``False``, SAR candidate histograms are
        re-vectorized through the dictionary backend at query time (the
        scalar path's cost model) instead of read from the index's
        materialized SAR matrix — this keeps Figure 12(a)'s wall-clock
        semantics available under the batch kernels.

    SAR modes on the **scalar** engine vectorize candidate descriptors *at
    query time* through the configured dictionary backend, so a wall-clock
    measurement of :meth:`recommend` exposes exactly the cost difference
    the paper's Figure 12(a) reports (quadratic set Jaccard vs
    binary-search vectorization vs chained-hash vectorization).
    """

    def __init__(
        self,
        index: CommunityIndex,
        omega: float | None = None,
        social_mode: str = "sar-h",
        content_measure: str = "kj",
        name: str | None = None,
        engine: str | None = None,
        num_workers: int | None = None,
        time_budget: float | None = None,
        max_social_staleness: int | None = None,
        precomputed: bool = True,
    ) -> None:
        if social_mode not in SOCIAL_MODES:
            raise ValueError(
                f"unknown social mode {social_mode!r}; expected one of {SOCIAL_MODES}"
            )
        if content_measure not in CONTENT_MEASURES:
            raise ValueError(
                f"unknown content measure {content_measure!r}; "
                f"expected one of {tuple(CONTENT_MEASURES)}"
            )
        self.index = index
        self.omega = index.config.omega if omega is None else float(omega)
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        self.engine = index.config.engine if engine is None else engine
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        self.num_workers = (
            index.config.num_workers if num_workers is None else int(num_workers)
        )
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        self.time_budget = (
            index.config.time_budget if time_budget is None else float(time_budget)
        )
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be > 0, got {self.time_budget}")
        self.max_social_staleness = (
            index.config.max_social_staleness
            if max_social_staleness is None
            else int(max_social_staleness)
        )
        if self.max_social_staleness is not None and self.max_social_staleness < 0:
            raise ValueError(
                f"max_social_staleness must be >= 0, got {self.max_social_staleness}"
            )
        self.precomputed = bool(precomputed)
        self.social_mode = social_mode
        self.content_measure_name = content_measure
        if content_measure == "kj":
            threshold = index.config.match_threshold

            def _kj(first: SignatureSeries, second: SignatureSeries) -> float:
                return kappa_j(first, second, match_threshold=threshold)

            self._content = _kj
        else:
            self._content = CONTENT_MEASURES[content_measure]
        self._pool: ThreadPoolExecutor | None = None
        self._pool_revisions: tuple[int, int] | None = None
        self.name = name or f"fusion(omega={self.omega}, {social_mode}, {content_measure})"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the κJ worker pool down (idempotent; a later query that
        needs a pool lazily creates a fresh one).  Call this — or use the
        recommender as a context manager — wherever recommenders are
        constructed in bulk (benches, harness sweeps); an unclosed pool
        leaks its worker threads until the recommender is collected.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_revisions = None

    def __enter__(self) -> "FusionRecommender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Relevance components (per-pair public API)
    # ------------------------------------------------------------------
    def content_relevance(self, query: SignatureSeries, candidate: SignatureSeries) -> float:
        """The configured content similarity between two series."""
        return self._content(query, candidate)

    def social_relevance(
        self, query: SocialDescriptor, candidate: SocialDescriptor
    ) -> float:
        """The configured social similarity between two descriptors."""
        if self.social_mode == "exact":
            return jaccard(query, candidate)
        if self.social_mode == "naive":
            return jaccard_naive(query, candidate)
        vectorizer = self.index.sar if self.social_mode == "sar" else self.index.sar_h
        return approx_jaccard(
            vectorizer.vectorize(query), vectorizer.vectorize(candidate)
        )

    def score(self, query_id: str, candidate_id: str) -> float:
        """FJ relevance of one candidate (Eq. 9)."""
        content = 0.0
        social = 0.0
        if self.omega < 1.0:
            content = self.content_relevance(
                self.index.series[query_id], self.index.series[candidate_id]
            )
        if self.omega > 0.0:
            social = self.social_relevance(
                self.index.descriptor(query_id), self.index.descriptor(candidate_id)
            )
        return fuse_fj(min(content, 1.0), min(social, 1.0), self.omega)

    # ------------------------------------------------------------------
    # Scalar engine: per-pair calls with hoisted query-side work
    # ------------------------------------------------------------------
    def _content_scores_scalar(
        self, query_id: str, candidates: list[str]
    ) -> np.ndarray:
        query_series = self.index.series[query_id]
        return np.array(
            [
                self._content(query_series, self.index.series[candidate_id])
                for candidate_id in candidates
            ],
            dtype=np.float64,
        )

    def _social_scores_scalar(
        self, query_id: str, candidates: list[str]
    ) -> np.ndarray:
        # The query-side descriptor work — including SAR vectorization —
        # happens once per query, not once per candidate; the per-candidate
        # cost (the quantity Figure 12(a) measures) is untouched.
        query_descriptor = self.index.descriptor(query_id)
        if self.social_mode == "exact":
            one = lambda vid: jaccard(query_descriptor, self.index.descriptor(vid))
        elif self.social_mode == "naive":
            one = lambda vid: jaccard_naive(query_descriptor, self.index.descriptor(vid))
        else:
            vectorizer = (
                self.index.sar if self.social_mode == "sar" else self.index.sar_h
            )
            query_vector = vectorizer.vectorize(query_descriptor)
            one = lambda vid: approx_jaccard(
                query_vector, vectorizer.vectorize(self.index.descriptor(vid))
            )
        return np.array([one(vid) for vid in candidates], dtype=np.float64)

    # ------------------------------------------------------------------
    # Batch engine: array kernels over all candidates at once
    # ------------------------------------------------------------------
    def _worker_pool(self) -> ThreadPoolExecutor:
        # Keyed on the index revision pair: a structural swap retires the
        # old pool (and its threads) instead of accumulating executors.
        revisions = self.index.revisions
        if self._pool is not None and self._pool_revisions != revisions:
            self.close()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="repro-kj"
            )
            self._pool_revisions = revisions
        return self._pool

    def _content_scores_batch(
        self, query_id: str, candidates: list[str]
    ) -> np.ndarray:
        query_series = self.index.series[query_id]
        if self.content_measure_name != "kj":
            # ERP/DTW are order-sensitive sequence alignments with no
            # array-level one-vs-many form; they stay per-pair.
            return self._content_scores_scalar(query_id, candidates)
        bank = self.index.signature_bank()
        threshold = self.index.config.match_threshold
        if self.num_workers > 1 and len(candidates) >= 2 * _MIN_CHUNK:
            chunks = [
                list(chunk)
                for chunk in np.array_split(
                    np.asarray(candidates, dtype=object),
                    min(self.num_workers, len(candidates) // _MIN_CHUNK),
                )
                if len(chunk)
            ]
            parts = self._worker_pool().map(
                lambda chunk: bank.kappa_j_scores(query_series, chunk, threshold),
                chunks,
            )
            return np.concatenate(list(parts))
        return bank.kappa_j_scores(query_series, candidates, threshold)

    def _social_scores_batch(
        self, query_id: str, candidates: list[str]
    ) -> np.ndarray:
        query_descriptor = self.index.descriptor(query_id)
        if self.social_mode in ("exact", "naive"):
            # Set-based Jaccard has no histogram matrix to batch over; the
            # scalar path (with hoisted query descriptor) is already it.
            return self._social_scores_scalar(query_id, candidates)
        vectorizer = self.index.sar if self.social_mode == "sar" else self.index.sar_h
        query_vector = vectorizer.vectorize(query_descriptor)
        if self.precomputed:
            # Rows of the materialized matrix follow the sorted video_ids
            # order; searchsorted maps any candidate subset (the full scan
            # or a budget chunk) onto its rows without re-vectorizing.
            matrix = self.index.sar_matrix(self.social_mode)
            rows = np.searchsorted(
                np.asarray(self.index.video_ids), np.asarray(candidates)
            )
            return approx_jaccard_batch(query_vector, matrix[rows])
        matrix = np.stack(
            [vectorizer.vectorize(self.index.descriptor(vid)) for vid in candidates]
        )
        return approx_jaccard_batch(query_vector, matrix)

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def _score_arrays(
        self,
        query_id: str,
        candidates: list[str],
        omega: float,
        trace=NULL_TRACE,
        metrics: MetricsRegistry = _NO_METRICS,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(content, social)`` score arrays for *candidates*, clipped to 1.

        Components a weight of *omega* would ignore are left as zeros, so
        a degraded (ω-renormalised) scan never touches the social store.
        The κJ and SAR stages are timed separately into *trace* and
        *metrics* (both default to no-op sinks).
        """
        zeros = np.zeros(len(candidates), dtype=np.float64)
        if not candidates:
            return zeros, zeros
        if self.engine == "batch":
            content_of, social_of = self._content_scores_batch, self._social_scores_batch
        else:
            content_of, social_of = self._content_scores_scalar, self._social_scores_scalar
        if omega < 1.0:
            with _stage(trace, metrics, "content_scores"):
                content = content_of(query_id, candidates)
        else:
            content = zeros
        if omega > 0.0:
            with _stage(trace, metrics, "social_scores"):
                social = social_of(query_id, candidates)
        else:
            social = zeros
        return np.minimum(content, 1.0), np.minimum(social, 1.0)

    def _degradation_reasons(self) -> list[str]:
        """Why (if at all) the social term must be dropped for this query."""
        if self.omega <= 0.0:
            return []
        store = self.index.social_store
        if not store.available:
            reason = store.unavailable_reason
            suffix = f" ({reason})" if reason else ""
            return [f"social store unavailable{suffix}; serving content-only ranking"]
        bound = self.max_social_staleness
        if bound is not None and store.skipped_mutations > bound:
            return [
                f"social store stale: {store.skipped_mutations} skipped "
                f"mutations exceed the bound of {bound}; "
                "serving content-only ranking"
            ]
        return []

    def component_scores(self, query_id: str) -> dict[str, tuple[float, float]]:
        """Both relevance components for every candidate, in one pass.

        Returns ``candidate_id -> (content, social)``.  Parameter sweeps
        (the ω bench) reuse this to re-rank under many fusion weights
        without recomputing any EMD.  Routed through the configured
        engine; both engines agree to float rounding.  This is the
        non-degrading API: an unavailable social store raises
        :class:`~repro.errors.SocialStoreUnavailableError` (use
        :meth:`recommend` for graceful content-only fallback).
        """
        if query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        candidates = [vid for vid in self.index.video_ids if vid != query_id]
        content, social = self._score_arrays(query_id, candidates, self.omega)
        return {
            vid: (float(c), float(s))
            for vid, c, s in zip(candidates, content, social)
        }

    def recommend(
        self, query_id: str, top_k: int = 10, trace=None, deadline: float | None = None
    ) -> "Recommendations":
        """Rank every other video by FJ and return the best *top_k* ids.

        Serving never fails soft-dependency checks hard: with ω > 0 and
        the social store unavailable (or staler than
        ``max_social_staleness``), ω is renormalised to zero and the
        content-only ranking is returned flagged ``degraded``.  With a
        ``time_budget``, candidates are scored in chunks until the
        deadline; an expired budget returns the best-effort ranking over
        the scored prefix flagged ``partial`` (at least one chunk is
        always scored).  The result compares equal to the plain id list.

        *deadline* is an **absolute** ``time.monotonic()`` instant for
        this one request (the serving gateway's per-request deadline,
        minus whatever admission already spent).  It threads into the
        same chunked scan as ``time_budget``; when both are set the
        earlier instant wins.  A deadline that is already past still
        scores one chunk — a request never pays admission only to return
        nothing.

        Pass a :class:`~repro.obs.QueryTrace` as *trace* to collect the
        per-stage span tree (``candidates`` / ``content_scores`` /
        ``social_scores`` / ``fuse_topk``); the query is also recorded
        into the process-wide :func:`~repro.obs.get_metrics` registry
        (query/stage latency histograms, served/degraded/partial
        counters) unless that registry is disabled.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        metrics = get_metrics()
        if trace is None:
            trace = NULL_TRACE
        cutoff = None
        cutoff_reason = ""
        if self.time_budget is not None:
            cutoff = time.monotonic() + self.time_budget
            cutoff_reason = f"time budget of {self.time_budget}s expired"
        if deadline is not None:
            deadline = float(deadline)
            if cutoff is None or deadline < cutoff:
                cutoff = deadline
                cutoff_reason = "request deadline expired"
        with trace, metrics.time("repro_query_seconds"):
            with _stage(trace, metrics, "candidates"):
                reasons = self._degradation_reasons()
                omega = 0.0 if reasons else self.omega
                candidates = [vid for vid in self.index.video_ids if vid != query_id]
            total = len(candidates)
            if cutoff is None:
                scored = candidates
                content, social = self._score_arrays(
                    query_id, candidates, omega, trace=trace, metrics=metrics
                )
            else:
                scored = []
                content_parts: list[np.ndarray] = []
                social_parts: list[np.ndarray] = []
                for start in range(0, total, _BUDGET_CHUNK):
                    chunk = candidates[start : start + _BUDGET_CHUNK]
                    chunk_content, chunk_social = self._score_arrays(
                        query_id, chunk, omega, trace=trace, metrics=metrics
                    )
                    content_parts.append(chunk_content)
                    social_parts.append(chunk_social)
                    scored.extend(chunk)
                    if len(scored) < total and time.monotonic() >= cutoff:
                        reasons = reasons + [
                            f"{cutoff_reason} after "
                            f"{len(scored)}/{total} candidates; ranking the "
                            "scored prefix"
                        ]
                        break
                content = (
                    np.concatenate(content_parts)
                    if content_parts
                    else np.zeros(0, dtype=np.float64)
                )
                social = (
                    np.concatenate(social_parts)
                    if social_parts
                    else np.zeros(0, dtype=np.float64)
                )
            with _stage(trace, metrics, "fuse_topk"):
                components = {
                    vid: (float(c), float(s))
                    for vid, c, s in zip(scored, content, social)
                }
                ranked = rank_components(components, omega, top_k)
        results = Recommendations(
            ranked,
            degraded=bool(reasons),
            partial=len(scored) < total,
            reasons=reasons,
            scored=len(scored),
            total=total,
        )
        metrics.inc("repro_queries_total", engine=self.engine)
        metrics.inc("repro_candidates_scored_total", len(scored))
        if results.degraded:
            metrics.inc("repro_queries_degraded_total")
        if results.partial:
            metrics.inc("repro_queries_partial_total")
        return results


def rank_components(
    components: dict[str, tuple[float, float]], omega: float, top_k: int
) -> list[str]:
    """Rank precomputed component scores under fusion weight *omega*."""
    scored = sorted(
        ((fuse_fj(content, social, omega), candidate_id)
         for candidate_id, (content, social) in components.items()),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return [candidate_id for _, candidate_id in scored[:top_k]]


def content_recommender(
    index: CommunityIndex, content_measure: str = "kj", engine: str | None = None
) -> FusionRecommender:
    """CR — content relevance only [35]."""
    return FusionRecommender(
        index, omega=0.0, content_measure=content_measure, name="CR", engine=engine
    )


def social_recommender(index: CommunityIndex, engine: str | None = None) -> FusionRecommender:
    """SR — social relevance only (exact sJ)."""
    return FusionRecommender(
        index, omega=1.0, social_mode="exact", name="SR", engine=engine
    )


def csf_recommender(
    index: CommunityIndex, omega: float | None = None, engine: str | None = None
) -> FusionRecommender:
    """CSF — content-social fusion with exact (naive-cost) social relevance."""
    return FusionRecommender(
        index, omega=omega, social_mode="naive", name="CSF", engine=engine
    )


def csf_sar_recommender(
    index: CommunityIndex, omega: float | None = None, engine: str | None = None
) -> FusionRecommender:
    """CSF-SAR — fusion with sorted-dictionary SAR approximation."""
    return FusionRecommender(
        index, omega=omega, social_mode="sar", name="CSF-SAR", engine=engine
    )


def csf_sar_h_recommender(
    index: CommunityIndex, omega: float | None = None, engine: str | None = None
) -> FusionRecommender:
    """CSF-SAR-H — fusion with chained-hash SAR approximation."""
    return FusionRecommender(
        index, omega=omega, social_mode="sar-h", name="CSF-SAR-H", engine=engine
    )
