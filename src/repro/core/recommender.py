"""The recommenders: CR, SR, CSF and the SAR / SAR-H optimised variants.

All variants share one skeleton — score every candidate video against the
query with some mix of content and social relevance, rank, return the top
K — and differ exactly along the two axes the paper evaluates:

* **content measure**: κJ (the paper's choice), ERP or DTW (Figure 7);
* **social mode**: ``exact`` set Jaccard, ``naive`` quadratic Jaccard (the
  cost model the paper charges to unoptimised CSF), ``sar``
  (sorted-dictionary vectorization + Eq. 6), or ``sar-h`` (chained-hash
  vectorization + Eq. 6) — Figure 12(a)'s three curves.

The named constructors at the bottom produce the four systems of the
paper's Figure 10 plus the two optimised CSF flavours of Figure 12.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import RecommenderConfig
from repro.core.fusion import fuse_fj
from repro.core.pipeline import CommunityIndex
from repro.measures.content import kappa_j
from repro.measures.sequence import dtw_similarity, erp_similarity
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor, jaccard, jaccard_naive
from repro.social.sar import approx_jaccard

__all__ = [
    "FusionRecommender",
    "content_recommender",
    "social_recommender",
    "csf_recommender",
    "csf_sar_recommender",
    "csf_sar_h_recommender",
]

#: Content measures selectable by name (Figure 7's three candidates).
CONTENT_MEASURES: dict[str, Callable[[SignatureSeries, SignatureSeries], float]] = {
    "kj": kappa_j,
    "erp": erp_similarity,
    "dtw": dtw_similarity,
}

#: Social relevance modes (None disables the social term entirely).
SOCIAL_MODES = ("exact", "naive", "sar", "sar-h")


class FusionRecommender:
    """Exhaustive-scan recommender over a :class:`CommunityIndex`.

    Parameters
    ----------
    index:
        The built community index.
    omega:
        Fusion weight; 0 gives pure content (CR), 1 pure social (SR).
    social_mode:
        One of :data:`SOCIAL_MODES`; irrelevant when ``omega == 0``.
    content_measure:
        Key into :data:`CONTENT_MEASURES`; irrelevant when ``omega == 1``.

    SAR modes vectorize candidate descriptors *at query time* through the
    configured dictionary backend, so a wall-clock measurement of
    :meth:`recommend` exposes exactly the cost difference the paper's
    Figure 12(a) reports (quadratic set Jaccard vs binary-search
    vectorization vs chained-hash vectorization).
    """

    def __init__(
        self,
        index: CommunityIndex,
        omega: float | None = None,
        social_mode: str = "sar-h",
        content_measure: str = "kj",
        name: str | None = None,
    ) -> None:
        if social_mode not in SOCIAL_MODES:
            raise ValueError(
                f"unknown social mode {social_mode!r}; expected one of {SOCIAL_MODES}"
            )
        if content_measure not in CONTENT_MEASURES:
            raise ValueError(
                f"unknown content measure {content_measure!r}; "
                f"expected one of {tuple(CONTENT_MEASURES)}"
            )
        self.index = index
        self.omega = index.config.omega if omega is None else float(omega)
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        self.social_mode = social_mode
        self.content_measure_name = content_measure
        if content_measure == "kj":
            threshold = index.config.match_threshold

            def _kj(first: SignatureSeries, second: SignatureSeries) -> float:
                return kappa_j(first, second, match_threshold=threshold)

            self._content = _kj
        else:
            self._content = CONTENT_MEASURES[content_measure]
        self.name = name or f"fusion(omega={self.omega}, {social_mode}, {content_measure})"

    # ------------------------------------------------------------------
    # Relevance components
    # ------------------------------------------------------------------
    def content_relevance(self, query: SignatureSeries, candidate: SignatureSeries) -> float:
        """The configured content similarity between two series."""
        return self._content(query, candidate)

    def social_relevance(
        self, query: SocialDescriptor, candidate: SocialDescriptor
    ) -> float:
        """The configured social similarity between two descriptors."""
        if self.social_mode == "exact":
            return jaccard(query, candidate)
        if self.social_mode == "naive":
            return jaccard_naive(query, candidate)
        vectorizer = self.index.sar if self.social_mode == "sar" else self.index.sar_h
        return approx_jaccard(
            vectorizer.vectorize(query), vectorizer.vectorize(candidate)
        )

    def score(self, query_id: str, candidate_id: str) -> float:
        """FJ relevance of one candidate (Eq. 9)."""
        content = 0.0
        social = 0.0
        if self.omega < 1.0:
            content = self.content_relevance(
                self.index.series[query_id], self.index.series[candidate_id]
            )
        if self.omega > 0.0:
            social = self.social_relevance(
                self.index.descriptor(query_id), self.index.descriptor(candidate_id)
            )
        return fuse_fj(min(content, 1.0), min(social, 1.0), self.omega)

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def recommend(self, query_id: str, top_k: int = 10) -> list[str]:
        """Rank every other video by FJ and return the best *top_k* ids."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        scored = [
            (self.score(query_id, candidate_id), candidate_id)
            for candidate_id in self.index.video_ids
            if candidate_id != query_id
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [candidate_id for _, candidate_id in scored[:top_k]]

    def component_scores(self, query_id: str) -> dict[str, tuple[float, float]]:
        """Both relevance components for every candidate, in one pass.

        Returns ``candidate_id -> (content, social)``.  Parameter sweeps
        (the ω bench) reuse this to re-rank under many fusion weights
        without recomputing any EMD.
        """
        query_series = self.index.series[query_id]
        query_descriptor = self.index.descriptor(query_id)
        components: dict[str, tuple[float, float]] = {}
        for candidate_id in self.index.video_ids:
            if candidate_id == query_id:
                continue
            components[candidate_id] = (
                min(self.content_relevance(query_series, self.index.series[candidate_id]), 1.0),
                min(self.social_relevance(query_descriptor, self.index.descriptor(candidate_id)), 1.0),
            )
        return components


def rank_components(
    components: dict[str, tuple[float, float]], omega: float, top_k: int
) -> list[str]:
    """Rank precomputed component scores under fusion weight *omega*."""
    scored = sorted(
        ((fuse_fj(content, social, omega), candidate_id)
         for candidate_id, (content, social) in components.items()),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return [candidate_id for _, candidate_id in scored[:top_k]]


def content_recommender(index: CommunityIndex, content_measure: str = "kj") -> FusionRecommender:
    """CR — content relevance only [35]."""
    return FusionRecommender(
        index, omega=0.0, content_measure=content_measure, name="CR"
    )


def social_recommender(index: CommunityIndex) -> FusionRecommender:
    """SR — social relevance only (exact sJ)."""
    return FusionRecommender(index, omega=1.0, social_mode="exact", name="SR")


def csf_recommender(index: CommunityIndex, omega: float | None = None) -> FusionRecommender:
    """CSF — content-social fusion with exact (naive-cost) social relevance."""
    return FusionRecommender(index, omega=omega, social_mode="naive", name="CSF")


def csf_sar_recommender(index: CommunityIndex, omega: float | None = None) -> FusionRecommender:
    """CSF-SAR — fusion with sorted-dictionary SAR approximation."""
    return FusionRecommender(index, omega=omega, social_mode="sar", name="CSF-SAR")


def csf_sar_h_recommender(index: CommunityIndex, omega: float | None = None) -> FusionRecommender:
    """CSF-SAR-H — fusion with chained-hash SAR approximation."""
    return FusionRecommender(index, omega=omega, social_mode="sar-h", name="CSF-SAR-H")
