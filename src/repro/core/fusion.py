"""Content-social relevance fusion (paper Section 4.3).

The paper's final relevance is the weighted late fusion

    FJ(V, Q) = (1 - ω) κJ(S_V, S_Q) + ω sJ(D_V, D_Q)         (Eq. 9)

and Section 4.3 discusses — and rejects — two simpler combiners borrowed
from search fusion: the plain average (ignores that the two signals matter
differently) and the maximum (discards one signal entirely).  Both are kept
here for the fusion ablation bench.
"""

from __future__ import annotations

__all__ = ["fuse_fj", "fuse_average", "fuse_max"]


def _check(content: float, social: float) -> None:
    if not 0.0 <= content <= 1.0 + 1e-9:
        raise ValueError(f"content relevance must be in [0, 1], got {content}")
    if not 0.0 <= social <= 1.0 + 1e-9:
        raise ValueError(f"social relevance must be in [0, 1], got {social}")


def fuse_fj(content: float, social: float, omega: float) -> float:
    """The FJ weighted fusion (Eq. 9)."""
    if not 0.0 <= omega <= 1.0:
        raise ValueError(f"omega must be in [0, 1], got {omega}")
    _check(content, social)
    return (1.0 - omega) * content + omega * social


def fuse_average(content: float, social: float) -> float:
    """Unweighted mean — the 'average' alternative of Section 4.3."""
    _check(content, social)
    return 0.5 * (content + social)


def fuse_max(content: float, social: float) -> float:
    """Retain the higher relevance — the 'max' alternative of Section 4.3."""
    _check(content, social)
    return max(content, social)
