"""Trivial reference recommenders: random and comment-popularity.

Neither appears in the paper's comparison, but every recommendation study
needs a floor: a method that beats AFFRF but not random hasn't shown much.
The evaluation harness accepts these exactly like the real systems.
"""

from __future__ import annotations

import numpy as np

from repro.community.models import CommunityDataset

__all__ = ["RandomRecommender", "PopularityRecommender"]


class RandomRecommender:
    """Uniformly random recommendations (seeded, query-independent noise floor)."""

    name = "Random"

    def __init__(self, dataset: CommunityDataset, seed: int = 0) -> None:
        self._video_ids = sorted(dataset.records)
        self._seed = seed

    def recommend(self, query_id: str, top_k: int = 10) -> list[str]:
        """A random sample of other videos (deterministic per query)."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        pool = [video_id for video_id in self._video_ids if video_id != query_id]
        rng = np.random.default_rng(
            self._seed + sum(ord(c) for c in query_id)
        )
        picks = rng.permutation(len(pool))[:top_k]
        return [pool[int(i)] for i in picks]


class PopularityRecommender:
    """Most-commented-first — the classic non-personalised baseline.

    Ignores the query entirely (every user sees the same list), which is
    precisely the behaviour the paper's clicked-video relevance model
    improves on.
    """

    name = "Popularity"

    def __init__(self, dataset: CommunityDataset, up_to_month: int = 11) -> None:
        counts = dataset.comment_counts(up_to_month=up_to_month)
        self._ranked = sorted(counts, key=lambda vid: (-counts[vid], vid))

    def recommend(self, query_id: str, top_k: int = 10) -> list[str]:
        """The global popularity ranking, minus the query itself."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        return [vid for vid in self._ranked if vid != query_id][:top_k]
