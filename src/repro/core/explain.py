"""Recommendation explanations: *why* a video was recommended.

A downstream deployment of the paper's system needs to justify its
suggestions ("because viewers of this clip also commented on...", "matches
2 of 6 scenes").  This module decomposes an FJ score into its evidence:

* the matched signature pairs and their SimC values (content side);
* the shared commenters and shared sub-communities (social side);
* the fused contribution of each term under the configured ω.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import CommunityIndex
from repro.measures.content import pairwise_sim_matrix
from repro.social.sar import approx_jaccard

__all__ = ["SignatureMatch", "Explanation", "explain_recommendation"]


@dataclass(frozen=True)
class SignatureMatch:
    """One matched signature pair contributing to κJ."""

    query_position: int
    candidate_position: int
    similarity: float


@dataclass(frozen=True)
class Explanation:
    """Structured evidence behind one recommendation.

    Attributes
    ----------
    query_id, candidate_id:
        The explained pair.
    omega:
        Fusion weight used.
    content_score, social_score, fused_score:
        The two components and their FJ combination.
    matches:
        Matched signature pairs (content evidence), best first.
    shared_users:
        Commenters present on both videos (direct social evidence).
    shared_communities:
        Sub-community ids where both videos have commenter mass.
    """

    query_id: str
    candidate_id: str
    omega: float
    content_score: float
    social_score: float
    fused_score: float
    matches: tuple[SignatureMatch, ...]
    shared_users: tuple[str, ...]
    shared_communities: tuple[int, ...]

    def summary(self) -> str:
        """One human-readable paragraph."""
        parts = [
            f"{self.candidate_id} scored {self.fused_score:.3f} for {self.query_id} "
            f"(content {self.content_score:.3f} x {1 - self.omega:.1f} + "
            f"social {self.social_score:.3f} x {self.omega:.1f})."
        ]
        if self.matches:
            best = self.matches[0]
            parts.append(
                f"{len(self.matches)} scene signature(s) matched "
                f"(best SimC {best.similarity:.2f})."
            )
        else:
            parts.append("No scene signatures matched.")
        if self.shared_users:
            sample = ", ".join(self.shared_users[:3])
            parts.append(
                f"{len(self.shared_users)} shared commenter(s), e.g. {sample}."
            )
        elif self.shared_communities:
            parts.append(
                f"No direct shared commenters, but both draw viewers from "
                f"sub-communities {list(self.shared_communities[:4])}."
            )
        else:
            parts.append("No social overlap.")
        return " ".join(parts)


def explain_recommendation(
    index: CommunityIndex,
    query_id: str,
    candidate_id: str,
    omega: float | None = None,
) -> Explanation:
    """Build the evidence trail for recommending *candidate_id*.

    Uses the same greedy matching as κJ so the reported matches are
    exactly the pairs the score was built from.
    """
    if query_id not in index.series:
        raise KeyError(f"unknown video {query_id!r}")
    if candidate_id not in index.series:
        raise KeyError(f"unknown video {candidate_id!r}")
    omega = index.config.omega if omega is None else float(omega)

    query_series = index.series[query_id]
    candidate_series = index.series[candidate_id]
    matrix = pairwise_sim_matrix(query_series, candidate_series)
    threshold = index.config.match_threshold

    order = np.argsort(matrix, axis=None)[::-1]
    used_rows = np.zeros(matrix.shape[0], dtype=bool)
    used_cols = np.zeros(matrix.shape[1], dtype=bool)
    matches: list[SignatureMatch] = []
    matched_total = 0.0
    for flat in order:
        row, col = divmod(int(flat), matrix.shape[1])
        value = float(matrix[row, col])
        if value < threshold:
            break
        if used_rows[row] or used_cols[col]:
            continue
        used_rows[row] = True
        used_cols[col] = True
        matches.append(SignatureMatch(row, col, value))
        matched_total += value
    union = len(query_series) + len(candidate_series) - len(matches)
    content = matched_total / union if union > 0 else 0.0

    query_descriptor = index.descriptor(query_id)
    candidate_descriptor = index.descriptor(candidate_id)
    shared_users = tuple(sorted(query_descriptor.users & candidate_descriptor.users))
    query_vector = index.social.vectorize_users(query_descriptor.users)
    candidate_vector = index.social_vector(candidate_id)
    social = approx_jaccard(query_vector, candidate_vector)
    shared_communities = tuple(
        int(c) for c in np.nonzero(np.minimum(query_vector, candidate_vector) > 0)[0]
    )

    content = min(content, 1.0)
    social = min(social, 1.0)
    return Explanation(
        query_id=query_id,
        candidate_id=candidate_id,
        omega=omega,
        content_score=content,
        social_score=social,
        fused_score=(1.0 - omega) * content + omega * social,
        matches=tuple(matches),
        shared_users=shared_users,
        shared_communities=shared_communities,
    )
