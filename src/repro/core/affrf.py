"""AFFRF baseline — multimodal fusion with relevance feedback [33].

Yang et al.'s online video recommendation (the paper's main published
competitor) fuses **textual**, **visual** and **aural** relevance with an
attention fusion function and refines the result with relevance feedback.
We reproduce its structure over the synthetic substrate's equivalents:

* *text* — Jaccard over title/tag token sets;
* *visual* — histogram intersection of global intensity histograms (the
  color-histogram stand-in; deliberately brittle under the brightness /
  contrast edits the near-duplicate transforms apply — that brittleness is
  the paper's stated reason AFFRF loses on user-edited data);
* *aural* — similarity of fixed-length frame-mean envelopes (our clips
  carry no audio track; the envelope is the closest global temporal
  profile, playing the same role in the fusion);
* *attention fusion* — per-query adaptive weights proportional to each
  modality's discrimination power (spread between its best and median
  candidate scores), following the attention-fusion idea of [33];
* *relevance feedback* — one pseudo-feedback round: the initial top
  results act as positives and candidate scores are interpolated with
  their average similarity to those positives.

No social information is used anywhere — by construction, matching [33].
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import CommunityIndex, GlobalFeatures

__all__ = ["AffrfRecommender"]


def _text_relevance(first: GlobalFeatures, second: GlobalFeatures) -> float:
    union = first.tokens | second.tokens
    if not union:
        return 0.0
    return len(first.tokens & second.tokens) / len(union)


def _visual_relevance(first: GlobalFeatures, second: GlobalFeatures) -> float:
    # Histogram intersection: 1 for identical distributions.
    return float(np.minimum(first.histogram, second.histogram).sum())


def _aural_relevance(first: GlobalFeatures, second: GlobalFeatures) -> float:
    gap = float(np.mean(np.abs(first.envelope - second.envelope)))
    return 1.0 / (1.0 + gap / 16.0)


_MODALITIES = (_text_relevance, _visual_relevance, _aural_relevance)


class AffrfRecommender:
    """The AFFRF multimodal baseline over a :class:`CommunityIndex`.

    Parameters
    ----------
    index:
        Must have been built with ``build_global_features=True``.
    feedback_depth:
        Number of initial top results used as pseudo-positives.
    feedback_weight:
        Interpolation weight of the feedback term.
    """

    name = "AFFRF"

    def __init__(
        self,
        index: CommunityIndex,
        feedback_depth: int = 5,
        feedback_weight: float = 0.4,
    ) -> None:
        if not index.features:
            raise ValueError("AFFRF needs global features; rebuild the index with build_global_features=True")
        if feedback_depth < 1:
            raise ValueError("feedback_depth must be >= 1")
        if not 0.0 <= feedback_weight <= 1.0:
            raise ValueError("feedback_weight must be in [0, 1]")
        self.index = index
        self.feedback_depth = feedback_depth
        self.feedback_weight = feedback_weight

    def _modality_scores(self, query_id: str, candidates: list[str]) -> np.ndarray:
        query = self.index.features[query_id]
        scores = np.empty((len(_MODALITIES), len(candidates)), dtype=np.float64)
        for row, relevance in enumerate(_MODALITIES):
            for col, candidate_id in enumerate(candidates):
                scores[row, col] = relevance(query, self.index.features[candidate_id])
        return scores

    @staticmethod
    def _attention_weights(scores: np.ndarray) -> np.ndarray:
        """Per-query modality weights from discrimination power.

        A modality that separates its best candidates from its median one
        carries signal for this query; a flat modality does not.  Weights
        are the normalised (best − median) spreads.
        """
        best = scores.max(axis=1)
        median = np.median(scores, axis=1)
        spread = np.maximum(best - median, 1e-6)
        return spread / spread.sum()

    def recommend(self, query_id: str, top_k: int = 10) -> list[str]:
        """Attention-fused multimodal ranking with one feedback round."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        candidates = [vid for vid in sorted(self.index.features) if vid != query_id]
        if not candidates:
            return []
        scores = self._modality_scores(query_id, candidates)
        weights = self._attention_weights(scores)
        fused = weights @ scores

        # Pseudo relevance feedback: re-score against the initial leaders.
        leaders = np.argsort(-fused)[: self.feedback_depth]
        feedback = np.zeros_like(fused)
        for leader in leaders:
            leader_scores = self._modality_scores(candidates[int(leader)], candidates)
            feedback += weights @ leader_scores
        feedback /= len(leaders)
        final = (1.0 - self.feedback_weight) * fused + self.feedback_weight * feedback

        order = sorted(range(len(candidates)), key=lambda i: (-final[i], candidates[i]))
        return [candidates[i] for i in order[:top_k]]
