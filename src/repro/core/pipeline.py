"""End-to-end index construction: the :class:`CommunityIndex`.

One pass over the community materialises each clip, extracts its cuboid
signature series (plus the global features the AFFRF baseline needs), and
drops the frames again; the social side builds the UIG, the sub-community
partition, the chained hash table, the SAR vectors, and the inverted file
(via :class:`repro.social.updates.DynamicSocialIndex`); the content side
builds the LSB index.  Everything the recommenders and the KNN search need
lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.community.models import CommunityDataset
from repro.core.config import RecommenderConfig
from repro.emd.embedding import EmdEmbedding
from repro.index.lsb import LsbIndex
from repro.measures.content import SignatureBank
from repro.signatures.series import SignatureSeries, extract_signature_series
from repro.social.sar import SarVectorizer, SortedUserDictionary
from repro.social.subcommunity import Partition
from repro.social.updates import DynamicSocialIndex

__all__ = ["GlobalFeatures", "CommunityIndex"]


@dataclass(frozen=True)
class GlobalFeatures:
    """Whole-clip global features consumed by the AFFRF baseline.

    Attributes
    ----------
    histogram:
        Normalised global intensity histogram (the stand-in for the color
        histogram of [33]; brittle under photometric edits by design).
    envelope:
        Fixed-length per-frame mean-intensity envelope (the aural-track
        stand-in; our clips carry no audio, and the envelope plays the
        same role: a cheap global temporal profile).
    tokens:
        Title + tag token set (the text modality).
    """

    histogram: np.ndarray
    envelope: np.ndarray
    tokens: frozenset[str]


def _global_features(clip, histogram_bins: int = 16, envelope_length: int = 24) -> GlobalFeatures:
    histogram, _ = np.histogram(clip.frames, bins=histogram_bins, range=(0.0, 255.0))
    histogram = histogram.astype(np.float64)
    histogram /= max(histogram.sum(), 1.0)
    means = clip.frames.mean(axis=(1, 2))
    positions = np.linspace(0, len(means) - 1, envelope_length)
    envelope = np.interp(positions, np.arange(len(means)), means)
    tokens = frozenset(clip.title.split()) | frozenset(clip.tags)
    return GlobalFeatures(histogram=histogram, envelope=envelope, tokens=tokens)


class CommunityIndex:
    """All per-video features and indexes for one community snapshot.

    Attributes
    ----------
    dataset:
        The underlying community.
    config:
        The recommender configuration used for extraction.
    series:
        ``video_id -> SignatureSeries`` (the content features).
    features:
        ``video_id -> GlobalFeatures`` (AFFRF's modalities).
    social:
        The dynamic social index (descriptors, partition, hash table,
        SAR vectors, inverted file) — mutable under updates.
    sorted_dictionary / sar / sar_h:
        The plain-SAR sorted user dictionary and the two SAR vectorizer
        flavours (sorted-dictionary vs chained-hash backend).
    lsb:
        The LSB content index over every signature.
    """

    def __init__(
        self,
        dataset: CommunityDataset,
        config: RecommenderConfig,
        up_to_month: int = 11,
        build_lsb: bool = True,
        build_global_features: bool = True,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.series: dict[str, SignatureSeries] = {}
        self.features: dict[str, GlobalFeatures] = {}

        embedding = EmdEmbedding(
            lo=config.embedding_range[0],
            hi=config.embedding_range[1],
            resolution=config.embedding_resolution,
        )
        self.lsb: LsbIndex | None = (
            LsbIndex(
                embedding,
                num_projections=config.lsh_projections,
                bits_per_dim=config.lsh_bits,
                bucket_width=config.lsh_width,
                num_trees=config.lsh_trees,
            )
            if build_lsb
            else None
        )

        for video_id in sorted(dataset.records):
            clip = dataset.clip(video_id)
            series = extract_signature_series(
                clip,
                grid=config.grid,
                merge_threshold=config.merge_threshold,
                q=config.q,
                keyframes_per_segment=config.keyframes_per_segment,
            )
            self.series[video_id] = series
            if build_global_features:
                self.features[video_id] = _global_features(clip)
            if self.lsb is not None:
                for position, signature in enumerate(series):
                    self.lsb.insert(video_id, position, signature)
            del clip  # frames are re-derivable; keep memory flat

        descriptors = dataset.descriptors(up_to_month=up_to_month)
        self.social = DynamicSocialIndex.build(
            descriptors.values(), config.k, uig_pair_cap=config.uig_pair_cap
        )
        self.rebuild_sorted_dictionary()

    # ------------------------------------------------------------------
    # SAR dictionaries
    # ------------------------------------------------------------------
    def rebuild_sorted_dictionary(self) -> None:
        """(Re)derive the plain-SAR sorted dictionary from the live state.

        The sorted dictionary is a static snapshot — after social updates
        it must be rebuilt, whereas the chained hash table inside
        ``self.social`` is maintained incrementally (that asymmetry is one
        of SAR-H's selling points).
        """
        membership = {
            user: cno
            for cno, members in self.social.communities.items()
            for user in members
        }
        self.sorted_dictionary = SortedUserDictionary(membership)
        self.sar = SarVectorizer(self.sorted_dictionary, self.social.k)
        self.sar_h = SarVectorizer(self.social.hash_table, self.social.k)
        # Rebuilding invalidates the materialized batch-engine matrices:
        # descriptors or sub-community labels may have changed.
        self._sar_matrices: dict[str, tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Batch-engine materializations
    # ------------------------------------------------------------------
    def sar_matrix(self, backend: str) -> np.ndarray:
        """The ``(N, k)`` SAR histogram matrix of every video, per backend.

        Rows follow :attr:`video_ids` order; *backend* is ``"sar"``
        (sorted-dictionary vectorizer) or ``"sar-h"`` (chained-hash
        vectorizer).  Materialized once per backend and cached until
        :meth:`rebuild_sorted_dictionary` — or a social maintenance batch
        bumping ``self.social.revision`` — invalidates it, so batch-engine
        queries never pay the per-candidate re-vectorization the scalar
        path (and the Figure 12(a) bench) performs.  The revision check
        matters for ``sar-h``: its hash table is maintained incrementally,
        so after ``social.maintain()`` the scalar path already sees fresh
        labels even before the sorted dictionary is rebuilt.
        """
        if backend not in ("sar", "sar-h"):
            raise ValueError(f"unknown SAR backend {backend!r}")
        revision = self.social.revision
        cached = self._sar_matrices.get(backend)
        if cached is None or cached[0] != revision:
            vectorizer = self.sar if backend == "sar" else self.sar_h
            matrix = np.stack(
                [
                    vectorizer.vectorize(self.descriptor(video_id))
                    for video_id in self.video_ids
                ]
            )
            self._sar_matrices[backend] = cached = (revision, matrix)
        return cached[1]

    def signature_bank(self) -> SignatureBank:
        """The stacked signature matrices of the whole community.

        Built once on first use (series are immutable after construction)
        and shared by every batch-engine recommender over this index.
        """
        bank = getattr(self, "_signature_bank", None)
        if bank is None:
            bank = SignatureBank(self.series)
            self._signature_bank = bank
        return bank

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def video_ids(self) -> list[str]:
        """All indexed video ids, sorted (cached; series are immutable)."""
        cached = getattr(self, "_video_ids", None)
        if cached is None:
            cached = sorted(self.series)
            self._video_ids = cached
        return cached

    def descriptor(self, video_id: str):
        """The live social descriptor of *video_id*."""
        return self.social.descriptors[video_id]

    def social_vector(self, video_id: str) -> np.ndarray:
        """The maintained SAR vector of *video_id*."""
        return self.social.vectors[video_id]
