"""The community index facade: bulk build and live maintenance.

:class:`CommunityIndex` fronts two layered mutable stores
(:class:`~repro.core.stores.ContentStore` and
:class:`~repro.core.stores.SocialStore`): the content side extracts each
clip's cuboid signature series (plus the global features the AFFRF
baseline needs) and feeds the LSB forest and the signature bank; the
social side wraps the dynamic social index (UIG, sub-community partition,
chained hash table, SAR vectors, inverted file) and the SAR dictionaries.
The constructor is a thin bulk-load loop over the same per-video ingest
path :class:`LiveCommunityIndex` uses online, so batch build and
streaming maintenance share one code path.

Every derived cache (signature bank, materialised SAR matrices, SAR
dictionaries, KNN component memos) keys on the stores' monotonic revision
counters, so mutation can never serve stale results.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.community.models import (
    DEFAULT_UP_TO_MONTH,
    Comment,
    CommunityDataset,
    VideoRecord,
)
from repro.core.config import RecommenderConfig
from repro.core.stores import ContentStore, GlobalFeatures, SocialStore, global_features
from repro.measures.content import SignatureBank
from repro.obs import get_metrics
from repro.social.descriptor import SocialDescriptor
from repro.social.updates import MaintenanceStats
from repro.video.clip import VideoClip

__all__ = ["GlobalFeatures", "CommunityIndex", "LiveCommunityIndex"]


class CommunityIndex:
    """All per-video features and indexes for one community snapshot.

    Attributes
    ----------
    dataset:
        The underlying community.
    config:
        The recommender configuration used for extraction.
    content:
        The :class:`ContentStore` (series, global features, LSB forest,
        signature bank) — mutable, revision-counted.
    social_store:
        The :class:`SocialStore` (dynamic social index, SAR dictionaries,
        comment watermark) — mutable, revision-counted.

    The classic accessors (``series``, ``features``, ``lsb``, ``social``,
    ``sorted_dictionary``, ``sar``, ``sar_h``) are live views over the
    stores, so existing callers keep working unchanged.
    """

    def __init__(
        self,
        dataset: CommunityDataset,
        config: RecommenderConfig,
        up_to_month: int = DEFAULT_UP_TO_MONTH,
        build_lsb: bool = True,
        build_global_features: bool = True,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.content = ContentStore(
            config, build_lsb=build_lsb, build_global_features=build_global_features
        )
        # Bulk load IS the ingest path, one video at a time; frames are
        # re-derivable, so each clip is dropped right after extraction.
        for video_id in sorted(dataset.records):
            self.content.ingest_clip(dataset.clip(video_id))
        self.social_store = SocialStore(
            dataset.descriptors(up_to_month=up_to_month),
            k=config.k,
            uig_pair_cap=config.uig_pair_cap,
            up_to_month=up_to_month,
            sketch_bits=config.sketch_bits,
            sketch_seed=config.sketch_seed,
        )
        self._sar_matrices: dict[str, tuple[tuple[int, int], np.ndarray]] = {}
        self._sketch_matrix: tuple[tuple[int, int], tuple[np.ndarray, np.ndarray]] | None = None
        self._wal = None
        #: Sequence number of the last WAL record reflected in this state
        #: (0 = none).  Persisted by snapshots so recovery knows which log
        #: prefix a checkpoint already covers.
        self.wal_seq = 0

    @classmethod
    def _from_parts(
        cls,
        dataset: CommunityDataset,
        config: RecommenderConfig,
        content: ContentStore,
        social_store: SocialStore,
    ) -> "CommunityIndex":
        """Assemble a facade over pre-built stores (snapshot loads)."""
        index = cls.__new__(cls)
        index.dataset = dataset
        index.config = config
        index.content = content
        index.social_store = social_store
        index._sar_matrices = {}
        index._sketch_matrix = None
        index._wal = None
        index.wal_seq = 0
        return index

    # ------------------------------------------------------------------
    # Revision protocol
    # ------------------------------------------------------------------
    @property
    def revisions(self) -> tuple[int, int]:
        """``(content revision, social revision)`` — the staleness key.

        Any cache derived from this index should record this pair and
        invalidate when it moves; both counters are monotonic.  The two
        counters live in different stores, so a naive pair read races
        with a concurrent mutation (content bumped, social not yet): the
        read loops until two consecutive reads agree, which — because
        both counters are monotonic — yields a pair that was actually
        current at some instant between the reads.
        """
        pair = (self.content.revision, self.social_store.revision)
        while True:
            check = (self.content.revision, self.social_store.revision)
            if check == pair:
                return pair
            pair = check

    # ------------------------------------------------------------------
    # Store views (back-compat accessors)
    # ------------------------------------------------------------------
    @property
    def series(self):
        """``video_id -> SignatureSeries`` (the live content features)."""
        return self.content.series

    @property
    def features(self):
        """``video_id -> GlobalFeatures`` (AFFRF's modalities)."""
        return self.content.features

    @property
    def lsb(self):
        """The LSB content index (``None`` when built without it)."""
        return self.content.lsb

    @property
    def social(self):
        """The dynamic social index — mutable under updates."""
        return self.social_store.index

    @property
    def up_to_month(self) -> int:
        """The social comment watermark the index was built through."""
        return self.social_store.up_to_month

    @property
    def sorted_dictionary(self):
        """The plain-SAR sorted user dictionary (static snapshot)."""
        return self.social_store.dictionaries()[0]

    @property
    def sar(self):
        """The sorted-dictionary SAR vectorizer."""
        return self.social_store.dictionaries()[1]

    @property
    def sar_h(self):
        """The chained-hash SAR vectorizer (reads the live hash table)."""
        return self.social_store.dictionaries()[2]

    # ------------------------------------------------------------------
    # SAR dictionaries
    # ------------------------------------------------------------------
    def rebuild_sorted_dictionary(self) -> None:
        """(Re)derive the plain-SAR sorted dictionary from the live state.

        The sorted dictionary is a static snapshot — after incremental
        social maintenance it must be refreshed explicitly, whereas the
        chained hash table inside ``self.social`` is maintained in place
        (that asymmetry is one of SAR-H's selling points).  Structural
        changes (ingest/retire/exact comment application) refresh it
        automatically through the store's invalidation.
        """
        self.social_store.refresh_dictionaries()
        # Refreshing invalidates the materialized batch-engine matrices:
        # descriptors or sub-community labels may have changed.
        self._sar_matrices.clear()

    # ------------------------------------------------------------------
    # Batch-engine materializations
    # ------------------------------------------------------------------
    def sar_matrix(self, backend: str) -> np.ndarray:
        """The ``(N, k)`` SAR histogram matrix of every video, per backend.

        Rows follow :attr:`video_ids` order; *backend* is ``"sar"``
        (sorted-dictionary vectorizer) or ``"sar-h"`` (chained-hash
        vectorizer).  Materialized once per backend and cached until either
        store revision moves — a social maintenance batch, a video ingest
        or retire, or a dictionary rebuild — so batch-engine queries never
        pay the per-candidate re-vectorization the scalar path (and the
        Figure 12(a) bench) performs.  The revision check matters for
        ``sar-h``: its hash table is maintained incrementally, so after
        ``social.maintain()`` the scalar path already sees fresh labels
        even before the sorted dictionary is rebuilt.
        """
        if backend not in ("sar", "sar-h"):
            raise ValueError(f"unknown SAR backend {backend!r}")
        key = self.revisions
        cached = self._sar_matrices.get(backend)
        if cached is None or cached[0] != key:
            vectorizer = self.sar if backend == "sar" else self.sar_h
            matrix = np.stack(
                [
                    vectorizer.vectorize(self.descriptor(video_id))
                    for video_id in self.video_ids
                ]
            )
            self._sar_matrices[backend] = cached = (key, matrix)
        return cached[1]

    def sketch_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """``((N, words) uint64 sketches, (N,) int64 sizes)`` of every video.

        Rows follow :attr:`video_ids` order, stacked from the live odd
        sketch bank (``social_mode="sketch"``) and cached until either
        store revision moves — the same staleness protocol as
        :meth:`sar_matrix`.  The stacked copy is immune to later in-place
        bank toggles, so cached matrices are stable snapshots.
        """
        key = self.revisions
        cached = self._sketch_matrix
        if cached is None or cached[0] != key:
            bank = self.social_store.sketches()
            self._sketch_matrix = cached = (key, bank.matrix(self.video_ids))
        return cached[1]

    def sketcher(self):
        """The live :class:`~repro.social.sketch.SketchBank` (query-time)."""
        return self.social_store.sketches()

    def signature_bank(self) -> SignatureBank:
        """The stacked signature matrices of the whole live community.

        Maintained in lockstep with content mutations (append on ingest,
        tombstone on retire), so — unlike the old build-once cache — it can
        never serve a stale bank.
        """
        return self.content.signature_bank()

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def video_ids(self) -> list[str]:
        """All indexed video ids, sorted (cached per content revision)."""
        return self.content.video_ids

    def descriptor(self, video_id: str):
        """The live social descriptor of *video_id*."""
        return self.social.descriptors[video_id]

    def social_vector(self, video_id: str) -> np.ndarray:
        """The maintained SAR vector of *video_id*."""
        return self.social.vectors[video_id]


def _private_dataset(dataset: CommunityDataset) -> CommunityDataset:
    """A shallow copy whose containers the live index can mutate freely."""
    return CommunityDataset(
        records=dict(dataset.records),
        users=dict(dataset.users),
        comments=list(dataset.comments),
        topics=dataset.topics,
        clip_params=dict(dataset.clip_params),
    )


class LiveCommunityIndex(CommunityIndex):
    """A community index that stays correct while the catalogue churns.

    Adds the online maintenance API on top of the shared stores:

    * :meth:`ingest_video` — extract and index a new clip or record;
    * :meth:`retire_video` — drop a video from every layer (LSB
      tombstones, bank tombstones, social re-derivation);
    * :meth:`apply_comments` — fold a comment batch into the social state,
      either exactly (deterministic re-derivation, bit-identical to a cold
      rebuild) or incrementally (the paper's Figure-5 maintenance).

    The constructor takes a private copy of the dataset's containers, so
    ingest/retire never mutate the caller's dataset.  After any sequence
    of mutations, recommendations match a cold
    :class:`CommunityIndex` built over the final community.
    """

    def __init__(
        self,
        dataset: CommunityDataset,
        config: RecommenderConfig,
        up_to_month: int = DEFAULT_UP_TO_MONTH,
        build_lsb: bool = True,
        build_global_features: bool = True,
    ) -> None:
        super().__init__(
            _private_dataset(dataset),
            config,
            up_to_month=up_to_month,
            build_lsb=build_lsb,
            build_global_features=build_global_features,
        )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def attach_wal(self, wal) -> None:
        """Log every mutation to *wal* before applying it.

        *wal* is any object with the ``log_ingest`` / ``log_retire`` /
        ``log_comments`` / ``log_watermark`` / ``log_comment_history``
        protocol of :class:`repro.io.wal.WriteAheadLog`, each returning
        the record's sequence number.  Appending **before** mutating is
        what makes recovery exact: a mutation is either durable in the
        log or was never acknowledged.
        """
        self._wal = wal

    def detach_wal(self) -> None:
        """Stop logging mutations (the log itself is left untouched)."""
        self._wal = None

    # ------------------------------------------------------------------
    # Online maintenance
    # ------------------------------------------------------------------
    def ingest_video(
        self,
        clip_or_record: VideoClip | VideoRecord,
        owner: str | None = None,
        users: Iterable[str] = (),
    ) -> str:
        """Index a new video online; returns its id.

        Accepts either a :class:`VideoRecord` (re-derivable from the
        dataset's generation parameters — the bulk-load currency) or a
        materialised :class:`VideoClip` (e.g. a fresh upload).  Clip
        ingests get a bookkeeping record whose frames are *not*
        re-derivable; their extracted features are what snapshots carry.

        The initial social descriptor is the owner, plus any *users*
        passed in, plus the dataset's comments for this video up to the
        watermark — exactly what a cold build of the enlarged community
        would derive.

        With a WAL attached, the extracted series, features and descriptor
        members are logged before any store mutates — replaying the record
        reproduces this ingest bit for bit even for clips whose frames are
        not re-derivable.
        """
        metrics = get_metrics()
        with metrics.time("repro_ingest_seconds"):
            video_id = self._ingest_video(clip_or_record, owner, users)
        metrics.inc("repro_ingest_total")
        return video_id

    def _ingest_video(
        self,
        clip_or_record: VideoClip | VideoRecord,
        owner: str | None,
        users: Iterable[str],
    ) -> str:
        if isinstance(clip_or_record, VideoRecord):
            record = clip_or_record
            if record.video_id in self.content.series:
                raise ValueError(f"video {record.video_id!r} is already indexed")
            self.dataset.records[record.video_id] = record
            clip = self.dataset.clip(record.video_id)
        else:
            clip = clip_or_record
            if clip.video_id in self.content.series:
                raise ValueError(f"video {clip.video_id!r} is already indexed")
            record = VideoRecord(
                video_id=clip.video_id,
                topic=clip.topic,
                seed=0,
                owner=owner or f"owner_{clip.video_id}",
                title=clip.title,
                tags=tuple(clip.tags),
            )
            self.dataset.records[record.video_id] = record
        series = self.content.extract(clip)
        features = (
            global_features(clip) if self.content.build_global_features else None
        )
        members = {record.owner, *users}
        members.update(
            comment.user_id
            for comment in self.dataset.comments
            if comment.video_id == record.video_id
            and comment.month <= self.up_to_month
        )
        if self._wal is not None:
            self.wal_seq = self._wal.log_ingest(record, series, features, members)
        self.content.add_series(record.video_id, series, features)
        self.social_store.add_video(
            SocialDescriptor.from_users(record.video_id, members)
        )
        return record.video_id

    def retire_video(self, video_id: str) -> None:
        """Remove *video_id* from every layer of the index (WAL-logged)."""
        if video_id not in self.content.series:
            raise KeyError(f"unknown video {video_id!r}")
        metrics = get_metrics()
        with metrics.time("repro_retire_seconds"):
            if self._wal is not None:
                self.wal_seq = self._wal.log_retire(video_id)
            self.dataset.records.pop(video_id, None)
            self.content.retire(video_id)
            self.social_store.retire_video(video_id)
        metrics.inc("repro_retire_total")

    def apply_comments(
        self,
        comments: Iterable[tuple[str, str]],
        incremental: bool = False,
    ) -> MaintenanceStats | None:
        """Fold ``(user_id, video_id)`` comment pairs into the index.

        The default exact mode updates descriptors and re-derives the
        partition deterministically (bit-identical to a cold rebuild of
        the final community); ``incremental=True`` streams the batch
        through the wrapped index's Figure-5 maintenance and returns its
        cost counters.  The dataset's historical comment log is left
        untouched — live social state is tracked by the store and carried
        by snapshots.  The batch is WAL-logged before it applies.
        """
        pairs = list(comments)
        for _, video_id in pairs:
            self._validate_comment_target(video_id)
        metrics = get_metrics()
        with metrics.time("repro_comments_seconds"):
            if self._wal is not None:
                self.wal_seq = self._wal.log_comments(pairs, incremental)
            stats = self.social_store.apply_comments(pairs, incremental=incremental)
        metrics.inc("repro_comment_batches_total")
        metrics.inc("repro_comment_pairs_total", len(pairs))
        return stats

    def remove_comments(self, comments: Iterable[tuple[str, str]]) -> int:
        """Un-apply ``(user_id, video_id)`` memberships (spam revocation).

        The durable inverse of exact-mode :meth:`apply_comments`: the
        batch is WAL-logged before the descriptors shrink, so recovery
        replays revocations exactly like applications.  Pairs targeting
        unknown videos are skipped rather than rejected — a spammer's
        target may have been retired between confirmation and revocation,
        and the membership is gone either way.  Returns the number of
        memberships actually removed.
        """
        pairs = list(comments)
        metrics = get_metrics()
        with metrics.time("repro_comments_seconds"):
            if self._wal is not None:
                self.wal_seq = self._wal.log_comment_removal(pairs)
            removed = self.social_store.remove_comments(pairs)
        metrics.inc("repro_comment_removal_batches_total")
        metrics.inc("repro_comment_removed_pairs_total", removed)
        return removed

    def _validate_comment_target(self, video_id: str) -> None:
        """Reject comments for videos this index knows nothing about.

        The base index owns all content, so "indexed" means "in the
        content store"; a shard overrides this to validate against its
        replicated social descriptors (comments apply to every shard,
        including non-owners of the video).
        """
        if video_id not in self.content.series:
            raise KeyError(f"unknown video {video_id!r}")

    def advance_watermark(self, month: int) -> int:
        """Advance the social comment watermark (WAL-logged, monotonic)."""
        month = max(self.up_to_month, int(month))
        if self._wal is not None:
            self.wal_seq = self._wal.log_watermark(month)
        self.social_store.up_to_month = month
        return month

    def add_comment_history(self, comments: Iterable[Comment]) -> int:
        """Extend the dataset's historical comment log (WAL-logged).

        Used when ingesting videos from another dataset: carrying their
        comment history along keeps later ``apply_comments`` /
        ``advance_watermark`` calls able to see it, and logging it keeps
        recovery able to do the same.
        """
        batch = list(comments)
        if self._wal is not None:
            self.wal_seq = self._wal.log_comment_history(batch)
        self.dataset.comments.extend(batch)
        return len(batch)
