"""The paper's contribution: fusion, recommenders, index-backed KNN search."""

from repro.core.affrf import AffrfRecommender
from repro.core.baselines import PopularityRecommender, RandomRecommender
from repro.core.config import RecommenderConfig
from repro.core.explain import Explanation, SignatureMatch, explain_recommendation
from repro.core.fusion import fuse_average, fuse_fj, fuse_max
from repro.core.knn import KnnResult, KTopScoreVideoSearch
from repro.core.pipeline import CommunityIndex, GlobalFeatures, LiveCommunityIndex
from repro.core.recommender import (
    FusionRecommender,
    Recommendations,
    content_recommender,
    csf_recommender,
    csf_sar_h_recommender,
    csf_sar_recommender,
    social_recommender,
)
from repro.core.stores import ContentStore, SocialStore

__all__ = [
    "AffrfRecommender",
    "CommunityIndex",
    "ContentStore",
    "Explanation",
    "PopularityRecommender",
    "RandomRecommender",
    "SignatureMatch",
    "explain_recommendation",
    "FusionRecommender",
    "GlobalFeatures",
    "KTopScoreVideoSearch",
    "KnnResult",
    "LiveCommunityIndex",
    "Recommendations",
    "RecommenderConfig",
    "SocialStore",
    "content_recommender",
    "csf_recommender",
    "csf_sar_h_recommender",
    "csf_sar_recommender",
    "fuse_average",
    "fuse_fj",
    "fuse_max",
    "social_recommender",
]
