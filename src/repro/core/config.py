"""Configuration of the content-social recommender.

Defaults mirror the paper's tuned values: fusion weight ``omega = 0.7``
(its Figure 8) and ``k = 60`` sub-communities (its Figure 9).  The content
pipeline defaults (8x8 block grid, bigram signatures) follow Section 4.1's
simplifications.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecommenderConfig"]


@dataclass(frozen=True)
class RecommenderConfig:
    """All knobs of the recommendation system in one immutable bundle.

    Attributes
    ----------
    omega:
        Weight of the social relevance in the FJ fusion (Eq. 9).
    k:
        Number of sub-communities for SAR.
    grid:
        Block lattice resolution per keyframe.
    merge_threshold:
        Intensity tolerance of the spatial block merge.
    q:
        q-gram length (the paper uses bigrams).
    keyframes_per_segment:
        Keyframes sampled per shot segment.
    match_threshold:
        Minimum SimC for a signature pair to count as matched in κJ.
    embedding_range:
        ``(lo, hi)`` value range of the EMD -> L1 embedding grid.
    embedding_resolution:
        Bins of the embedding grid.
    lsh_projections, lsh_bits, lsh_width, lsh_trees:
        LSB index parameters (see :class:`repro.index.lsb.LsbIndex`).
    knn_content_budget:
        Candidate entries pulled from the LSB index per query signature.
    knn_social_budget:
        Social candidates pulled from the inverted file per query.
    uig_pair_cap:
        Optional cap on per-video UIG edge generation for very dense
        comment volumes (``None`` = exact, the paper's definition).
    sketch_bits:
        Width of the per-video odd sketches backing
        ``social_mode="sketch"`` (multiple of 64; see
        :mod:`repro.social.sketch`).
    sketch_seed:
        Hash seed of the sketch bit positions; part of the index
        identity — replicas and snapshots must agree on it.
    engine:
        Default scoring engine of :class:`repro.core.recommender.FusionRecommender`:
        ``"batch"`` (vectorized array kernels, the production path) or
        ``"scalar"`` (per-pair Python calls, kept for parity testing and
        the Figure-12 wall-clock benches).
    num_workers:
        Worker threads for the batch engine's chunked κJ fan-out over
        candidate blocks; 0 or 1 means single-threaded.
    max_social_staleness:
        Degraded-serving bound: when the social store reports more than
        this many skipped (lost) mutations, ``recommend`` serves
        content-only results flagged ``degraded`` instead of fusing stale
        social relevance.  ``None`` (default) never degrades on staleness.
    time_budget:
        Per-query wall-clock budget in seconds for ``recommend``; when the
        candidate scan exceeds it, the best-effort partial ranking is
        returned flagged ``partial``/``degraded``.  ``None`` = unlimited.
    scan_dtype:
        Arithmetic width of the batch engine's content kernel:
        ``"float32"`` (default) scores against the packed float32
        signature bank with the sorted-merge EMD kernel, ``"float64"``
        keeps the full-precision reference path (what parity tests pin
        against).  ``component_scores`` always reports float64.
    prune:
        Enable early-termination bounds in the batch full scan and the
        KNN refinement loop: candidate blocks whose fused-score upper
        bound cannot enter the current top-k are skipped.  Ranking is
        provably unchanged (DESIGN §12); disable only for A/B benches.
    knn_probes:
        LSB multi-probe width — how many of the ``lsh_trees`` hash
        tables each KNN candidate lookup probes.  ``None`` (default)
        probes all trees; smaller values shrink the candidate set before
        scoring at some recall cost (see the bench sweep).
    """

    omega: float = 0.7
    k: int = 60
    grid: int = 8
    merge_threshold: float = 6.0
    q: int = 2
    keyframes_per_segment: int = 3
    match_threshold: float = 0.2
    embedding_range: tuple[float, float] = (-64.0, 64.0)
    embedding_resolution: int = 64
    lsh_projections: int = 4
    lsh_bits: int = 8
    lsh_width: float = 2.0
    lsh_trees: int = 2
    knn_content_budget: int = 24
    knn_social_budget: int = 64
    uig_pair_cap: int | None = None
    sketch_bits: int = 512
    sketch_seed: int = 0
    engine: str = "batch"
    num_workers: int = 0
    max_social_staleness: int | None = None
    time_budget: float | None = None
    scan_dtype: str = "float32"
    prune: bool = True
    knn_probes: int | None = None

    def __post_init__(self) -> None:
        if self.max_social_staleness is not None and self.max_social_staleness < 0:
            raise ValueError(
                f"max_social_staleness must be >= 0, got {self.max_social_staleness}"
            )
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be > 0, got {self.time_budget}")
        if self.engine not in ("scalar", "batch"):
            raise ValueError(
                f"engine must be 'scalar' or 'batch', got {self.engine!r}"
            )
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if self.scan_dtype not in ("float32", "float64"):
            raise ValueError(
                f"scan_dtype must be 'float32' or 'float64', got {self.scan_dtype!r}"
            )
        if self.sketch_bits < 64 or self.sketch_bits % 64 != 0:
            raise ValueError(
                f"sketch_bits must be a positive multiple of 64, got {self.sketch_bits}"
            )
        if self.knn_probes is not None and self.knn_probes < 1:
            raise ValueError(f"knn_probes must be >= 1, got {self.knn_probes}")
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.grid < 1:
            raise ValueError(f"grid must be >= 1, got {self.grid}")
        if self.q < 2:
            raise ValueError(f"q must be >= 2, got {self.q}")
        lo, hi = self.embedding_range
        if not lo < hi:
            raise ValueError(f"empty embedding range {self.embedding_range}")

    def with_omega(self, omega: float) -> "RecommenderConfig":
        """Copy with a different fusion weight (for the ω sweep)."""
        from dataclasses import replace

        return replace(self, omega=omega)

    def with_k(self, k: int) -> "RecommenderConfig":
        """Copy with a different sub-community count (for the k sweep)."""
        from dataclasses import replace

        return replace(self, k=k)
