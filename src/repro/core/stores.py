"""Layered mutable stores behind the community index facade.

The original :class:`~repro.core.pipeline.CommunityIndex` froze the whole
content side (signature extraction, LSB inserts, the signature bank, the
materialised SAR matrices) at ``__init__`` while only the social side
streamed updates.  This module splits the state into two stores, each with
a **monotonic revision counter** that derived caches key on:

* :class:`ContentStore` — per-video signature series, global features, the
  LSB forest and the community :class:`~repro.measures.content.SignatureBank`.
  Videos are ingested (extracted + appended) and retired (tombstoned) one
  at a time; the bank and the LSB forest are maintained incrementally, so
  a bulk build is literally N ingests.
* :class:`SocialStore` — the live :class:`~repro.social.updates.DynamicSocialIndex`
  plus the SAR vectorizer triple (sorted dictionary, plain SAR, SAR-H) and
  the ``up_to_month`` comment watermark.  Comment batches stream through
  the wrapped index's Figure-5 maintenance; *structural* changes (videos
  entering or leaving the community, or exact-mode comment application)
  invalidate the wrapped index, which is then re-derived deterministically
  from the live descriptors — descriptor order is normalised so the result
  is bit-identical to a cold build of the same community.

The revision protocol is the contract every consumer relies on: any cache
derived from a store (signature bank, SAR matrices, KNN component memos,
SAR dictionaries) records the revision it was built at and rebuilds when
the store's revision moves.  A revision never decreases, and every
mutation — including maintenance batches applied directly to the wrapped
social index — moves it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.community.models import DEFAULT_UP_TO_MONTH
from repro.core.config import RecommenderConfig
from repro.emd.embedding import EmdEmbedding
from repro.errors import SocialStoreUnavailableError
from repro.index.lsb import LsbIndex
from repro.measures.content import SignatureBank
from repro.signatures.series import SignatureSeries, extract_signature_series
from repro.social.descriptor import SocialDescriptor
from repro.social.sar import SarVectorizer, SortedUserDictionary
from repro.social.sketch import DEFAULT_SKETCH_BITS, SketchBank
from repro.social.updates import DynamicSocialIndex, MaintenanceStats
from repro.video.clip import VideoClip

__all__ = ["GlobalFeatures", "ContentStore", "SocialStore", "global_features"]


@dataclass(frozen=True)
class GlobalFeatures:
    """Whole-clip global features consumed by the AFFRF baseline.

    Attributes
    ----------
    histogram:
        Normalised global intensity histogram (the stand-in for the color
        histogram of [33]; brittle under photometric edits by design).
    envelope:
        Fixed-length per-frame mean-intensity envelope (the aural-track
        stand-in; our clips carry no audio, and the envelope plays the
        same role: a cheap global temporal profile).
    tokens:
        Title + tag token set (the text modality).
    """

    histogram: np.ndarray
    envelope: np.ndarray
    tokens: frozenset[str]


def global_features(
    clip: VideoClip, histogram_bins: int = 16, envelope_length: int = 24
) -> GlobalFeatures:
    """Extract the AFFRF global features of one clip."""
    histogram, _ = np.histogram(clip.frames, bins=histogram_bins, range=(0.0, 255.0))
    histogram = histogram.astype(np.float64)
    histogram /= max(histogram.sum(), 1.0)
    means = clip.frames.mean(axis=(1, 2))
    positions = np.linspace(0, len(means) - 1, envelope_length)
    envelope = np.interp(positions, np.arange(len(means)), means)
    tokens = frozenset(clip.title.split()) | frozenset(clip.tags)
    return GlobalFeatures(histogram=histogram, envelope=envelope, tokens=tokens)


class ContentStore:
    """Mutable content-side state: series, features, LSB forest, bank.

    Parameters
    ----------
    config:
        Extraction and LSB parameters.
    build_lsb:
        Whether to maintain the LSB forest (KNN search needs it).
    build_global_features:
        Whether to extract AFFRF's global features on ingest.
    """

    def __init__(
        self,
        config: RecommenderConfig,
        build_lsb: bool = True,
        build_global_features: bool = True,
    ) -> None:
        self.config = config
        self.series: dict[str, SignatureSeries] = {}
        self.features: dict[str, GlobalFeatures] = {}
        self.build_global_features = build_global_features
        self.lsb: LsbIndex | None = None
        if build_lsb:
            embedding = EmdEmbedding(
                lo=config.embedding_range[0],
                hi=config.embedding_range[1],
                resolution=config.embedding_resolution,
            )
            self.lsb = LsbIndex(
                embedding,
                num_projections=config.lsh_projections,
                bits_per_dim=config.lsh_bits,
                bucket_width=config.lsh_width,
                num_trees=config.lsh_trees,
            )
        #: Monotonic mutation counter; every ingest/retire bumps it.
        self.revision: int = 0
        self._bank: SignatureBank | None = None
        self._video_ids: tuple[int, list[str]] | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def extract(self, clip: VideoClip) -> SignatureSeries:
        """Extract a clip's cuboid signature series (no state change)."""
        return extract_signature_series(
            clip,
            grid=self.config.grid,
            merge_threshold=self.config.merge_threshold,
            q=self.config.q,
            keyframes_per_segment=self.config.keyframes_per_segment,
        )

    def ingest_clip(self, clip: VideoClip) -> SignatureSeries:
        """Extract *clip* and add it to every content structure."""
        series = self.extract(clip)
        features = global_features(clip) if self.build_global_features else None
        self.add_series(clip.video_id, series, features)
        return series

    def add_series(
        self,
        video_id: str,
        series: SignatureSeries,
        features: GlobalFeatures | None = None,
    ) -> None:
        """Register pre-extracted state (snapshot loads, bulk injection)."""
        if video_id in self.series:
            raise ValueError(f"video {video_id!r} is already indexed")
        self.series[video_id] = series
        if features is not None:
            self.features[video_id] = features
        if self.lsb is not None:
            for position, signature in enumerate(series):
                self.lsb.insert(video_id, position, signature)
        if self._bank is not None:
            self._bank.append(video_id, series)
        self.revision += 1

    def retire(self, video_id: str) -> None:
        """Drop *video_id* from every content structure (LSB tombstones)."""
        if video_id not in self.series:
            raise KeyError(f"unknown video {video_id!r}")
        del self.series[video_id]
        self.features.pop(video_id, None)
        if self.lsb is not None:
            self.lsb.remove(video_id)
        if self._bank is not None:
            self._bank.remove(video_id)
        self.revision += 1

    def restore_revision(self, revision: int) -> None:
        """Fast-forward the revision clock to at least *revision*.

        Used by snapshot loads so consumers spanning a save/load cycle in
        one process never see the monotonic counter go backwards.
        """
        self.revision = max(self.revision, int(revision))

    # ------------------------------------------------------------------
    # Derived views (revision-keyed)
    # ------------------------------------------------------------------
    @property
    def video_ids(self) -> list[str]:
        """All live video ids, sorted (cached per revision)."""
        cached = self._video_ids
        if cached is None or cached[0] != self.revision:
            self._video_ids = cached = (self.revision, sorted(self.series))
        return cached[1]

    def signature_bank(self) -> SignatureBank:
        """The live community signature bank.

        Built lazily on first use, then maintained in lockstep with
        :meth:`add_series` / :meth:`retire` — it can never be stale.
        """
        if self._bank is None:
            if not self.series:
                raise ValueError("cannot build a SignatureBank from no series")
            self._bank = SignatureBank(self.series)
        return self._bank


class SocialStore:
    """Mutable social-side state wrapping :class:`DynamicSocialIndex`.

    Comment batches stream through the wrapped index's incremental
    maintenance (the paper's Figure 5).  Structural changes — videos
    entering or leaving, or exact-mode comment application — mark the
    wrapped index dirty; it is then re-derived deterministically from the
    live descriptors on next access, with descriptors sorted by video id
    so the rebuild is bit-identical to a cold build of the same community.

    The :attr:`revision` counter is monotonic across both kinds of change:
    it is the structural base plus the wrapped index's own maintenance
    revision, and the base absorbs the inner counter whenever the index is
    invalidated.
    """

    def __init__(
        self,
        descriptors: dict[str, SocialDescriptor],
        k: int,
        uig_pair_cap: int | None = None,
        up_to_month: int = DEFAULT_UP_TO_MONTH,
        sketch_bits: int = DEFAULT_SKETCH_BITS,
        sketch_seed: int = 0,
    ) -> None:
        self._descriptors: dict[str, SocialDescriptor] = dict(descriptors)
        self._k = k
        self._uig_pair_cap = uig_pair_cap
        self._sketch_bits = sketch_bits
        self._sketch_seed = sketch_seed
        #: Lazily-built per-video odd sketches (``social_mode="sketch"``);
        #: once built, maintained in lockstep with every mutation.  The
        #: bank is a pure function of the descriptor user sets, so it is
        #: never persisted — snapshots re-derive it bit-identically.
        self._sketches: SketchBank | None = None
        #: Last comment month folded into the descriptors (persisted by
        #: snapshots; the paper's source year ends at month 11).
        self.up_to_month = up_to_month
        self._index: DynamicSocialIndex | None = None
        self._base_revision = 0
        self._dicts: tuple[SortedUserDictionary, SarVectorizer, SarVectorizer] | None = None
        #: Guards the lazy re-derivation of the wrapped index and the SAR
        #: dictionaries.  Mutations are externally serialized (the serving
        #: gateway's writer lock), but *reads* may race: two reader
        #: threads hitting a dirty store at once must not both rebuild —
        #: one wins, the other observes the finished structures, and
        #: neither ever sees a half-derived index or torn SAR rows.
        self._derive_lock = threading.RLock()
        self._available = True
        self._unavailable_reason = ""
        #: Mutations known to be lost (recovery gaps, failed updates);
        #: recommenders compare this against their staleness bound.
        self.skipped_mutations = 0

    # ------------------------------------------------------------------
    # Revision protocol
    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Monotonic revision covering structural and maintenance changes."""
        inner = 0 if self._index is None else self._index.revision
        return self._base_revision + inner

    def restore_revision(self, revision: int) -> None:
        """Fast-forward the revision clock to at least *revision*.

        The public snapshot-restore API (previously loaders poked the
        private structural base directly): after the call,
        :attr:`revision` is ``>= revision``, and monotonicity is preserved
        — an already-ahead clock is left untouched.
        """
        inner = 0 if self._index is None else self._index.revision
        self._base_revision = max(self._base_revision, int(revision) - inner)

    # ------------------------------------------------------------------
    # Availability (degraded-mode serving)
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether derived social structures may be served."""
        return self._available

    @property
    def unavailable_reason(self) -> str:
        """Why the store was marked unavailable (empty when available)."""
        return self._unavailable_reason

    def mark_unavailable(self, reason: str = "") -> None:
        """Take the social side out of serving (recovery found it damaged,
        an operator disabled it, ...).  Derived views and mutations raise
        :class:`SocialStoreUnavailableError` until :meth:`mark_available`."""
        self._available = False
        self._unavailable_reason = reason

    def mark_available(self) -> None:
        """Return the store to serving (staleness bookkeeping is kept)."""
        self._available = True
        self._unavailable_reason = ""

    def record_skipped_mutations(self, count: int = 1) -> None:
        """Note *count* mutations that could not be applied to this store."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.skipped_mutations += count

    def _require_available(self) -> None:
        if not self._available:
            suffix = f": {self._unavailable_reason}" if self._unavailable_reason else ""
            raise SocialStoreUnavailableError(f"social store unavailable{suffix}")

    def _invalidate(self) -> None:
        """Mark the wrapped index stale; adopt its live descriptor state."""
        with self._derive_lock:
            if self._index is not None:
                self._descriptors = self._index.descriptors
                self._base_revision += self._index.revision + 1
                self._index = None
            else:
                self._base_revision += 1
            self._dicts = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of sub-communities (the SAR dimensionality)."""
        return self._k

    @property
    def descriptors(self) -> dict[str, SocialDescriptor]:
        """The live ``video_id -> SocialDescriptor`` mapping."""
        if self._index is not None:
            return self._index.descriptors
        return self._descriptors

    @property
    def index(self) -> DynamicSocialIndex:
        """The wrapped dynamic social index (re-derived when dirty).

        The rebuild feeds descriptors in sorted video-id order, making the
        UIG (and therefore the partition, hash table, SAR vectors and
        inverted file) independent of the mutation history — only the
        final descriptor set matters.
        """
        self._require_available()
        index = self._index
        if index is None:
            with self._derive_lock:
                index = self._index
                if index is None:
                    ordered = [
                        self._descriptors[video_id]
                        for video_id in sorted(self._descriptors)
                    ]
                    # Publish only the fully built index: concurrent
                    # readers either see None (and wait on the lock) or a
                    # finished structure, never a partial build.
                    index = DynamicSocialIndex.build(
                        ordered, self._k, uig_pair_cap=self._uig_pair_cap
                    )
                    self._index = index
        return index

    def dictionaries(self) -> tuple[SortedUserDictionary, SarVectorizer, SarVectorizer]:
        """``(sorted_dictionary, sar, sar_h)`` over the current partition.

        The sorted dictionary is a static snapshot: it survives incremental
        maintenance batches (that asymmetry is SAR-H's selling point — the
        chained-hash vectorizer reads the live hash table) and refreshes on
        structural invalidation or :meth:`refresh_dictionaries`.
        """
        self._require_available()
        dicts = self._dicts
        if dicts is None:
            with self._derive_lock:
                dicts = self._dicts
                if dicts is None:
                    index = self.index
                    membership = {
                        user: cno
                        for cno, members in index.communities.items()
                        for user in members
                    }
                    dictionary = SortedUserDictionary(membership)
                    dicts = (
                        dictionary,
                        SarVectorizer(dictionary, index.k),
                        SarVectorizer(index.hash_table, index.k),
                    )
                    self._dicts = dicts
        return dicts

    def refresh_dictionaries(self) -> None:
        """Re-derive the SAR dictionaries from the live partition."""
        self._dicts = None

    def sketches(self) -> SketchBank:
        """The live per-video odd sketch bank (``social_mode="sketch"``).

        Built lazily from the current descriptors, then maintained in
        lockstep with :meth:`add_video` / :meth:`retire_video` /
        :meth:`apply_comments` — each sketch stays bit-identical to
        :func:`repro.social.sketch.sketch_users` over the descriptor's
        user set, so an incrementally maintained bank equals a cold
        rebuild (the parity tests pin this).
        """
        self._require_available()
        bank = self._sketches
        if bank is None:
            with self._derive_lock:
                bank = self._sketches
                if bank is None:
                    bank = SketchBank(
                        bits=self._sketch_bits, seed=self._sketch_seed
                    )
                    for video_id, descriptor in self.descriptors.items():
                        bank.ingest(video_id, descriptor.users)
                    # Publish only the fully built bank (same discipline
                    # as the wrapped index above).
                    self._sketches = bank
        return bank

    def _sketch_add(self, video_id: str, user: str) -> None:
        """Mirror one genuine membership addition into the bank, if built."""
        bank = self._sketches
        if bank is None:
            return
        if video_id not in bank:
            bank.ingest(video_id, [user])
        else:
            bank.add_user(video_id, user)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_video(self, descriptor: SocialDescriptor) -> None:
        """Register a new video's social descriptor (structural change)."""
        self._require_available()
        if descriptor.video_id in self.descriptors:
            raise ValueError(f"video {descriptor.video_id!r} already has a descriptor")
        self._invalidate()
        self._descriptors[descriptor.video_id] = descriptor
        if self._sketches is not None:
            self._sketches.ingest(descriptor.video_id, descriptor.users)

    def retire_video(self, video_id: str) -> None:
        """Drop a video's descriptor (structural change)."""
        self._require_available()
        if video_id not in self.descriptors:
            raise KeyError(f"unknown video {video_id!r}")
        self._invalidate()
        del self._descriptors[video_id]
        if self._sketches is not None:
            self._sketches.retire(video_id)

    def apply_comments(
        self, comments: list[tuple[str, str]], incremental: bool = False
    ) -> MaintenanceStats | None:
        """Fold ``(user_id, video_id)`` comment pairs into the social state.

        ``incremental=True`` streams the batch through the wrapped index's
        Figure-5 maintenance (unions/splits, cost counters returned);
        the default exact mode updates the descriptors and re-derives the
        partition deterministically, so the result matches a cold build of
        the final community bit for bit.
        """
        self._require_available()
        if incremental:
            if self._sketches is not None:
                # Replay the wrapped index's membership transitions ahead
                # of it: a pair toggles the sketch only when it genuinely
                # adds the user (duplicates within the batch or vs the
                # live descriptor must not double-toggle — XOR would
                # *clear* the bit).
                descriptors = self.descriptors
                added: dict[str, set[str]] = {}
                for user, video_id in comments:
                    batch = added.setdefault(video_id, set())
                    if user in batch:
                        continue
                    descriptor = descriptors.get(video_id)
                    if descriptor is not None and user in descriptor.users:
                        continue
                    batch.add(user)
                    self._sketch_add(video_id, user)
            return self.index.apply_comments(comments)
        self._invalidate()
        for user, video_id in comments:
            descriptor = self._descriptors.get(video_id)
            if descriptor is None:
                self._descriptors[video_id] = SocialDescriptor.from_users(
                    video_id, [user]
                )
                self._sketch_add(video_id, user)
            elif user not in descriptor.users:
                self._descriptors[video_id] = descriptor.with_users([user])
                self._sketch_add(video_id, user)
        return None

    def remove_comments(self, comments: list[tuple[str, str]]) -> int:
        """Un-apply ``(user_id, video_id)`` memberships (spam revocation).

        The inverse of exact-mode :meth:`apply_comments`: each pair whose
        user is currently in the video's descriptor is removed, the
        partition re-derives deterministically from the shrunken
        descriptors, and a built sketch bank mirrors the removal through
        the XOR self-inverse (``remove_user`` is the same toggle as
        ``add_user``, so un-apply costs exactly one O(1) toggle).  Pairs
        whose membership does not exist are skipped — revoking a no-op
        application must itself be a no-op.  Returns the number of
        memberships actually removed.
        """
        self._require_available()
        self._invalidate()
        removed = 0
        for user, video_id in comments:
            descriptor = self._descriptors.get(video_id)
            if descriptor is None or user not in descriptor.users:
                continue
            self._descriptors[video_id] = descriptor.without_users([user])
            removed += 1
            bank = self._sketches
            if bank is not None and video_id in bank:
                bank.remove_user(video_id, user)
        return removed
