"""K-top-score video search — the index-backed KNN of the paper's Figure 6.

The exhaustive recommenders in :mod:`repro.core.recommender` score every
video; ``KTopScoreVideoSearch`` instead drives the two indexes:

1. **social step** — vectorize the query's social descriptor through the
   chained hash table, pull candidates from the ``k`` inverted files, rank
   them by the SAR approximation s̃J;
2. **content step** — for each query signature, pull the entries with the
   next longest common Z-order prefix from the LSB index;
3. **refinement loop** — interleave the two candidate streams, compute the
   full FJ relevance (κJ + s̃J) for each new candidate, and maintain the
   running top-K; stop when both streams are exhausted or the configured
   budgets are spent and the top-K is stable.

This trades a bounded amount of recall (it only scores candidates the
indexes surface) for sub-linear query cost, exactly the deal the paper's
Section 4.4 describes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.fusion import fuse_fj
from repro.core.pipeline import CommunityIndex
from repro.measures.content import kappa_j
from repro.social.sar import approx_jaccard

__all__ = ["KnnResult", "KTopScoreVideoSearch"]


@dataclass(frozen=True)
class KnnResult:
    """One scored recommendation."""

    video_id: str
    score: float
    content: float
    social: float


class KTopScoreVideoSearch:
    """Index-backed top-K search over a :class:`CommunityIndex`.

    Parameters
    ----------
    index:
        Must have been built with ``build_lsb=True``.
    omega:
        Fusion weight; defaults to the index configuration's value.
    """

    def __init__(self, index: CommunityIndex, omega: float | None = None) -> None:
        if index.lsb is None:
            raise ValueError("KTopScoreVideoSearch needs the LSB index built")
        self.index = index
        self.omega = index.config.omega if omega is None else float(omega)
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")

    # ------------------------------------------------------------------
    def _social_candidates(self, query_id: str) -> list[str]:
        """Step 1 of Figure 6: inverted-file candidates ranked by s̃J."""
        query_vector = self.index.social.vectorize_users(
            self.index.descriptor(query_id).users
        )
        candidates = self.index.social.inverted.candidates(query_vector)
        budget = self.index.config.knn_social_budget
        scored = sorted(
            (
                (
                    -approx_jaccard(query_vector, self.index.social_vector(vid)),
                    vid,
                )
                for vid in candidates[: budget * 2]
                if vid != query_id
            ),
        )
        return [vid for _, vid in scored[:budget]]

    def _content_candidates(self, query_id: str) -> list[str]:
        """Step 2 of Figure 6: LSB longest-common-prefix candidates."""
        budget = self.index.config.knn_content_budget
        ordered: list[str] = []
        seen: set[str] = set()
        for signature in self.index.series[query_id]:
            for vid in self.index.lsb.candidate_videos(signature, budget):
                if vid != query_id and vid not in seen:
                    seen.add(vid)
                    ordered.append(vid)
        return ordered

    def _full_score(self, query_id: str, candidate_id: str) -> KnnResult:
        content = kappa_j(
            self.index.series[query_id],
            self.index.series[candidate_id],
            match_threshold=self.index.config.match_threshold,
        )
        social = approx_jaccard(
            self.index.social.vectorize_users(self.index.descriptor(query_id).users),
            self.index.social_vector(candidate_id),
        )
        return KnnResult(
            video_id=candidate_id,
            score=fuse_fj(min(content, 1.0), min(social, 1.0), self.omega),
            content=content,
            social=social,
        )

    # ------------------------------------------------------------------
    def search(self, query_id: str, top_k: int = 10) -> list[KnnResult]:
        """Figure 6's loop: interleave candidate streams, refine, return K."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        social_stream = iter(self._social_candidates(query_id))
        content_stream = iter(self._content_candidates(query_id))
        heap: list[tuple[float, str]] = []  # min-heap of (score, vid)
        results: dict[str, KnnResult] = {}
        exhausted = {"social": False, "content": False}
        while not (exhausted["social"] and exhausted["content"]):
            for label, stream in (("content", content_stream), ("social", social_stream)):
                if exhausted[label]:
                    continue
                candidate = next(stream, None)
                if candidate is None:
                    exhausted[label] = True
                    continue
                if candidate in results:
                    continue
                result = self._full_score(query_id, candidate)
                results[candidate] = result
                if len(heap) < top_k:
                    heapq.heappush(heap, (result.score, candidate))
                elif result.score > heap[0][0]:
                    heapq.heapreplace(heap, (result.score, candidate))
        ranked = sorted(heap, key=lambda pair: (-pair[0], pair[1]))
        return [results[vid] for _, vid in ranked]

    def recommend(self, query_id: str, top_k: int = 10) -> list[str]:
        """Harness-compatible wrapper returning only the ranked ids."""
        return [result.video_id for result in self.search(query_id, top_k)]
