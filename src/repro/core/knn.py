"""K-top-score video search — the index-backed KNN of the paper's Figure 6.

The exhaustive recommenders in :mod:`repro.core.recommender` score every
video; ``KTopScoreVideoSearch`` instead drives the two indexes:

1. **social step** — vectorize the query's social descriptor through the
   chained hash table, pull candidates from the ``k`` inverted files, rank
   them by the SAR approximation s̃J;
2. **content step** — for each query signature, pull the entries with the
   next longest common Z-order prefix from the LSB index;
3. **refinement loop** — interleave the two candidate streams, compute the
   full FJ relevance (κJ + s̃J) for each new candidate, and maintain the
   running top-K; stop when both streams are exhausted or the configured
   budgets are spent and the top-K is stable.

Refinement scores candidates in **per-round blocks** through the batch
kernels (one vectorized EMD call per query signature covers a whole
block, and one ``minimum``/``maximum`` reduction covers the block's s̃J),
and memoizes per-candidate component scores so interleaved streams — and
repeated searches of the same query — never rescore a video.

This trades a bounded amount of recall (it only scores candidates the
indexes surface) for sub-linear query cost, exactly the deal the paper's
Section 4.4 describes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.fusion import fuse_fj
from repro.core.pipeline import CommunityIndex
from repro.social.sar import approx_jaccard_batch

__all__ = ["KnnResult", "KTopScoreVideoSearch"]


@dataclass(frozen=True)
class KnnResult:
    """One scored recommendation."""

    video_id: str
    score: float
    content: float
    social: float


class KTopScoreVideoSearch:
    """Index-backed top-K search over a :class:`CommunityIndex`.

    Parameters
    ----------
    index:
        Must have been built with ``build_lsb=True``.
    omega:
        Fusion weight; defaults to the index configuration's value.
    block_size:
        Candidates accumulated from the interleaved streams before each
        batch-scoring round of the refinement loop.
    probes:
        LSB trees consulted per content-candidate lookup; defaults to the
        index configuration's ``knn_probes`` (``None`` = all trees).
    prune:
        Early-terminate candidates whose fused-score upper bound cannot
        displace the current top-K floor (defaults to the index config).
        Pruned candidates are skipped before the κJ kernel runs; the
        returned top-K is provably unchanged (a pruned score can never
        exceed the heap floor it would need to beat strictly).
    """

    def __init__(
        self,
        index: CommunityIndex,
        omega: float | None = None,
        block_size: int = 16,
        probes: int | None = None,
        prune: bool | None = None,
    ) -> None:
        if index.lsb is None:
            raise ValueError("KTopScoreVideoSearch needs the LSB index built")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.index = index
        self.omega = index.config.omega if omega is None else float(omega)
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        self.block_size = block_size
        self.probes = index.config.knn_probes if probes is None else int(probes)
        if self.probes is not None and self.probes < 1:
            raise ValueError(f"probes must be >= 1, got {self.probes}")
        self.prune = index.config.prune if prune is None else bool(prune)
        self.scan_dtype = index.config.scan_dtype
        #: Candidates skipped by the bound check in the most recent
        #: :meth:`search` (the recall sweep reports this).
        self.last_pruned = 0
        #: (query_id, candidate_id) -> (content, social); survives across
        #: searches so repeated or overlapping queries reuse components.
        self._component_memo: dict[tuple[str, str], tuple[float, float]] = {}
        self._memo_revisions = index.revisions

    def clear_memo(self, revisions: tuple[int, int] | None = None) -> None:
        """Drop memoized component scores.

        Called automatically by :meth:`search` whenever the index's store
        revisions move (ingest, retire, comment maintenance), so memoized
        components can never leak across index mutations.

        *revisions* is the snapshot the caller already compared against;
        re-reading the counters here would race — a mutation landing
        between :meth:`search`'s staleness check and this call would tag
        the emptied memo with the *new* revision pair while the search
        scores against pre-mutation state, mixing epochs on the next
        search.  The check and the tag must come from one snapshot.
        """
        self._component_memo.clear()
        self._memo_revisions = (
            self.index.revisions if revisions is None else revisions
        )

    # ------------------------------------------------------------------
    def _social_candidates(self, query_id: str, query_vector: np.ndarray) -> list[str]:
        """Step 1 of Figure 6: inverted-file candidates ranked by s̃J."""
        candidates = self.index.social.inverted.candidates(query_vector)
        budget = self.index.config.knn_social_budget
        shortlist = [vid for vid in candidates[: budget * 2] if vid != query_id]
        if not shortlist:
            return []
        scores = approx_jaccard_batch(
            query_vector,
            np.stack([self.index.social_vector(vid) for vid in shortlist]),
        )
        ranked = sorted(zip(-scores, shortlist))
        return [vid for _, vid in ranked[:budget]]

    def _content_candidates(self, query_id: str) -> list[str]:
        """Step 2 of Figure 6: LSB longest-common-prefix candidates."""
        budget = self.index.config.knn_content_budget
        ordered: list[str] = []
        seen: set[str] = set()
        for signature in self.index.series[query_id]:
            for vid in self.index.lsb.candidate_videos(
                signature, budget, probes=self.probes
            ):
                if vid != query_id and vid not in seen:
                    seen.add(vid)
                    ordered.append(vid)
        return ordered

    def _score_block(
        self,
        query_id: str,
        query_vector: np.ndarray,
        block: list[str],
        kth: float | None = None,
    ) -> list[KnnResult]:
        """FJ components for a block of candidates via the batch kernels.

        *kth* is the current heap floor once the heap is full (``None``
        before).  With pruning on, fresh candidates whose fused-score
        upper bound — exact social plus the κJ count cap — is at most
        *kth* are skipped entirely: displacing the floor needs a score
        **strictly** above it, and a pruned score can never exceed its
        bound.  Skipped candidates are not memoized (their components
        were never computed) and yield no result.
        """
        memo = self._component_memo
        fresh = [vid for vid in block if (query_id, vid) not in memo]
        if fresh:
            social = approx_jaccard_batch(
                query_vector,
                np.stack([self.index.social_vector(vid) for vid in fresh]),
            )
            if self.prune and kth is not None:
                n1 = len(self.index.series[query_id])
                lengths = np.array(
                    [len(self.index.series[vid]) for vid in fresh], dtype=np.int64
                )
                caps = np.minimum(n1, lengths) / np.maximum(n1, lengths)
                caps *= 1.0 + 2e-6  # float32 kernel rounding headroom
                np.minimum(caps, 1.0, out=caps)
                bounds = (1.0 - self.omega) * caps
                bounds += self.omega * np.minimum(social, 1.0)
                keep = bounds > kth
                if not keep.all():
                    self.last_pruned += int((~keep).sum())
                    fresh = [vid for vid, k in zip(fresh, keep) if k]
                    social = social[keep]
            if fresh:
                content = self.index.signature_bank().kappa_j_scores(
                    self.index.series[query_id],
                    fresh,
                    self.index.config.match_threshold,
                    dtype=self.scan_dtype,
                )
                for vid, c, s in zip(fresh, content, social):
                    memo[(query_id, vid)] = (float(c), float(s))
        results = []
        for vid in block:
            scores = memo.get((query_id, vid))
            if scores is None:  # pruned this round
                continue
            content_score, social_score = scores
            results.append(
                KnnResult(
                    video_id=vid,
                    score=fuse_fj(
                        min(content_score, 1.0), min(social_score, 1.0), self.omega
                    ),
                    content=content_score,
                    social=social_score,
                )
            )
        return results

    # ------------------------------------------------------------------
    def search(self, query_id: str, top_k: int = 10) -> list[KnnResult]:
        """Figure 6's loop: interleave candidate streams, refine, return K."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        if query_id not in self.index.series:
            raise KeyError(f"unknown video {query_id!r}")
        revisions = self.index.revisions
        if self._memo_revisions != revisions:
            self.clear_memo(revisions)
        # Query-side work happens exactly once per search.
        query_vector = self.index.social.vectorize_users(
            self.index.descriptor(query_id).users
        )
        social_stream = iter(self._social_candidates(query_id, query_vector))
        content_stream = iter(self._content_candidates(query_id))
        heap: list[tuple[float, str]] = []  # min-heap of (score, vid)
        results: dict[str, KnnResult] = {}
        seen: set[str] = set()  # includes pruned candidates (never rescored)
        self.last_pruned = 0
        exhausted = {"social": False, "content": False}
        while not (exhausted["social"] and exhausted["content"]):
            block: list[str] = []
            while len(block) < self.block_size and not (
                exhausted["social"] and exhausted["content"]
            ):
                for label, stream in (
                    ("content", content_stream),
                    ("social", social_stream),
                ):
                    if exhausted[label]:
                        continue
                    candidate = next(stream, None)
                    if candidate is None:
                        exhausted[label] = True
                        continue
                    if candidate in seen or candidate in block:
                        continue
                    block.append(candidate)
            seen.update(block)
            kth = heap[0][0] if len(heap) >= top_k else None
            for result in self._score_block(query_id, query_vector, block, kth):
                results[result.video_id] = result
                if len(heap) < top_k:
                    heapq.heappush(heap, (result.score, result.video_id))
                elif result.score > heap[0][0]:
                    heapq.heapreplace(heap, (result.score, result.video_id))
        ranked = sorted(heap, key=lambda pair: (-pair[0], pair[1]))
        return [results[vid] for _, vid in ranked]

    def recommend(self, query_id: str, top_k: int = 10) -> list[str]:
        """Harness-compatible wrapper returning only the ranked ids."""
        return [result.video_id for result in self.search(query_id, top_k)]
