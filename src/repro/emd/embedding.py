"""EMD -> L1 embedding used by the hashing-based content index.

Section 4.4 of the paper "embed[s] EMD-metric into L1-norm space like [35],
and use[s] LSB-index to index Z-order values of points obtained by hash
conversion as in [28]".

For 1-D distributions the embedding is exact up to quantisation: the EMD
between two distributions equals the L1 distance between their CDFs
integrated over the value axis.  Quantising cluster values onto a fixed grid
of ``resolution`` bins over ``[lo, hi]`` and taking the prefix-sum histogram
scaled by the bin width yields a vector whose pairwise L1 distances converge
to the true EMDs as the resolution grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emd.transportation import normalize_weights

__all__ = ["EmdEmbedding"]


@dataclass(frozen=True)
class EmdEmbedding:
    """Embeds weighted scalar distributions into L1 space.

    Attributes
    ----------
    lo, hi:
        Value range covered by the grid.  Values outside are clamped onto
        the boundary bins (cuboid values are intensity changes, hence
        bounded by construction).
    resolution:
        Number of grid bins; the embedding dimension.
    """

    lo: float
    hi: float
    resolution: int = 64

    def __post_init__(self) -> None:
        if self.resolution < 2:
            raise ValueError(f"resolution must be >= 2, got {self.resolution}")
        if not self.lo < self.hi:
            raise ValueError(f"empty value range [{self.lo}, {self.hi}]")

    @property
    def bin_width(self) -> float:
        """Width of one grid bin."""
        return (self.hi - self.lo) / self.resolution

    def embed(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Embed one distribution as a ``resolution``-dim L1 vector.

        The vector is the scaled prefix sum (CDF) of the quantised weight
        histogram; L1 distances between embeddings approximate EMDs.
        """
        v = np.asarray(values, dtype=np.float64).reshape(-1)
        w = normalize_weights(weights)
        if v.size != w.size:
            raise ValueError("values and weights must have matching lengths")
        positions = (v - self.lo) / self.bin_width
        bins = np.clip(np.floor(positions).astype(int), 0, self.resolution - 1)
        histogram = np.zeros(self.resolution, dtype=np.float64)
        np.add.at(histogram, bins, w)
        return np.cumsum(histogram) * self.bin_width

    @staticmethod
    def l1_distance(first: np.ndarray, second: np.ndarray) -> float:
        """L1 distance between two embedded vectors."""
        if first.shape != second.shape:
            raise ValueError("embedding dimensions differ")
        return float(np.sum(np.abs(first - second)))
