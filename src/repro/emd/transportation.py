"""Exact Earth Mover's Distance via the transportation simplex.

Definition 1 of the paper casts EMD between two cuboid signatures as a
balanced transportation problem: minimise ``sum c_ij f_ij`` subject to
positivity, source (row sums equal the first signature's weights) and target
(column sums equal the second's) constraints.

This module implements the classic solution from scratch:

* an initial basic feasible solution by the **north-west corner rule**;
* optimality testing and improvement by the **MODI (u-v) method**, locating
  the improvement cycle with a depth-first search over basic cells;
* Bland-style tie-breaking plus an iteration cap for robustness against
  degenerate cycling.

A :func:`emd_linprog` cross-check built on :func:`scipy.optimize.linprog`
is provided for validation in the test suite; production code paths use
either this simplex solver or, for the scalar cuboid values the paper
actually uses, the ``O(n log n)`` closed form in :mod:`repro.emd.one_dim`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

__all__ = ["emd_exact", "emd_linprog", "normalize_weights"]

_EPSILON = 1e-12


def normalize_weights(weights: np.ndarray) -> np.ndarray:
    """Normalise *weights* to unit total mass.

    Raises
    ------
    ValueError
        If any weight is negative or the total mass is zero.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("total mass must be positive")
    return w / total


def _northwest_corner(supply: np.ndarray, demand: np.ndarray):
    """Initial basic feasible solution for the balanced problem.

    Returns ``(flow, basis)`` where *basis* is the list of basic cells.
    Degenerate steps keep zero-flow cells basic so the basis always has
    ``m + n - 1`` members.
    """
    m, n = supply.size, demand.size
    flow = np.zeros((m, n), dtype=np.float64)
    basis: list[tuple[int, int]] = []
    s = supply.copy()
    d = demand.copy()
    i = j = 0
    while i < m and j < n:
        amount = min(s[i], d[j])
        flow[i, j] = amount
        basis.append((i, j))
        s[i] -= amount
        d[j] -= amount
        if i == m - 1 and j == n - 1:
            break
        if s[i] <= _EPSILON and i < m - 1:
            i += 1
        else:
            j += 1
    return flow, basis


def _compute_potentials(cost: np.ndarray, basis: list[tuple[int, int]], m: int, n: int):
    """Solve ``u_i + v_j = c_ij`` over the basic cells (MODI potentials)."""
    u = np.full(m, np.nan)
    v = np.full(n, np.nan)
    u[0] = 0.0
    remaining = set(basis)
    # Iteratively propagate; the basis forms a spanning tree so this
    # terminates in at most m + n - 1 sweeps.
    for _ in range(m + n):
        progressed = False
        for (i, j) in list(remaining):
            if not np.isnan(u[i]) and np.isnan(v[j]):
                v[j] = cost[i, j] - u[i]
                remaining.discard((i, j))
                progressed = True
            elif np.isnan(u[i]) and not np.isnan(v[j]):
                u[i] = cost[i, j] - v[j]
                remaining.discard((i, j))
                progressed = True
            elif not np.isnan(u[i]) and not np.isnan(v[j]):
                remaining.discard((i, j))
                progressed = True
        if not remaining:
            break
        if not progressed:
            # Disconnected spanning forest (extreme degeneracy): anchor an
            # arbitrary unresolved row and continue.
            for (i, j) in remaining:
                if np.isnan(u[i]):
                    u[i] = 0.0
                    break
                if np.isnan(v[j]):
                    v[j] = 0.0
                    break
    u = np.nan_to_num(u, nan=0.0)
    v = np.nan_to_num(v, nan=0.0)
    return u, v


def _find_cycle(basis: list[tuple[int, int]], entering: tuple[int, int]):
    """Find the unique alternating cycle the entering cell closes.

    The cycle alternates horizontal and vertical moves through basic cells.
    Returned as the ordered list of cells starting with *entering*.
    """
    cells = set(basis)
    cells.add(entering)
    by_row: dict[int, list[tuple[int, int]]] = {}
    by_col: dict[int, list[tuple[int, int]]] = {}
    for cell in cells:
        by_row.setdefault(cell[0], []).append(cell)
        by_col.setdefault(cell[1], []).append(cell)

    def search(path: list[tuple[int, int]], move_row: bool):
        head = path[-1]
        neighbours = by_row[head[0]] if move_row else by_col[head[1]]
        for nxt in neighbours:
            if nxt == head:
                continue
            if nxt == entering and len(path) >= 4 and not move_row:
                return path
            if nxt == entering:
                continue
            if nxt in path:
                continue
            result = search(path + [nxt], not move_row)
            if result is not None:
                return result
        return None

    cycle = search([entering], move_row=True)
    if cycle is None:
        cycle = search([entering], move_row=False)
    return cycle


def emd_exact(
    values_a: np.ndarray,
    weights_a: np.ndarray,
    values_b: np.ndarray,
    weights_b: np.ndarray,
    cost_matrix: np.ndarray | None = None,
    max_iterations: int = 10_000,
) -> float:
    """Exact EMD between weighted point sets via the transportation simplex.

    Parameters
    ----------
    values_a, values_b:
        Cluster representatives.  1-D arrays of scalars by default; ignored
        when *cost_matrix* is given.
    weights_a, weights_b:
        Non-negative cluster masses; normalised to total mass 1 (Definition
        1 requires equal total mass).
    cost_matrix:
        Optional explicit ground-distance matrix ``c[i, j]``; defaults to
        ``|values_a[i] - values_b[j]|``.
    max_iterations:
        Safety cap on simplex pivots.

    Returns
    -------
    float
        The minimal transport cost.
    """
    wa = normalize_weights(weights_a)
    wb = normalize_weights(weights_b)
    if cost_matrix is None:
        va = np.asarray(values_a, dtype=np.float64).reshape(-1)
        vb = np.asarray(values_b, dtype=np.float64).reshape(-1)
        if va.size != wa.size or vb.size != wb.size:
            raise ValueError("values and weights must have matching lengths")
        cost = np.abs(va[:, None] - vb[None, :])
    else:
        cost = np.asarray(cost_matrix, dtype=np.float64)
        if cost.shape != (wa.size, wb.size):
            raise ValueError(
                f"cost matrix shape {cost.shape} does not match "
                f"({wa.size}, {wb.size})"
            )
        if np.any(cost < 0):
            raise ValueError("ground distances must be non-negative")

    m, n = wa.size, wb.size
    if m == 1 and n == 1:
        return float(cost[0, 0])

    flow, basis = _northwest_corner(wa, wb)
    for _ in range(max_iterations):
        u, v = _compute_potentials(cost, basis, m, n)
        reduced = cost - u[:, None] - v[None, :]
        basic_set = set(basis)
        best_cell = None
        best_value = -1e-9
        for i in range(m):
            for j in range(n):
                if (i, j) in basic_set:
                    continue
                if reduced[i, j] < best_value:
                    best_value = reduced[i, j]
                    best_cell = (i, j)
        if best_cell is None:
            break
        cycle = _find_cycle(basis, best_cell)
        if cycle is None:  # pragma: no cover - spanning-tree invariant
            break
        # Odd positions of the cycle lose flow.
        losers = cycle[1::2]
        theta = min(flow[c] for c in losers)
        leaving = min(
            (c for c in losers if abs(flow[c] - theta) <= _EPSILON),
            key=lambda c: (c[0], c[1]),
        )
        for idx, cell in enumerate(cycle):
            flow[cell] += theta if idx % 2 == 0 else -theta
        basis.remove(leaving)
        basis.append(best_cell)
    return float(np.sum(flow * cost))


def emd_linprog(
    values_a: np.ndarray,
    weights_a: np.ndarray,
    values_b: np.ndarray,
    weights_b: np.ndarray,
    cost_matrix: np.ndarray | None = None,
) -> float:
    """Reference EMD via :func:`scipy.optimize.linprog` (HiGHS backend).

    Used by the test suite to validate :func:`emd_exact` and the 1-D closed
    form; intentionally straightforward rather than fast.
    """
    wa = normalize_weights(weights_a)
    wb = normalize_weights(weights_b)
    if cost_matrix is None:
        va = np.asarray(values_a, dtype=np.float64).reshape(-1)
        vb = np.asarray(values_b, dtype=np.float64).reshape(-1)
        cost = np.abs(va[:, None] - vb[None, :])
    else:
        cost = np.asarray(cost_matrix, dtype=np.float64)
    m, n = wa.size, wb.size
    a_eq = np.zeros((m + n, m * n))
    for i in range(m):
        a_eq[i, i * n:(i + 1) * n] = 1.0
    for j in range(n):
        a_eq[m + j, j::n] = 1.0
    b_eq = np.concatenate([wa, wb])
    result = linprog(cost.reshape(-1), A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - HiGHS is reliable on feasible LPs
        raise RuntimeError(f"linprog failed: {result.message}")
    return float(result.fun)
