"""Earth Mover's Distance substrate.

Three interchangeable solvers:

* :func:`repro.emd.one_dim.emd_1d` — ``O(n log n)`` closed form for the
  scalar cluster values the paper actually uses (production path);
* :func:`repro.emd.transportation.emd_exact` — from-scratch transportation
  simplex for arbitrary ground distances;
* :func:`repro.emd.transportation.emd_linprog` — scipy LP cross-check.

Plus :class:`repro.emd.embedding.EmdEmbedding`, the EMD -> L1 embedding the
LSB content index hashes.
"""

from repro.emd.embedding import EmdEmbedding
from repro.emd.one_dim import (
    PackedDistributions,
    emd_1d,
    emd_1d_one_vs_many,
    pack_distributions,
)
from repro.emd.transportation import emd_exact, emd_linprog, normalize_weights

__all__ = [
    "EmdEmbedding",
    "PackedDistributions",
    "emd_1d",
    "emd_1d_one_vs_many",
    "emd_exact",
    "emd_linprog",
    "normalize_weights",
    "pack_distributions",
]
