"""Closed-form Earth Mover's Distance for scalar (1-D) cluster values.

The paper simplifies cuboid signatures so that each cluster value ``v`` is a
single scalar (Section 4.1: "we use bigrams and each v is a single value").
With ground distance ``|v_i - v_j|`` the transportation problem has the
classic closed form

    EMD(A, B) = integral over v of |CDF_A(v) - CDF_B(v)| dv

which evaluates exactly by sorting the merged support — ``O(n log n)``
instead of a simplex solve.  This is the production EMD path; the simplex
solver in :mod:`repro.emd.transportation` validates it.
"""

from __future__ import annotations

import numpy as np

from repro.emd.transportation import normalize_weights

__all__ = ["emd_1d"]


def emd_1d(
    values_a: np.ndarray,
    weights_a: np.ndarray,
    values_b: np.ndarray,
    weights_b: np.ndarray,
) -> float:
    """Exact 1-D EMD between two weighted scalar distributions.

    Both weight vectors are normalised to unit mass first (Definition 1 of
    the paper requires equal total mass).

    Parameters
    ----------
    values_a, values_b:
        1-D arrays of scalar cluster values.
    weights_a, weights_b:
        Matching non-negative masses.

    Returns
    -------
    float
        ``integral |CDF_A - CDF_B| dv`` over the merged support.
    """
    va = np.asarray(values_a, dtype=np.float64).reshape(-1)
    vb = np.asarray(values_b, dtype=np.float64).reshape(-1)
    wa = normalize_weights(weights_a)
    wb = normalize_weights(weights_b)
    if va.size != wa.size or vb.size != wb.size:
        raise ValueError("values and weights must have matching lengths")

    # Merge supports; accumulate signed mass (+ for A, - for B) at each
    # support point, then integrate the absolute running sum between
    # consecutive support points.
    support = np.concatenate([va, vb])
    signed = np.concatenate([wa, -wb])
    order = np.argsort(support, kind="stable")
    support = support[order]
    signed = signed[order]
    cdf_gap = np.cumsum(signed)[:-1]
    dv = np.diff(support)
    return float(np.sum(np.abs(cdf_gap) * dv))
