"""Closed-form Earth Mover's Distance for scalar (1-D) cluster values.

The paper simplifies cuboid signatures so that each cluster value ``v`` is a
single scalar (Section 4.1: "we use bigrams and each v is a single value").
With ground distance ``|v_i - v_j|`` the transportation problem has the
classic closed form

    EMD(A, B) = integral over v of |CDF_A(v) - CDF_B(v)| dv

which evaluates exactly by sorting the merged support — ``O(n log n)``
instead of a simplex solve.  This is the production EMD path; the simplex
solver in :mod:`repro.emd.transportation` validates it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.emd.transportation import normalize_weights

__all__ = [
    "emd_1d",
    "emd_1d_one_vs_many",
    "emd_1d_sorted_one_vs_many",
    "emd_1d_sorted_many_vs_many",
    "emd_1d_sorted_keys_many_vs_many",
    "pack_emd_keys",
    "EMD_KEY_WEIGHT_SIGN",
    "EmdWorkspace",
    "get_workspace",
    "PackedDistributions",
    "pack_distributions",
]


def emd_1d(
    values_a: np.ndarray,
    weights_a: np.ndarray,
    values_b: np.ndarray,
    weights_b: np.ndarray,
) -> float:
    """Exact 1-D EMD between two weighted scalar distributions.

    Both weight vectors are normalised to unit mass first (Definition 1 of
    the paper requires equal total mass).

    Parameters
    ----------
    values_a, values_b:
        1-D arrays of scalar cluster values.
    weights_a, weights_b:
        Matching non-negative masses.

    Returns
    -------
    float
        ``integral |CDF_A - CDF_B| dv`` over the merged support.
    """
    va = np.asarray(values_a, dtype=np.float64).reshape(-1)
    vb = np.asarray(values_b, dtype=np.float64).reshape(-1)
    wa = normalize_weights(weights_a)
    wb = normalize_weights(weights_b)
    if va.size != wa.size or vb.size != wb.size:
        raise ValueError("values and weights must have matching lengths")

    # Merge supports; accumulate signed mass (+ for A, - for B) at each
    # support point, then integrate the absolute running sum between
    # consecutive support points.
    support = np.concatenate([va, vb])
    signed = np.concatenate([wa, -wb])
    order = np.argsort(support, kind="stable")
    support = support[order]
    signed = signed[order]
    cdf_gap = np.cumsum(signed)[:-1]
    dv = np.diff(support)
    return float(np.sum(np.abs(cdf_gap) * dv))


@dataclass(frozen=True)
class PackedDistributions:
    """A stack of weighted 1-D distributions padded to a common length.

    Attributes
    ----------
    values:
        ``(M, L)`` float64 matrix; row *i* holds distribution *i*'s values
        in its leading ``lengths[i]`` slots, padded with the row maximum.
        Padding with the maximum keeps every pad point collapsed onto an
        existing support point, so the batched CDF integral is exactly the
        scalar one (zero-width intervals contribute exactly 0).
    weights:
        Matching ``(M, L)`` matrix of masses, each row normalised to unit
        total over its real slots and padded with exact zeros.
    lengths:
        ``(M,)`` int64 vector of real (unpadded) row lengths.
    """

    values: np.ndarray
    weights: np.ndarray
    lengths: np.ndarray

    def __len__(self) -> int:
        return int(self.values.shape[0])


def pack_distributions(
    values_list: list[np.ndarray], weights_list: list[np.ndarray]
) -> PackedDistributions:
    """Stack variable-length weighted distributions into padded matrices.

    Weights are normalised per row (the same ``w / w.sum()`` the scalar
    path applies), so the result feeds :func:`emd_1d_one_vs_many` without
    any per-query renormalisation.
    """
    if len(values_list) != len(weights_list):
        raise ValueError("values_list and weights_list must have equal lengths")
    if not values_list:
        raise ValueError("cannot pack an empty distribution list")
    lengths = np.array([np.size(v) for v in values_list], dtype=np.int64)
    if np.any(lengths == 0):
        raise ValueError("distributions must be non-empty")
    width = int(lengths.max())
    values = np.empty((len(values_list), width), dtype=np.float64)
    weights = np.zeros((len(values_list), width), dtype=np.float64)
    for row, (v, w) in enumerate(zip(values_list, weights_list)):
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        w = normalize_weights(w)
        if v.size != w.size:
            raise ValueError("values and weights must have matching lengths")
        n = v.size
        values[row, :n] = v
        values[row, n:] = v.max()
        weights[row, :n] = w
    return PackedDistributions(values=values, weights=weights, lengths=lengths)


def emd_1d_one_vs_many(
    query_values: np.ndarray,
    query_weights: np.ndarray,
    cand_values: np.ndarray,
    cand_weights: np.ndarray,
) -> np.ndarray:
    """Exact 1-D EMD of one query distribution against *M* candidates.

    The batched counterpart of :func:`emd_1d`: the merged-support CDF
    difference is evaluated for every candidate row at once with a single
    sort / cumsum / reduction, instead of *M* scalar calls.

    Parameters
    ----------
    query_values, query_weights:
        The query distribution (1-D arrays; weights are normalised here).
    cand_values, cand_weights:
        ``(M, L)`` padded candidate matrices as produced by
        :func:`pack_distributions` — rows pre-normalised to unit mass with
        zero-weight padding (any pad value collapsing onto an existing
        support point, conventionally the row maximum).

    Returns
    -------
    np.ndarray
        ``(M,)`` vector of EMD values, equal (to float rounding) to
        ``[emd_1d(q_v, q_w, c_v, c_w) for each candidate row]``.
    """
    qv = np.asarray(query_values, dtype=np.float64).reshape(-1)
    qw = normalize_weights(query_weights)
    if qv.size != qw.size:
        raise ValueError("values and weights must have matching lengths")
    cand_values = np.asarray(cand_values, dtype=np.float64)
    cand_weights = np.asarray(cand_weights, dtype=np.float64)
    if cand_values.ndim != 2 or cand_values.shape != cand_weights.shape:
        raise ValueError(
            "cand_values and cand_weights must be matching 2-D matrices, got "
            f"{cand_values.shape} vs {cand_weights.shape}"
        )
    many = cand_values.shape[0]

    # Per row: merged support [query | candidate], signed mass (+ query,
    # - candidate), stable sort, running CDF gap, integrate |gap| dv.
    support = np.concatenate(
        [np.broadcast_to(qv, (many, qv.size)), cand_values], axis=1
    )
    signed = np.concatenate(
        [np.broadcast_to(qw, (many, qw.size)), -cand_weights], axis=1
    )
    order = np.argsort(support, axis=1, kind="stable")
    support = np.take_along_axis(support, order, axis=1)
    signed = np.take_along_axis(signed, order, axis=1)
    cdf_gap = np.cumsum(signed, axis=1)[:, :-1]
    dv = np.diff(support, axis=1)
    return np.sum(np.abs(cdf_gap) * dv, axis=1)


class EmdWorkspace:
    """Reusable scratch buffers for the sorted-merge EMD kernel.

    The batched kernel needs three ``(M, L + nq)``-shaped scratch
    matrices per call; allocating them fresh for every query block is a
    measurable slice of the sub-millisecond budget.  A workspace keeps
    one growable flat buffer per (name, dtype) and hands out reshaped
    views, so steady-state queries allocate nothing.  Workspaces are NOT
    thread-safe — use :func:`get_workspace` for a thread-local one.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A ``shape``-shaped scratch view named *name* (contents garbage)."""
        key = (name, np.dtype(dtype))
        need = 1
        for dim in shape:
            need *= int(dim)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < need:
            capacity = max(need, 2 * (0 if buffer is None else buffer.size), 1024)
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:need].reshape(shape)


_LOCAL = threading.local()


def get_workspace() -> EmdWorkspace:
    """The calling thread's private :class:`EmdWorkspace`."""
    workspace = getattr(_LOCAL, "workspace", None)
    if workspace is None:
        workspace = _LOCAL.workspace = EmdWorkspace()
    return workspace


def emd_1d_sorted_one_vs_many(
    query_values: np.ndarray,
    query_weights: np.ndarray,
    cand_values: np.ndarray,
    cand_weights: np.ndarray,
    workspace: EmdWorkspace | None = None,
) -> np.ndarray:
    """Exact 1-D EMD of one sorted query against *M* row-sorted candidates.

    The fast-path counterpart of :func:`emd_1d_one_vs_many`: because both
    sides arrive **sorted ascending**, the merged support order is
    computed analytically (a ``searchsorted`` for the candidate elements,
    a broadcast rank count for the query elements) instead of a full
    ``argsort`` per call — O(M·L·log nq) instead of O(M·(L+nq)·log(L+nq))
    — and every intermediate lands in *workspace* scratch instead of a
    fresh allocation.  Works in whatever dtype the candidate matrices
    carry (the production path feeds float32 signature banks; float64
    inputs reproduce the reference kernel to ~1e-15).

    Parameters
    ----------
    query_values, query_weights:
        The query distribution, **sorted ascending by value**, weights
        already normalised to unit mass and aligned with the sort.
    cand_values, cand_weights:
        ``(M, L)`` padded candidate matrices, **each row sorted
        ascending**, weights normalised per row with zero-weight padding
        (pads equal the row maximum, so sorting leaves them trailing).
    workspace:
        Scratch buffers; defaults to the calling thread's workspace.

    Returns
    -------
    np.ndarray
        ``(M,)`` vector of EMD values in the candidates' dtype.
    """
    if workspace is None:
        workspace = get_workspace()
    many, width = cand_values.shape
    nq = query_values.size
    total = width + nq
    dtype = cand_values.dtype
    support = workspace.get("support", (many, total), dtype)
    signed = workspace.get("signed", (many, total), dtype)
    dv = workspace.get("dv", (many, total - 1), dtype)
    free = workspace.get("free", (many, total), np.bool_)
    rows = np.arange(many)[:, None]
    # Merged-order positions, ties resolved query-first for candidate
    # elements — any consistent rule yields the same integral (equal
    # support points bound zero-width intervals).
    pos_c = np.searchsorted(query_values, cand_values.ravel(), side="left")
    pos_c = pos_c.reshape(many, width) + np.arange(width)[None, :]
    free.fill(True)
    free[rows, pos_c] = False
    support[rows, pos_c] = cand_values
    signed[rows, pos_c] = cand_weights
    # One vectorized pass flips the candidate masses negative; the query
    # fill below then overwrites its own (negated-garbage) slots.
    np.negative(signed, out=signed)
    # Each row's query elements land in exactly the slots the candidates
    # left free, in ascending column order (both sides are sorted), so a
    # row-major boolean fill IS the merge — no rank computation needed.
    support[free] = np.broadcast_to(query_values, (many, nq)).reshape(-1)
    signed[free] = np.broadcast_to(query_weights, (many, nq)).reshape(-1)
    np.cumsum(signed, axis=1, out=signed)
    np.subtract(support[:, 1:], support[:, :-1], out=dv)
    gap = signed[:, :-1]
    np.abs(gap, out=gap)
    np.multiply(gap, dv, out=gap)
    return gap.sum(axis=1)


#: XOR mask that flips an encoded key's weight sign (the float32 sign bit
#: of the low payload half) — turns candidate-side keys into query-side
#: keys in one vectorized op when a query's rows already live in a pack.
EMD_KEY_WEIGHT_SIGN = np.int64(0x80000000)

#: Upper-triangular prefix-sum matrices keyed by merged width — tiny,
#: reused on every kernel call so block scoring never reallocates them.
_tri_cache: dict[int, np.ndarray] = {}

#: Fixed sgemm M so every CDF matmul hits the same BLAS kernel (and the
#: same summation order) regardless of how many pairs a batch carries —
#: the load-bearing half of the fast path's bit-reproducibility.  sgemm
#: throughput at these widths is flat from M=64 up (measured ~65 GFLOPS
#: either way), so 256 keeps the zero-pad waste of tiny trimmed blocks
#: at ~18us while costing large batches nothing.
_GEMM_CHUNK = 256


def pack_emd_keys(
    values: np.ndarray,
    weights: np.ndarray,
    negate: bool = False,
    offset: float | None = None,
) -> np.ndarray:
    """Encode float32 (value, weight) pairs as SIMD-sortable int64 keys.

    Values are shifted by *offset* so every encoded value is strictly
    positive; positive IEEE-754 floats compare identically as unsigned
    bit patterns, so the value bits go into the high 32 bits verbatim and
    ascending int64 order is ascending value order — ``np.sort`` on
    int64 dispatches to the vectorized SIMD qsort, ~6x faster than any
    comparison-based dtype at kernel block sizes, and decoding is a pure
    bit view.  (1-D EMD is translation-invariant, so the shared shift
    never reaches the result.)  Low 32 bits: the IEEE bits of the float32
    weight — negated first when *negate* is set (the candidate side of
    the signed-mass merge) — which ride along through the sort and are
    recovered verbatim afterwards.  Ordering among equal values falls to
    the weight bits; any tie order is harmless, because equal support
    points bound zero-width integration intervals.

    *offset* defaults to ``values.min() - 1``; both sides of a merge MUST
    be encoded with the same offset (pass the pack's offset explicitly),
    and every value must exceed it.
    """
    if offset is None:
        offset = float(np.asarray(values).min()) - 1.0
    v = np.asarray(values, dtype=np.float32) - np.float32(offset)
    if not (v > 0).all():
        raise ValueError(
            "pack_emd_keys offset must lie strictly below every value"
        )
    w = np.asarray(weights, dtype=np.float32)
    if negate:
        w = -w
    value_bits = np.ascontiguousarray(v).view(np.uint32)
    weight_bits = np.ascontiguousarray(w).view(np.uint32)
    keys = (value_bits.astype(np.uint64) << np.uint64(32)) | weight_bits.astype(
        np.uint64
    )
    return keys.view(np.int64)


def emd_1d_sorted_keys_many_vs_many(
    query_keys: np.ndarray,
    cand_keys: np.ndarray,
    workspace: EmdWorkspace | None = None,
) -> np.ndarray:
    """Exact 1-D EMD of *n1* queries against *M* candidates, key-encoded.

    The full cross product in **one kernel invocation** over int64 merge
    keys (:func:`pack_emd_keys`): two broadcast copies lay every (query
    row, candidate row) pair side by side, one SIMD int64 ``sort`` per
    merged row produces the merged support with its signed masses riding
    along in the low key bits, and a triangular sgemm computes all
    running CDF sums at once (numpy's ``cumsum`` is a scalar loop; BLAS
    is ~4x faster at block sizes).  No fancy indexing, no per-signature
    ``searchsorted`` loop — the op count is constant in both ``n1`` and
    ``M``, which is what keeps small pruned blocks overhead-bound rather
    than op-count-bound.

    Parameters
    ----------
    query_keys:
        ``(n1, nq)`` int64 keys with **positive** weight payloads.
    cand_keys:
        ``(M, L)`` int64 keys with **negated** weight payloads
        (``pack_emd_keys(..., negate=True)``).
    workspace:
        Scratch buffers; defaults to the calling thread's workspace.

    Returns
    -------
    np.ndarray
        ``(n1, M)`` float32 EMD matrix.

    Zero-weight pads on either side add support points of zero mass:
    they split integration intervals without changing the integrand, so
    the integral — and the returned EMD — is unaffected.
    """
    if workspace is None:
        workspace = get_workspace()
    n1, nq = query_keys.shape
    many, width = cand_keys.shape
    pairs = n1 * many
    total = width + nq
    merged = workspace.get("merged", (pairs, total), np.int64)
    np.copyto(merged[:, :nq].reshape(n1, many, nq), query_keys[:, None, :])
    np.copyto(merged[:, nq:].reshape(n1, many, width), cand_keys[None, :, :])
    merged.sort(axis=1)
    # Decode is pure bit views: keys hold strictly positive values, whose
    # IEEE bits need no transform, so the high half IS the (shifted)
    # support float and the low half IS the signed weight float
    # (little-endian: low half first).
    halves = merged.view(np.uint32).reshape(pairs, total, 2)
    support = halves[..., 1].view(np.float32)
    signed = workspace.get("signed", (pairs, total), np.float32)
    np.copyto(signed, halves[..., 0].view(np.float32))
    tri = _tri_cache.get(total)
    if tri is None:
        tri = np.triu(np.ones((total, total - 1), dtype=np.float32))
        _tri_cache[total] = tri
    gap = workspace.get("gap", (pairs, total - 1), np.float32)
    # The CDF sgemm runs in fixed-M chunks (last chunk zero-padded up to
    # the full chunk) so BLAS always sees the identical (M, K, N) shape:
    # kernel selection and the multithreading cutover both key on the
    # matrix size, and a different micro-kernel reorders the K summation
    # enough to flip low float32 bits.  With the shape pinned, a row's
    # result depends only on the row — the pruned scan's blocks, the
    # sharded scatter's trimmed blocks and the exhaustive oracle all
    # produce bit-identical EMDs for the same (query, candidate) pair.
    for start in range(0, pairs - (pairs % _GEMM_CHUNK), _GEMM_CHUNK):
        np.matmul(
            signed[start : start + _GEMM_CHUNK],
            tri,
            out=gap[start : start + _GEMM_CHUNK],
        )
    remainder = pairs % _GEMM_CHUNK
    if remainder:
        start = pairs - remainder
        pad_in = workspace.get("gemm_pad_in", (_GEMM_CHUNK, total), np.float32)
        pad_out = workspace.get(
            "gemm_pad_out", (_GEMM_CHUNK, total - 1), np.float32
        )
        pad_in[:remainder] = signed[start:pairs]
        pad_in[remainder:] = 0.0
        np.matmul(pad_in, tri, out=pad_out)
        gap[start:pairs] = pad_out[:remainder]
    dv = workspace.get("dv", (pairs, total - 1), np.float32)
    np.subtract(support[:, 1:], support[:, :-1], out=dv)
    np.abs(gap, out=gap)
    np.multiply(gap, dv, out=gap)
    return gap.sum(axis=1).reshape(n1, many)


def emd_1d_sorted_many_vs_many(
    query_values: np.ndarray,
    query_weights: np.ndarray,
    cand_values: np.ndarray,
    cand_weights: np.ndarray,
    workspace: EmdWorkspace | None = None,
) -> np.ndarray:
    """Exact 1-D EMD of *n1* sorted queries against *M* sorted candidates.

    Convenience wrapper over :func:`emd_1d_sorted_keys_many_vs_many` for
    callers holding plain padded value/weight matrices (each row sorted
    ascending, weights normalised per row with zero-weight pads equal to
    the row maximum).  Inputs are key-encoded via float32
    (:func:`pack_emd_keys`) and the result is float32 regardless of the
    input dtype.  Hot paths that score many blocks per query should
    pre-encode with :func:`pack_emd_keys` instead and skip the per-call
    key construction.
    """
    offset = (
        min(float(np.asarray(query_values).min()), float(np.asarray(cand_values).min()))
        - 1.0
    )
    return emd_1d_sorted_keys_many_vs_many(
        pack_emd_keys(query_values, query_weights, offset=offset),
        pack_emd_keys(cand_values, cand_weights, negate=True, offset=offset),
        workspace,
    )
