"""Closed-form Earth Mover's Distance for scalar (1-D) cluster values.

The paper simplifies cuboid signatures so that each cluster value ``v`` is a
single scalar (Section 4.1: "we use bigrams and each v is a single value").
With ground distance ``|v_i - v_j|`` the transportation problem has the
classic closed form

    EMD(A, B) = integral over v of |CDF_A(v) - CDF_B(v)| dv

which evaluates exactly by sorting the merged support — ``O(n log n)``
instead of a simplex solve.  This is the production EMD path; the simplex
solver in :mod:`repro.emd.transportation` validates it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emd.transportation import normalize_weights

__all__ = ["emd_1d", "emd_1d_one_vs_many", "PackedDistributions", "pack_distributions"]


def emd_1d(
    values_a: np.ndarray,
    weights_a: np.ndarray,
    values_b: np.ndarray,
    weights_b: np.ndarray,
) -> float:
    """Exact 1-D EMD between two weighted scalar distributions.

    Both weight vectors are normalised to unit mass first (Definition 1 of
    the paper requires equal total mass).

    Parameters
    ----------
    values_a, values_b:
        1-D arrays of scalar cluster values.
    weights_a, weights_b:
        Matching non-negative masses.

    Returns
    -------
    float
        ``integral |CDF_A - CDF_B| dv`` over the merged support.
    """
    va = np.asarray(values_a, dtype=np.float64).reshape(-1)
    vb = np.asarray(values_b, dtype=np.float64).reshape(-1)
    wa = normalize_weights(weights_a)
    wb = normalize_weights(weights_b)
    if va.size != wa.size or vb.size != wb.size:
        raise ValueError("values and weights must have matching lengths")

    # Merge supports; accumulate signed mass (+ for A, - for B) at each
    # support point, then integrate the absolute running sum between
    # consecutive support points.
    support = np.concatenate([va, vb])
    signed = np.concatenate([wa, -wb])
    order = np.argsort(support, kind="stable")
    support = support[order]
    signed = signed[order]
    cdf_gap = np.cumsum(signed)[:-1]
    dv = np.diff(support)
    return float(np.sum(np.abs(cdf_gap) * dv))


@dataclass(frozen=True)
class PackedDistributions:
    """A stack of weighted 1-D distributions padded to a common length.

    Attributes
    ----------
    values:
        ``(M, L)`` float64 matrix; row *i* holds distribution *i*'s values
        in its leading ``lengths[i]`` slots, padded with the row maximum.
        Padding with the maximum keeps every pad point collapsed onto an
        existing support point, so the batched CDF integral is exactly the
        scalar one (zero-width intervals contribute exactly 0).
    weights:
        Matching ``(M, L)`` matrix of masses, each row normalised to unit
        total over its real slots and padded with exact zeros.
    lengths:
        ``(M,)`` int64 vector of real (unpadded) row lengths.
    """

    values: np.ndarray
    weights: np.ndarray
    lengths: np.ndarray

    def __len__(self) -> int:
        return int(self.values.shape[0])


def pack_distributions(
    values_list: list[np.ndarray], weights_list: list[np.ndarray]
) -> PackedDistributions:
    """Stack variable-length weighted distributions into padded matrices.

    Weights are normalised per row (the same ``w / w.sum()`` the scalar
    path applies), so the result feeds :func:`emd_1d_one_vs_many` without
    any per-query renormalisation.
    """
    if len(values_list) != len(weights_list):
        raise ValueError("values_list and weights_list must have equal lengths")
    if not values_list:
        raise ValueError("cannot pack an empty distribution list")
    lengths = np.array([np.size(v) for v in values_list], dtype=np.int64)
    if np.any(lengths == 0):
        raise ValueError("distributions must be non-empty")
    width = int(lengths.max())
    values = np.empty((len(values_list), width), dtype=np.float64)
    weights = np.zeros((len(values_list), width), dtype=np.float64)
    for row, (v, w) in enumerate(zip(values_list, weights_list)):
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        w = normalize_weights(w)
        if v.size != w.size:
            raise ValueError("values and weights must have matching lengths")
        n = v.size
        values[row, :n] = v
        values[row, n:] = v.max()
        weights[row, :n] = w
    return PackedDistributions(values=values, weights=weights, lengths=lengths)


def emd_1d_one_vs_many(
    query_values: np.ndarray,
    query_weights: np.ndarray,
    cand_values: np.ndarray,
    cand_weights: np.ndarray,
) -> np.ndarray:
    """Exact 1-D EMD of one query distribution against *M* candidates.

    The batched counterpart of :func:`emd_1d`: the merged-support CDF
    difference is evaluated for every candidate row at once with a single
    sort / cumsum / reduction, instead of *M* scalar calls.

    Parameters
    ----------
    query_values, query_weights:
        The query distribution (1-D arrays; weights are normalised here).
    cand_values, cand_weights:
        ``(M, L)`` padded candidate matrices as produced by
        :func:`pack_distributions` — rows pre-normalised to unit mass with
        zero-weight padding (any pad value collapsing onto an existing
        support point, conventionally the row maximum).

    Returns
    -------
    np.ndarray
        ``(M,)`` vector of EMD values, equal (to float rounding) to
        ``[emd_1d(q_v, q_w, c_v, c_w) for each candidate row]``.
    """
    qv = np.asarray(query_values, dtype=np.float64).reshape(-1)
    qw = normalize_weights(query_weights)
    if qv.size != qw.size:
        raise ValueError("values and weights must have matching lengths")
    cand_values = np.asarray(cand_values, dtype=np.float64)
    cand_weights = np.asarray(cand_weights, dtype=np.float64)
    if cand_values.ndim != 2 or cand_values.shape != cand_weights.shape:
        raise ValueError(
            "cand_values and cand_weights must be matching 2-D matrices, got "
            f"{cand_values.shape} vs {cand_weights.shape}"
        )
    many = cand_values.shape[0]

    # Per row: merged support [query | candidate], signed mass (+ query,
    # - candidate), stable sort, running CDF gap, integrate |gap| dv.
    support = np.concatenate(
        [np.broadcast_to(qv, (many, qv.size)), cand_values], axis=1
    )
    signed = np.concatenate(
        [np.broadcast_to(qw, (many, qw.size)), -cand_weights], axis=1
    )
    order = np.argsort(support, axis=1, kind="stable")
    support = np.take_along_axis(support, order, axis=1)
    signed = np.take_along_axis(signed, order, axis=1)
    cdf_gap = np.cumsum(signed, axis=1)[:, :-1]
    dv = np.diff(support, axis=1)
    return np.sum(np.abs(cdf_gap) * dv, axis=1)
