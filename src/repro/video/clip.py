"""The :class:`VideoClip` container — a video and its sharing-community metadata.

A clip bundles the raw frame volume with the identifiers the rest of the
system needs: the community-wide ``video_id``, the generating ``topic``, and
the *lineage* pointer used by the synthetic substrate to mark near-duplicate
or edited variants of a master clip (this is the ground truth that replaces
the paper's human near-duplicate judgements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.video.frame import INTENSITY_MAX

__all__ = ["VideoClip"]


@dataclass
class VideoClip:
    """A video clip plus its community metadata.

    Attributes
    ----------
    video_id:
        Unique identifier within the community.
    frames:
        ``(T, H, W)`` ``float32`` array of grayscale frames in
        ``[0, 255]``.
    fps:
        Nominal frame rate; only used to convert frame counts into the
        "hours of video" dataset sizing the paper reports.
    title:
        Human-readable title (consumed by the AFFRF text modality).
    topic:
        Index of the generating topic, or ``-1`` when unknown.
    lineage:
        ``video_id`` of the master this clip was derived from via editing
        transforms, or ``None`` for original content.
    tags:
        Free-form text tokens (AFFRF text modality).
    """

    video_id: str
    frames: np.ndarray
    fps: float = 12.0
    title: str = ""
    topic: int = -1
    lineage: str | None = None
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        frames = np.asarray(self.frames, dtype=np.float32)
        if frames.ndim != 3:
            raise ValueError(
                f"frames must be a (T, H, W) volume, got shape {frames.shape}"
            )
        if frames.shape[0] == 0:
            raise ValueError("a clip must contain at least one frame")
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        self.frames = np.clip(frames, 0.0, INTENSITY_MAX)

    @property
    def num_frames(self) -> int:
        """Number of frames in the clip."""
        return int(self.frames.shape[0])

    @property
    def frame_shape(self) -> tuple[int, int]:
        """``(height, width)`` of every frame."""
        return (int(self.frames.shape[1]), int(self.frames.shape[2]))

    @property
    def duration_seconds(self) -> float:
        """Clip duration implied by ``num_frames`` and ``fps``."""
        return self.num_frames / self.fps

    def frame(self, index: int) -> np.ndarray:
        """Return frame *index* (supports negative indexing)."""
        return self.frames[index]

    def is_derived(self) -> bool:
        """True when this clip is an edited/near-duplicate variant."""
        return self.lineage is not None

    def root_id(self) -> str:
        """The lineage root: the master's id for variants, else our own id."""
        return self.lineage if self.lineage is not None else self.video_id

    def __len__(self) -> int:
        return self.num_frames

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VideoClip(id={self.video_id!r}, frames={self.num_frames}, "
            f"shape={self.frame_shape}, topic={self.topic}, "
            f"lineage={self.lineage!r})"
        )
