"""Synthetic video substrate: frames, clips, synthesis, editing, shots.

This subpackage replaces the paper's crawled YouTube footage with a seeded,
topic-structured generator (see ``DESIGN.md``, substitution table) and
provides the shot detection / keyframe machinery the signature layer
consumes.
"""

from repro.video.clip import VideoClip
from repro.video.frame import INTENSITY_MAX, as_frame, block_means, frame_difference
from repro.video.keyframes import qgrams, segment_qgrams, select_keyframes
from repro.video.shots import Segment, detect_cuts, segment_clip
from repro.video.synthesis import SceneSpec, ShotSpec, render_shot, synthesize_clip
from repro.video.transforms import (
    DEFAULT_TRANSFORMS,
    derive_variant,
    random_edit_chain,
)

__all__ = [
    "INTENSITY_MAX",
    "DEFAULT_TRANSFORMS",
    "SceneSpec",
    "Segment",
    "ShotSpec",
    "VideoClip",
    "as_frame",
    "block_means",
    "derive_variant",
    "detect_cuts",
    "frame_difference",
    "qgrams",
    "random_edit_chain",
    "render_shot",
    "segment_clip",
    "segment_qgrams",
    "select_keyframes",
    "synthesize_clip",
]
