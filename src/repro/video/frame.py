"""Frame-level primitives for the synthetic video substrate.

A *frame* throughout this library is a 2-D :class:`numpy.ndarray` of
grayscale intensities in ``[0, 255]`` (``float32``).  The paper's content
pipeline only consumes intensity statistics of frames and frame blocks, so a
single-channel model is sufficient and keeps the synthetic substrate small.

The helpers here implement the block decomposition that both the video
cuboid signature (Section 4.1 of the paper) and the ordinal-signature
baseline build on: every keyframe is divided into a fixed number of
equal-size blocks and each block is summarised by its mean intensity.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INTENSITY_MAX",
    "as_frame",
    "block_means",
    "frame_difference",
    "mean_intensity",
    "resize_nearest",
]

#: Maximum representable intensity.  Frames live in ``[0, INTENSITY_MAX]``.
INTENSITY_MAX = 255.0


def as_frame(array: np.ndarray) -> np.ndarray:
    """Validate and normalise *array* into the canonical frame layout.

    Parameters
    ----------
    array:
        Any 2-D array-like of numbers.

    Returns
    -------
    numpy.ndarray
        A ``float32`` copy clipped to ``[0, INTENSITY_MAX]``.

    Raises
    ------
    ValueError
        If *array* is not two-dimensional or is empty.
    """
    frame = np.asarray(array, dtype=np.float32)
    if frame.ndim != 2:
        raise ValueError(f"a frame must be 2-D, got shape {frame.shape}")
    if frame.size == 0:
        raise ValueError("a frame must contain at least one pixel")
    return np.clip(frame, 0.0, INTENSITY_MAX)


def mean_intensity(frame: np.ndarray) -> float:
    """Return the mean intensity of *frame* as a Python float."""
    return float(np.mean(frame))


def frame_difference(first: np.ndarray, second: np.ndarray) -> float:
    """Mean absolute pixel difference between two equal-shape frames.

    This is the primitive the shot detector thresholds: large values
    indicate a cut between *first* and *second*.
    """
    if first.shape != second.shape:
        raise ValueError(
            f"frame shapes differ: {first.shape} vs {second.shape}"
        )
    return float(np.mean(np.abs(first.astype(np.float64) - second.astype(np.float64))))


def block_means(frame: np.ndarray, grid: int) -> np.ndarray:
    """Divide *frame* into a ``grid x grid`` lattice of equal-size blocks.

    Block boundaries are computed with :func:`numpy.linspace` so frames whose
    side length is not a multiple of *grid* are still partitioned into
    near-equal blocks (the paper assumes equal-size blocks; real video
    resolutions make the remainder handling necessary).

    Parameters
    ----------
    frame:
        2-D intensity array.
    grid:
        Number of blocks along each axis; must be ``>= 1`` and no larger
        than the corresponding frame side.

    Returns
    -------
    numpy.ndarray
        ``(grid, grid)`` array of block mean intensities (``float64``).
    """
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    height, width = frame.shape
    if grid > height or grid > width:
        raise ValueError(
            f"grid {grid} exceeds frame dimensions {frame.shape}"
        )
    row_edges = np.linspace(0, height, grid + 1).astype(int)
    col_edges = np.linspace(0, width, grid + 1).astype(int)
    means = np.empty((grid, grid), dtype=np.float64)
    for i in range(grid):
        for j in range(grid):
            block = frame[row_edges[i]:row_edges[i + 1], col_edges[j]:col_edges[j + 1]]
            means[i, j] = block.mean()
    return means


def resize_nearest(frame: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize used by spatial editing transforms.

    Good enough for the synthetic substrate: the signatures only observe
    block-level statistics, so interpolation quality is irrelevant.
    """
    if height < 1 or width < 1:
        raise ValueError("target dimensions must be positive")
    src_h, src_w = frame.shape
    rows = (np.arange(height) * src_h / height).astype(int).clip(0, src_h - 1)
    cols = (np.arange(width) * src_w / width).astype(int).clip(0, src_w - 1)
    return frame[np.ix_(rows, cols)].astype(np.float32)
