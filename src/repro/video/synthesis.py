"""Synthetic video synthesis — the substitute for crawled YouTube footage.

The paper evaluates on 200 hours of videos crawled from YouTube.  We cannot
ship that data, so this module generates *topic-structured* synthetic clips that
exercise exactly the statistics the content pipeline consumes:

* videos are sequences of **shots** separated by hard cuts (so the shot
  detector has real work to do);
* each shot renders a *scene*: a textured background plus a handful of
  moving rectangular "objects", all drawn from topic-conditioned parameter
  distributions (so clips of the same topic are statistically similar but
  not identical, while clips of different topics are distinguishable);
* intensities drift slowly within a shot and jump across cuts (so cuboid
  signatures capture meaningful temporal change).

Determinism: every public entry point takes a :class:`numpy.random.Generator`
so the entire community dataset is reproducible from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.clip import VideoClip
from repro.video.frame import INTENSITY_MAX

__all__ = ["SceneSpec", "ShotSpec", "render_shot", "synthesize_clip", "topic_scene_spec"]


@dataclass(frozen=True)
class SceneSpec:
    """Parameters of a single rendered scene.

    Attributes
    ----------
    base_intensity:
        Mean background intensity of the scene.
    texture_scale:
        Amplitude of the static spatial texture added to the background.
    n_objects:
        Number of moving rectangles composited over the background.
    object_intensity:
        Intensity of the rectangles (contrast against the background).
    motion:
        Pixels per frame that objects drift.
    drift:
        Per-frame global intensity drift within the shot.
    """

    base_intensity: float
    texture_scale: float
    n_objects: int
    object_intensity: float
    motion: float
    drift: float


@dataclass(frozen=True)
class ShotSpec:
    """A scene plus its length in frames."""

    scene: SceneSpec
    num_frames: int


def topic_scene_spec(topic: int, rng: np.random.Generator) -> SceneSpec:
    """Draw a scene specification conditioned on *topic*.

    Each topic owns a distinct region of the scene-parameter space (anchored
    deterministically on the topic index), with per-scene jitter drawn from
    *rng*.  Same-topic scenes therefore look related; cross-topic scenes do
    not — mirroring how the paper's five query topics partition its crawl.
    """
    if topic < 0:
        raise ValueError(f"topic must be non-negative, got {topic}")
    anchor = np.random.default_rng(topic * 7919 + 13)
    # Absolute intensity levels are only weakly topic-anchored: real
    # footage of one topic does not share a color distribution, which is
    # what keeps global histograms (the AFFRF visual modality) from being
    # a free topic oracle.  The *dynamics* — drift, motion, object
    # contrast — are strongly anchored: they are what cuboid signatures
    # (temporal intensity change) actually observe.
    base = float(anchor.uniform(110.0, 150.0))
    texture = float(anchor.uniform(5.0, 25.0))
    objects = int(anchor.integers(1, 5))
    obj_intensity = float(anchor.uniform(-90.0, 90.0))
    motion = float(anchor.uniform(0.2, 2.5))
    drift = float(anchor.uniform(-1.2, 1.2))
    return SceneSpec(
        base_intensity=base + float(rng.normal(0.0, 30.0)),
        texture_scale=max(1.0, texture + float(rng.normal(0.0, 2.0))),
        n_objects=max(1, objects + int(rng.integers(-1, 2))),
        object_intensity=obj_intensity + float(rng.normal(0.0, 6.0)),
        motion=max(0.1, motion + float(rng.normal(0.0, 0.15))),
        drift=drift + float(rng.normal(0.0, 0.1)),
    )


def render_shot(
    spec: ShotSpec,
    height: int,
    width: int,
    rng: np.random.Generator,
    noise_scale: float = 2.0,
) -> np.ndarray:
    """Render one shot as a ``(num_frames, height, width)`` volume.

    The shot consists of a static low-frequency texture, ``n_objects``
    rectangles translating at ``motion`` px/frame, a per-frame global
    ``drift``, and i.i.d. sensor noise of amplitude *noise_scale*.
    """
    scene = spec.scene
    if spec.num_frames < 1:
        raise ValueError("a shot needs at least one frame")
    # Static background texture: smoothed noise.
    raw = rng.normal(0.0, 1.0, size=(height, width))
    kernel = np.ones(5) / 5.0
    smoothed = np.apply_along_axis(
        lambda r: np.convolve(r, kernel, mode="same"), 1, raw
    )
    smoothed = np.apply_along_axis(
        lambda c: np.convolve(c, kernel, mode="same"), 0, smoothed
    )
    background = scene.base_intensity + scene.texture_scale * smoothed

    # Object initial positions / sizes / velocities.
    obj_h = max(2, height // 5)
    obj_w = max(2, width // 5)
    positions = rng.uniform(0, [height - obj_h, width - obj_w], size=(scene.n_objects, 2))
    angles = rng.uniform(0, 2 * np.pi, size=scene.n_objects)
    velocities = scene.motion * np.stack([np.sin(angles), np.cos(angles)], axis=1)

    frames = np.empty((spec.num_frames, height, width), dtype=np.float32)
    for t in range(spec.num_frames):
        frame = background + scene.drift * t
        for obj in range(scene.n_objects):
            row = int(positions[obj, 0]) % max(1, height - obj_h + 1)
            col = int(positions[obj, 1]) % max(1, width - obj_w + 1)
            frame[row:row + obj_h, col:col + obj_w] += scene.object_intensity
        frame = frame + rng.normal(0.0, noise_scale, size=(height, width))
        frames[t] = np.clip(frame, 0.0, INTENSITY_MAX)
        positions = positions + velocities
    return frames


def synthesize_clip(
    video_id: str,
    topic: int,
    rng: np.random.Generator,
    num_shots: int = 3,
    frames_per_shot: tuple[int, int] = (8, 16),
    height: int = 32,
    width: int = 32,
    fps: float = 12.0,
    title: str = "",
    tags: tuple[str, ...] = (),
) -> VideoClip:
    """Generate a full clip of *num_shots* topic-conditioned shots.

    Shot lengths are drawn uniformly from ``frames_per_shot`` (inclusive
    low, exclusive high).  Consecutive shots use freshly drawn scenes so the
    intensity statistics jump at shot boundaries — which is what makes cut
    detection downstream non-trivial but solvable.
    """
    if num_shots < 1:
        raise ValueError("a clip needs at least one shot")
    lo, hi = frames_per_shot
    if not (1 <= lo < hi):
        raise ValueError(f"invalid frames_per_shot range {frames_per_shot}")
    volumes = []
    for _ in range(num_shots):
        spec = ShotSpec(
            scene=topic_scene_spec(topic, rng),
            num_frames=int(rng.integers(lo, hi)),
        )
        volumes.append(render_shot(spec, height, width, rng))
    return VideoClip(
        video_id=video_id,
        frames=np.concatenate(volumes, axis=0),
        fps=fps,
        title=title,
        topic=topic,
        tags=tags,
    )
