"""Shot-boundary (cut) detection and segment extraction.

The paper delegates cut detection to the AT&T TRECVID 2007 system [18] and
builds signatures over the *segments between adjacent cuts*.  We substitute
an adaptive-threshold frame-difference detector: a cut is declared between
frames ``t`` and ``t+1`` when their mean absolute difference exceeds a
multiple of the profile's *median* (with an absolute floor to suppress cuts
in nearly static footage).  The median is robust to the cuts themselves —
a mean/std threshold degrades exactly when a clip contains several strong
cuts, since the cuts inflate the statistics they are tested against.  On
the synthetic substrate — whose shots have genuinely discontinuous
statistics at boundaries — this recovers boundaries reliably, which is all
the signature layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.clip import VideoClip
from repro.video.frame import frame_difference

__all__ = ["Segment", "detect_cuts", "segment_clip"]


@dataclass(frozen=True)
class Segment:
    """A contiguous run of frames between two adjacent cuts.

    ``start`` is inclusive, ``end`` exclusive, mirroring Python slicing.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid segment bounds [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of frames in the segment."""
        return self.end - self.start

    def frames_of(self, clip: VideoClip) -> np.ndarray:
        """Slice this segment's frames out of *clip*."""
        return clip.frames[self.start:self.end]


def difference_profile(clip: VideoClip) -> np.ndarray:
    """Mean absolute difference between each pair of adjacent frames.

    Returns an array of length ``num_frames - 1`` (empty for single-frame
    clips).
    """
    t = clip.num_frames
    return np.array(
        [frame_difference(clip.frames[i], clip.frames[i + 1]) for i in range(t - 1)],
        dtype=np.float64,
    )


def detect_cuts(
    clip: VideoClip,
    median_factor: float = 3.0,
    min_abs_difference: float = 8.0,
) -> list[int]:
    """Return cut positions: indices ``i`` such that a cut separates frames
    ``i-1`` and ``i``.

    Parameters
    ----------
    clip:
        The clip to analyse.
    median_factor:
        A difference must exceed ``median_factor * median(profile)`` to be
        a cut; the median is robust against the cut spikes themselves.
    min_abs_difference:
        Absolute floor on the frame difference; prevents a static clip's
        noise from producing spurious cuts.
    """
    if median_factor <= 1.0:
        raise ValueError(f"median_factor must exceed 1, got {median_factor}")
    profile = difference_profile(clip)
    if profile.size == 0:
        return []
    threshold = max(
        median_factor * float(np.median(profile)),
        min_abs_difference,
    )
    return [int(i) + 1 for i in np.nonzero(profile > threshold)[0]]


def segment_clip(
    clip: VideoClip,
    median_factor: float = 3.0,
    min_abs_difference: float = 8.0,
    min_segment_length: int = 2,
) -> list[Segment]:
    """Split *clip* into shot segments at detected cuts.

    Segments shorter than *min_segment_length* are merged into their left
    neighbour (or absorbed by the following segment when they open the
    clip), so downstream q-gram keyframe selection always has material to
    work with.  At least one segment — the whole clip — is always returned.
    """
    cuts = detect_cuts(clip, median_factor, min_abs_difference)
    boundaries = [0, *cuts, clip.num_frames]
    segments: list[Segment] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end <= start:
            continue
        if segments and (end - start) < min_segment_length:
            previous = segments.pop()
            segments.append(Segment(previous.start, end))
        elif not segments and (end - start) < min_segment_length:
            # Too-short opening run: extend it to meet the minimum (bounded
            # by the clip itself); the next iteration merges into it.
            segments.append(Segment(start, end))
        else:
            segments.append(Segment(start, end))
    if not segments:
        segments.append(Segment(0, clip.num_frames))
    return segments
