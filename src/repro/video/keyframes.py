"""Keyframe selection and q-gram construction over shot segments.

The cuboid signature of Section 4.1 is built over a *video q-gram*: ``q``
temporally consecutive keyframes (the paper simplifies to bigrams, q = 2).
This module selects evenly spaced keyframes from a segment and groups them
into q-grams.
"""

from __future__ import annotations

import numpy as np

from repro.video.clip import VideoClip
from repro.video.shots import Segment

__all__ = ["select_keyframes", "qgrams", "segment_qgrams"]


def select_keyframes(
    clip: VideoClip, segment: Segment, count: int
) -> list[np.ndarray]:
    """Select *count* evenly spaced keyframes from *segment* of *clip*.

    When the segment has fewer frames than *count*, frames are repeated (the
    q-gram machinery still needs ``q`` keyframes); even spacing otherwise.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    indices = np.linspace(segment.start, segment.end - 1, count)
    return [clip.frames[int(round(i))] for i in indices]


def qgrams(keyframes: list[np.ndarray], q: int) -> list[list[np.ndarray]]:
    """Group *keyframes* into overlapping runs of length *q*.

    A list of ``len(keyframes) - q + 1`` q-grams; if there are fewer than
    ``q`` keyframes the single available q-gram pads by repeating the last
    keyframe.
    """
    if q < 2:
        raise ValueError(f"q must be >= 2, got {q}")
    if not keyframes:
        raise ValueError("need at least one keyframe")
    if len(keyframes) < q:
        padded = list(keyframes) + [keyframes[-1]] * (q - len(keyframes))
        return [padded]
    return [keyframes[i:i + q] for i in range(len(keyframes) - q + 1)]


def segment_qgrams(
    clip: VideoClip,
    segment: Segment,
    q: int = 2,
    keyframes_per_segment: int = 3,
) -> list[list[np.ndarray]]:
    """Convenience: keyframes of *segment* grouped into q-grams."""
    frames = select_keyframes(clip, segment, keyframes_per_segment)
    return qgrams(frames, q)
