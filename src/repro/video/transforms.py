"""Editing transforms that manufacture near-duplicate video variants.

The paper stresses that "videos are user uploaded data in Youtube, and a
large portion of them have been edited or undergone different variations" —
this is exactly why cuboid signatures + EMD beat global color histograms and
rigid sequence measures (ERP/DTW) in its Figure 7 and Figure 10.

This module implements the standard near-duplicate editing operations from
the video copy-detection literature and composes them into random edit
chains.  Applying a chain to a master clip yields a *derived* clip whose
``lineage`` points back to the master, giving the evaluation harness exact
ground truth about content relevance.

All transforms are pure: they return a new :class:`VideoClip` and never
mutate their input.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.video.clip import VideoClip
from repro.video.frame import INTENSITY_MAX, resize_nearest

__all__ = [
    "Transform",
    "adjust_brightness",
    "adjust_contrast",
    "add_noise",
    "crop_and_rescale",
    "letterbox",
    "temporal_crop",
    "frame_drop",
    "frame_insert",
    "shuffle_shots_noop_safe",
    "random_edit_chain",
    "derive_variant",
]

#: A transform maps ``(clip, rng) -> clip``.
Transform = Callable[[VideoClip, np.random.Generator], VideoClip]


def _with_frames(clip: VideoClip, frames: np.ndarray, suffix: str) -> VideoClip:
    """Build a derived clip around *frames*, preserving community metadata."""
    return VideoClip(
        video_id=f"{clip.video_id}{suffix}",
        frames=np.clip(frames, 0.0, INTENSITY_MAX).astype(np.float32),
        fps=clip.fps,
        title=clip.title,
        topic=clip.topic,
        lineage=clip.root_id(),
        tags=clip.tags,
    )


def adjust_brightness(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Shift every pixel by a random offset in ``[-25, 25]``.

    A *global* photometric change: cuboid signatures are invariant to it by
    construction (they encode intensity *changes*, not absolute levels)
    while color-histogram features are not.
    """
    offset = float(rng.uniform(-25.0, 25.0))
    return _with_frames(clip, clip.frames + offset, ":bright")


def adjust_contrast(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Scale intensities about their mean by a factor in ``[0.8, 1.2]``."""
    factor = float(rng.uniform(0.8, 1.2))
    mean = clip.frames.mean()
    return _with_frames(clip, mean + factor * (clip.frames - mean), ":contrast")


def add_noise(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Add i.i.d. Gaussian noise (sigma in ``[1, 4]``) — re-encoding proxy."""
    sigma = float(rng.uniform(1.0, 4.0))
    noise = rng.normal(0.0, sigma, size=clip.frames.shape)
    return _with_frames(clip, clip.frames + noise, ":noise")


def crop_and_rescale(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Crop up to 15% from each border and rescale back to the original size.

    A *spatial* edit: it shifts content within the frame, the case the paper
    notes ordinal signatures cannot handle but EMD-backed cuboids can.
    """
    t, h, w = clip.frames.shape
    top = int(rng.integers(0, max(1, h // 7)))
    left = int(rng.integers(0, max(1, w // 7)))
    bottom = h - int(rng.integers(0, max(1, h // 7)))
    right = w - int(rng.integers(0, max(1, w // 7)))
    frames = np.stack(
        [resize_nearest(clip.frames[i, top:bottom, left:right], h, w) for i in range(t)]
    )
    return _with_frames(clip, frames, ":crop")


def letterbox(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Black out horizontal bands at the top and bottom (aspect-ratio edit)."""
    t, h, w = clip.frames.shape
    band = int(rng.integers(1, max(2, h // 8)))
    frames = clip.frames.copy()
    frames[:, :band, :] = 0.0
    frames[:, h - band:, :] = 0.0
    return _with_frames(clip, frames, ":letterbox")


def temporal_crop(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Keep a random contiguous subsequence of at least half the frames."""
    t = clip.num_frames
    keep = int(rng.integers(max(2, t // 2), t + 1))
    start = int(rng.integers(0, t - keep + 1))
    return _with_frames(clip, clip.frames[start:start + keep], ":tcrop")


def frame_drop(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Drop up to 10% of frames at random positions (frame-rate change)."""
    t = clip.num_frames
    n_drop = int(rng.integers(0, max(1, t // 10) + 1))
    if n_drop == 0 or t - n_drop < 2:
        return _with_frames(clip, clip.frames, ":drop")
    drop = rng.choice(t, size=n_drop, replace=False)
    keep = np.setdiff1d(np.arange(t), drop)
    return _with_frames(clip, clip.frames[keep], ":drop")


def frame_insert(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Insert duplicated frames (stutter / slow-motion segment)."""
    t = clip.num_frames
    n_ins = int(rng.integers(1, max(2, t // 10) + 1))
    positions = np.sort(rng.integers(0, t, size=n_ins))
    frames = list(clip.frames)
    for shift, pos in enumerate(positions):
        frames.insert(int(pos) + shift, clip.frames[int(pos)].copy())
    return _with_frames(clip, np.stack(frames), ":insert")


def shuffle_shots_noop_safe(clip: VideoClip, rng: np.random.Generator) -> VideoClip:
    """Swap the first and second halves of the clip (sequence re-editing).

    This is the transform that defeats whole-sequence measures (ERP, DTW)
    while κJ — a set measure over segment signatures — is unaffected, which
    drives the Figure 7 result.
    """
    t = clip.num_frames
    if t < 4:
        return _with_frames(clip, clip.frames, ":reorder")
    mid = t // 2
    frames = np.concatenate([clip.frames[mid:], clip.frames[:mid]], axis=0)
    return _with_frames(clip, frames, ":reorder")


#: The default pool of editing operations used by :func:`random_edit_chain`.
DEFAULT_TRANSFORMS: tuple[Transform, ...] = (
    adjust_brightness,
    adjust_contrast,
    add_noise,
    crop_and_rescale,
    letterbox,
    temporal_crop,
    frame_drop,
    frame_insert,
    shuffle_shots_noop_safe,
)


def random_edit_chain(
    rng: np.random.Generator,
    min_ops: int = 1,
    max_ops: int = 3,
    pool: Sequence[Transform] = DEFAULT_TRANSFORMS,
) -> list[Transform]:
    """Draw a random chain of ``min_ops..max_ops`` editing operations."""
    if not 1 <= min_ops <= max_ops:
        raise ValueError(f"invalid op-count range [{min_ops}, {max_ops}]")
    n_ops = int(rng.integers(min_ops, max_ops + 1))
    indices = rng.choice(len(pool), size=n_ops, replace=False)
    return [pool[i] for i in indices]


def derive_variant(
    clip: VideoClip,
    variant_id: str,
    rng: np.random.Generator,
    chain: Sequence[Transform] | None = None,
) -> VideoClip:
    """Apply an edit chain to *clip* and return the derived near-duplicate.

    The result's ``video_id`` is *variant_id* and its ``lineage`` points at
    the master's lineage root, so chains of edits still trace to the
    original content.
    """
    operations = list(chain) if chain is not None else random_edit_chain(rng)
    result = clip
    for operation in operations:
        result = operation(result, rng)
    return VideoClip(
        video_id=variant_id,
        frames=result.frames,
        fps=clip.fps,
        title=clip.title,
        topic=clip.topic,
        lineage=clip.root_id(),
        tags=clip.tags,
    )
