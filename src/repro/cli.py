"""Command-line interface: generate, index, recommend, explain, evaluate.

Installed as ``python -m repro.cli`` (no console-script entry point is
registered so offline legacy installs stay trivial).  Subcommands:

* ``generate``  — create a synthetic sharing community and save it;
* ``index``     — build a CommunityIndex over a saved dataset and save it;
  ``--shards S`` instead partitions the catalogue across S shards
  (``--router hash|zorder``) and writes a sharded deployment directory;
* ``recommend`` — top-K recommendations for a clicked video;
* ``ingest``    — apply live updates (add/retire videos, comment batches)
  to a saved index and save the result; ``--wal`` journals every mutation
  to a write-ahead log first, so a crash mid-session loses nothing.
  Pointed at a sharded deployment directory (or with ``--shards``),
  mutations route through the shard facade and log to the per-shard WALs;
* ``recover``   — rebuild an index from a snapshot plus its WAL and save
  the repaired checkpoint; ``--shards`` recovers a whole sharded
  deployment (every shard replays its own WAL, in parallel);
* ``explain``   — the evidence behind one (query, candidate) pair;
* ``evaluate``  — AR/AC/MAP of a chosen method over the Table-2 workload;
* ``stats``     — run sample queries and print the metrics snapshot
  (Prometheus text exposition or JSON) plus index-level gauges; on a
  sharded deployment the snapshot carries the per-shard breakdown
  (``repro_shard_videos{shard=...}`` et al.);
* ``faults``    — list the registered crash points and injectable fault
  classes (the durability + serving injection matrix);
* ``serve-soak`` — run the seeded chaos soak (concurrent writers vs
  readers over the serving gateway) and report its invariants;
  ``--shards S`` soaks the scatter-gather gateway instead (writer skew,
  one-shard fault bursts, per-shard breakers);
* ``serve``     — run the HTTP serving front-end (DESIGN §14) over a saved
  index or sharded deployment: per-request deadlines via ``X-Deadline-Ms``,
  per-client rate limiting, an epoch-keyed response cache, durable
  interaction logging with periodic folds into the index, ``/healthz`` /
  ``/readyz`` / ``/stats``, and graceful drain on SIGTERM (stop accepting,
  finish in-flight within ``--drain-s``, flush the interaction log);
  ``--chaos-*`` flags self-inject network faults for the netchaos soak;
* ``load``      — drive a running server with the bundled retrying client
  (jittered backoff honoring ``Retry-After``, retry budget) and report
  RPS + hit/miss latency percentiles; ``--out`` records one JSON line per
  request for post-hoc (oracle) analysis.

``stats --url`` scrapes a *running* server's ``/stats`` endpoint instead
of rebuilding an index locally.

``recommend --deadline-ms`` bounds one query's candidate scan; an expired
deadline exits 0 with the best-effort partial ranking and a stderr note.
A request shed by the serving gateway's admission control surfaces as a
typed :class:`~repro.errors.OverloadedError` -> exit code 2.

``recommend --trace`` additionally prints the per-query span tree — the
Fig.-6-style breakdown of where the query spent its time (candidate
generation, κJ scoring, SAR scoring, fusion/top-k).

Every command is deterministic given the dataset/seed, so CLI sessions
are reproducible end to end.  Missing or corrupt snapshot/WAL files —
and unknown video/method ids surfacing as ``KeyError`` — exit with code
2 and a one-line typed error instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]

#: Recommender factories selectable with ``--method``.
METHOD_CHOICES = ("csf-sar-h", "csf-sar", "csf", "cr", "sr", "knn", "affrf")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online Video Recommendation in Sharing Community (SIGMOD 2015) reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic community")
    generate.add_argument("output", help="output path (.json or .json.gz)")
    generate.add_argument("--hours", type=float, default=10.0, help="dataset size in video-hours")
    generate.add_argument("--seed", type=int, default=2015, help="master seed")

    index = commands.add_parser("index", help="build and save a community index")
    index.add_argument("dataset", help="dataset file from `generate`")
    index.add_argument("output", help="output index path (.json.gz)")
    index.add_argument("--omega", type=float, default=0.7, help="fusion weight")
    index.add_argument("--k", type=int, default=60, help="number of sub-communities")
    index.add_argument("--no-lsb", action="store_true", help="skip the LSB content index")
    index.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the catalogue across this many shards and write a "
        "sharded deployment directory instead of one index file",
    )
    index.add_argument(
        "--router",
        choices=("hash", "zorder"),
        default="hash",
        help="shard placement: video-id hash (default) or Z-order key range",
    )

    recommend = commands.add_parser("recommend", help="recommend for a clicked video")
    recommend.add_argument("index", help="index file from `index`")
    recommend.add_argument("video", help="the clicked video id")
    recommend.add_argument("--top-k", type=int, default=10)
    recommend.add_argument(
        "--method",
        choices=METHOD_CHOICES,
        default="csf-sar-h",
    )
    recommend.add_argument(
        "--trace",
        action="store_true",
        help="print the per-stage span tree of the query (candidate "
        "generation, content scoring, social scoring, fusion/top-k)",
    )
    recommend.add_argument(
        "--deadline-ms",
        type=float,
        help="per-request deadline in milliseconds; an expired deadline "
        "returns the best-effort partial ranking (with a note on stderr) "
        "instead of failing",
    )

    faults = commands.add_parser(
        "faults", help="inspect the fault-injection surface"
    )
    faults.add_argument(
        "--list",
        action="store_true",
        dest="list_points",
        help="print every registered crash point and the injectable "
        "serving fault classes",
    )

    serve_soak = commands.add_parser(
        "serve-soak",
        help="run the seeded chaos soak (concurrent writers vs readers over "
        "the serving gateway) and report its invariants",
    )
    serve_soak.add_argument("--writers", type=int, default=4)
    serve_soak.add_argument("--readers", type=int, default=16)
    serve_soak.add_argument(
        "--queries", type=int, default=2000, help="attempted queries (total)"
    )
    serve_soak.add_argument("--seed", type=int, default=2015)
    serve_soak.add_argument(
        "--shards",
        type=int,
        default=1,
        help="soak a sharded scatter-gather gateway over this many shards "
        "(writer skew, one-shard fault bursts, per-shard breakers)",
    )
    serve_soak.add_argument(
        "--router",
        choices=("hash", "zorder"),
        default="hash",
        help="shard placement for --shards > 1",
    )
    serve_soak.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the post-hoc serial-oracle parity verification",
    )
    serve_soak.add_argument(
        "--output", help="also write the full soak report JSON to this path"
    )

    ingest = commands.add_parser(
        "ingest", help="apply live updates (add/retire/comments) to a saved index"
    )
    ingest.add_argument("index", help="index file from `index`")
    ingest.add_argument("output", help="output path for the updated index")
    ingest.add_argument(
        "--add",
        default="",
        help="comma-separated video ids to ingest (requires --add-from)",
    )
    ingest.add_argument(
        "--add-from",
        help="dataset file providing the records of the --add videos",
    )
    ingest.add_argument(
        "--retire", default="", help="comma-separated video ids to retire"
    )
    ingest.add_argument(
        "--apply-months",
        help="fold the dataset's comment log for months A-B (e.g. 12-15) "
        "into the social state and advance the watermark",
    )
    ingest.add_argument(
        "--incremental",
        action="store_true",
        help="apply comments via Figure-5 incremental maintenance instead of "
        "exact re-derivation",
    )
    ingest.add_argument(
        "--wal",
        help="append every mutation to this write-ahead log before applying "
        "it (crash mid-ingest -> `recover` rebuilds the exact state); "
        "sharded deployments log to their per-shard WALs instead",
    )
    ingest.add_argument(
        "--shards",
        action="store_true",
        help="treat INDEX and OUTPUT as sharded deployment directories "
        "(auto-detected when INDEX holds a deployment manifest)",
    )

    recover = commands.add_parser(
        "recover", help="rebuild an index from a snapshot plus its WAL"
    )
    recover.add_argument(
        "snapshot",
        help="last good index snapshot, or (with --shards) the sharded "
        "deployment directory",
    )
    recover.add_argument(
        "wal",
        help="write-ahead log (may be missing or torn), or (with --shards) "
        "the output deployment directory",
    )
    recover.add_argument(
        "output",
        nargs="?",
        help="output path for the recovered index (omit with --shards)",
    )
    recover.add_argument(
        "--shards",
        action="store_true",
        help="recover a whole sharded deployment: every shard loads its "
        "snapshot and replays its own WAL, in parallel",
    )

    explain = commands.add_parser("explain", help="explain one recommendation")
    explain.add_argument("index", help="index file from `index`")
    explain.add_argument("query", help="the clicked video id")
    explain.add_argument("candidate", help="the recommended video id")

    evaluate = commands.add_parser("evaluate", help="AR/AC/MAP over the Table-2 sources")
    evaluate.add_argument("index", help="index file from `index`")
    evaluate.add_argument(
        "--methods",
        default="csf,sr,cr,affrf",
        help="comma-separated methods to compare",
    )

    serve = commands.add_parser(
        "serve",
        help="run the HTTP serving front-end over a saved index or "
        "sharded deployment (graceful drain on SIGTERM)",
    )
    serve.add_argument("index", help="index file or sharded deployment directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8315, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--shards",
        action="store_true",
        help="treat INDEX as a sharded deployment directory (auto-detected "
        "when INDEX holds a deployment manifest)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        help="default per-request deadline applied when the client sends "
        "no X-Deadline-Ms header",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-client token-bucket rate in requests/second (0 = off)",
    )
    serve.add_argument(
        "--burst", type=int, default=20, help="token-bucket burst capacity"
    )
    serve.add_argument(
        "--drain-s",
        type=float,
        default=5.0,
        help="graceful-drain budget: seconds to finish in-flight requests "
        "after SIGTERM before the listener closes anyway",
    )
    serve.add_argument(
        "--cache",
        type=int,
        default=1024,
        help="epoch-keyed response cache entries (0 = off)",
    )
    serve.add_argument(
        "--apply-every",
        type=int,
        default=0,
        help="fold logged interactions into the index every N records "
        "(publishing a fresh epoch); 0 logs only — a restart still "
        "replays the whole log",
    )
    serve.add_argument(
        "--log",
        help="interaction log path (default: INDEX + '.interactions.wal', "
        "or 'interactions.wal' inside a deployment directory)",
    )
    serve.add_argument("--max-concurrency", type=int, default=8)
    serve.add_argument("--queue-depth", type=int, default=16)
    serve.add_argument(
        "--coalesce",
        action="store_true",
        help="defense: collapse concurrent identical memo misses into one "
        "scan (flash-crowd singleflight)",
    )
    serve.add_argument(
        "--hot-priority",
        action="store_true",
        help="defense: admit memo-resident (hot) queries ahead of queued "
        "cold scans when the admission gate is backlogged",
    )
    serve.add_argument(
        "--min-publish-interval",
        type=float,
        default=0.0,
        help="defense: minimum seconds between epoch publications "
        "(retire-storm backpressure; 0 = publish per mutation)",
    )
    serve.add_argument(
        "--quarantine",
        action="store_true",
        help="defense: divert burst-anomalous commenters into the "
        "WAL-logged spam quarantine instead of the social state",
    )
    serve.add_argument(
        "--chaos-slow-every",
        type=int,
        default=0,
        help="netchaos: sleep --chaos-slow-ms before every Nth request",
    )
    serve.add_argument("--chaos-slow-ms", type=float, default=20.0)
    serve.add_argument(
        "--chaos-abort-every",
        type=int,
        default=0,
        help="netchaos: truncate every Nth response mid-body and close "
        "the connection",
    )

    load = commands.add_parser(
        "load", help="drive a running server with the bundled retrying client"
    )
    load.add_argument("url", help="server base URL (from `serve`)")
    load.add_argument("--queries", type=int, default=1000, help="attempted requests")
    load.add_argument("--concurrency", type=int, default=4)
    load.add_argument("--top-k", type=int, default=10)
    load.add_argument(
        "--deadline-ms", type=float, help="X-Deadline-Ms sent on every query"
    )
    load.add_argument(
        "--interact-every",
        type=int,
        default=0,
        help="every Nth request per worker POSTs a durable interaction "
        "instead of querying",
    )
    load.add_argument("--seed", type=int, default=2015)
    load.add_argument(
        "--skew",
        default="uniform",
        help="query-key distribution: 'uniform' or 'zipf:<s>' — seeded "
        "rank-weighted (1/rank^s) sampling over the catalogue order, the "
        "hot-key skew the defense layer's coalescing is built for",
    )
    load.add_argument("--attempts", type=int, default=4, help="tries per request")
    load.add_argument(
        "--out", help="write one JSON line per request (the netchaos oracle input)"
    )

    stats = commands.add_parser(
        "stats", help="metrics snapshot of an index (runs sample queries)"
    )
    stats.add_argument(
        "index", nargs="?", help="index file from `index` (omit with --url)"
    )
    stats.add_argument(
        "--url",
        help="scrape a running server's /stats endpoint instead of "
        "rebuilding an index locally",
    )
    stats.add_argument(
        "--queries",
        type=int,
        default=3,
        help="sample queries to run before snapshotting (0 = index gauges only)",
    )
    stats.add_argument("--top-k", type=int, default=10)
    stats.add_argument("--method", choices=METHOD_CHOICES, default="csf-sar-h")
    stats.add_argument(
        "--serving",
        action="store_true",
        help=(
            "route the sample queries through the ServingGateway twice "
            "(second pass hits the query memo), so the snapshot includes "
            "the repro_serving_* counters"
        ),
    )
    stats.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="Prometheus text exposition (default) or the JSON snapshot",
    )
    stats.add_argument(
        "--output", help="also write the JSON snapshot to this path"
    )
    return parser


def _make_recommender(index, method: str):
    from repro.core.affrf import AffrfRecommender
    from repro.core.knn import KTopScoreVideoSearch
    from repro.core.recommender import (
        content_recommender,
        csf_recommender,
        csf_sar_h_recommender,
        csf_sar_recommender,
        social_recommender,
    )

    factories = {
        "csf-sar-h": csf_sar_h_recommender,
        "csf-sar": csf_sar_recommender,
        "csf": csf_recommender,
        "cr": content_recommender,
        "sr": social_recommender,
        "knn": KTopScoreVideoSearch,
        "affrf": AffrfRecommender,
    }
    return factories[method](index)


def _cmd_generate(args) -> int:
    from repro.community import CommunityConfig, generate_community
    from repro.io import save_dataset

    dataset = generate_community(CommunityConfig(hours=args.hours, seed=args.seed))
    save_dataset(dataset, args.output)
    print(
        f"wrote {dataset.num_videos} videos / {dataset.num_users} users / "
        f"{len(dataset.comments)} comments to {args.output}"
    )
    return 0


def _cmd_index(args) -> int:
    from repro.core import CommunityIndex, RecommenderConfig
    from repro.io import load_dataset, save_index

    dataset = load_dataset(args.dataset)
    config = RecommenderConfig(omega=args.omega, k=args.k)
    if args.shards > 1:
        from repro.sharding import ShardedIndex, save_shards

        sharded = ShardedIndex.build(
            dataset,
            config,
            args.shards,
            router=args.router,
            build_lsb=not args.no_lsb,
        )
        save_shards(sharded, args.output)
        sizes = sharded.shard_sizes()
        print(
            f"indexed {sum(sizes)} videos across {args.shards} "
            f"{args.router} shards {sizes} -> {args.output}"
        )
        return 0
    index = CommunityIndex(dataset, config, build_lsb=not args.no_lsb)
    save_index(index, args.output)
    print(
        f"indexed {len(index.series)} videos "
        f"({sum(len(s) for s in index.series.values())} signatures, "
        f"{index.social.k} sub-communities) -> {args.output}"
    )
    return 0


def _cmd_recommend(args) -> int:
    import inspect

    from repro.io import load_index

    index = load_index(args.index)
    if args.video not in index.series:
        print(f"error: unknown video {args.video!r}", file=sys.stderr)
        return 2
    recommender = _make_recommender(index, args.method)
    supported = inspect.signature(recommender.recommend).parameters
    trace = None
    if args.trace:
        if "trace" in supported:
            from repro.obs import QueryTrace

            trace = QueryTrace("recommend")
        else:
            print(
                f"note: --trace is not supported by method {args.method!r}",
                file=sys.stderr,
            )
    extra = {}
    if trace is not None:
        extra["trace"] = trace
    if args.deadline_ms is not None:
        if "deadline" in supported:
            import time

            extra["deadline"] = time.monotonic() + args.deadline_ms / 1000.0
        else:
            print(
                f"note: --deadline-ms is not supported by method {args.method!r}",
                file=sys.stderr,
            )
    try:
        results = recommender.recommend(args.video, args.top_k, **extra)
    finally:
        closer = getattr(recommender, "close", None)
        if closer is not None:
            closer()
    record = index.dataset.records[args.video]
    if getattr(results, "degraded", False):
        for reason in results.reasons:
            print(f"note: degraded serving ({reason})", file=sys.stderr)
    if getattr(results, "partial", False):
        print(
            f"note: partial ranking ({results.scored}/{results.total} "
            "candidates scored before the deadline)",
            file=sys.stderr,
        )
    print(f"query {args.video} (topic {index.dataset.topics[record.topic]!r}):")
    for rank, video_id in enumerate(results, start=1):
        title = index.dataset.records[video_id].title
        print(f"{rank:>3}. {video_id}  {title}")
    if trace is not None:
        print()
        print(trace.format_tree())
    return 0


def _cmd_ingest_sharded(args) -> int:
    """Apply live updates to a sharded deployment directory.

    The deployment is recovered (snapshot + per-shard WAL replay), the
    mutations route through the :class:`~repro.sharding.ShardedIndex`
    facade — content to its owner shard, social state everywhere — with
    every mutation logged to the owning shard's WAL, and the result is
    checkpointed to the output deployment.
    """
    from repro.io import load_dataset
    from repro.sharding import attach_wals, recover_shards, save_shards

    if args.wal:
        print(
            "error: --wal applies to single-index files; a sharded "
            "deployment logs to its per-shard WALs",
            file=sys.stderr,
        )
        return 2
    sharded = recover_shards(args.index)
    wals = attach_wals(sharded, args.index)
    added = retired = applied = 0
    add_ids = [vid for vid in args.add.split(",") if vid]
    if add_ids and not args.add_from:
        print("error: --add requires --add-from DATASET", file=sys.stderr)
        return 2
    try:
        if add_ids:
            source = load_dataset(args.add_from)
            for video_id in add_ids:
                if video_id not in source.records:
                    print(
                        f"error: unknown video {video_id!r} in {args.add_from}",
                        file=sys.stderr,
                    )
                    return 2
                history = [
                    c for c in source.comments if c.video_id == video_id
                ]
                for shard in sharded.shards:
                    shard.add_comment_history(history)
                sharded.ingest_video(source.records[video_id])
                added += 1
        for video_id in (vid for vid in args.retire.split(",") if vid):
            sharded.retire_video(video_id)
            retired += 1
        if args.apply_months:
            first, _, last = args.apply_months.partition("-")
            first, last = int(first), int(last or first)
            indexed = set(sharded.video_ids)
            pairs = [
                (c.user_id, c.video_id)
                for c in sharded.shards[0].dataset.comments
                if first <= c.month <= last and c.video_id in indexed
            ]
            sharded.apply_comments(pairs, incremental=args.incremental)
            sharded.advance_watermark(last)
            applied = len(pairs)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        for wal in wals:
            wal.close()
    save_shards(sharded, args.output)
    sizes = sharded.shard_sizes()
    seqs = [shard.wal_seq for shard in sharded.shards]
    print(
        f"ingested {added}, retired {retired}, applied {applied} comments -> "
        f"{args.output} ({sum(sizes)} videos across {sharded.num_shards} "
        f"shards {sizes}, wal seqs {seqs})"
    )
    return 0


def _cmd_ingest(args) -> int:
    from repro.io import WriteAheadLog, load_dataset, load_index, save_index
    from repro.sharding import is_sharded_deployment

    if args.shards or is_sharded_deployment(args.index):
        if not is_sharded_deployment(args.index):
            print(
                f"error: {args.index!r} is not a sharded deployment directory",
                file=sys.stderr,
            )
            return 2
        return _cmd_ingest_sharded(args)
    index = load_index(args.index)
    wal = None
    if args.wal:
        wal = WriteAheadLog(args.wal)
        index.attach_wal(wal)
    added = retired = applied = 0
    add_ids = [vid for vid in args.add.split(",") if vid]
    if add_ids and not args.add_from:
        print("error: --add requires --add-from DATASET", file=sys.stderr)
        return 2
    try:
        if add_ids:
            source = load_dataset(args.add_from)
            for video_id in add_ids:
                if video_id not in source.records:
                    print(
                        f"error: unknown video {video_id!r} in {args.add_from}",
                        file=sys.stderr,
                    )
                    return 2
                # Carry the video's comment history along so its social
                # descriptor matches what a cold build would derive.
                index.add_comment_history(
                    c for c in source.comments if c.video_id == video_id
                )
                index.ingest_video(source.records[video_id])
                added += 1
        for video_id in (vid for vid in args.retire.split(",") if vid):
            index.retire_video(video_id)
            retired += 1
        if args.apply_months:
            first, _, last = args.apply_months.partition("-")
            first, last = int(first), int(last or first)
            pairs = [
                (c.user_id, c.video_id)
                for c in index.dataset.comments
                if first <= c.month <= last and c.video_id in index.series
            ]
            index.apply_comments(pairs, incremental=args.incremental)
            index.advance_watermark(last)
            applied = len(pairs)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if wal is not None:
            wal.close()
    save_index(index, args.output)
    wal_note = f", wal seq {index.wal_seq}" if args.wal else ""
    print(
        f"ingested {added}, retired {retired}, applied {applied} comments -> "
        f"{args.output} ({len(index.series)} videos, watermark month "
        f"{index.up_to_month}, revisions {index.revisions}{wal_note})"
    )
    return 0


def _cmd_recover(args) -> int:
    from repro.io import recover, save_index

    if args.shards:
        if args.output is not None:
            print(
                "error: --shards takes DEPLOYMENT and OUTPUT directories "
                "only (omit the third argument)",
                file=sys.stderr,
            )
            return 2
        from repro.sharding import recover_shards, save_shards

        sharded = recover_shards(args.snapshot)
        save_shards(sharded, args.wal)
        for shard in sharded.shards:
            info = shard.recovery
            ops = (
                ", ".join(f"{op} x{n}" for op, n in sorted(info.ops.items()))
                or "none"
            )
            torn = ", torn tail dropped" if info.torn_tail else ""
            print(
                f"shard {shard.shard_id}: {len(shard.content.series)} videos "
                f"(replayed {info.replayed}, skipped {info.skipped}{torn}; "
                f"ops: {ops})"
            )
        sizes = sharded.shard_sizes()
        print(
            f"recovered {sum(sizes)} videos across {sharded.num_shards} "
            f"shards -> {args.wal}"
        )
        return 0
    if args.output is None:
        print("error: recover SNAPSHOT WAL OUTPUT", file=sys.stderr)
        return 2
    index = recover(args.snapshot, args.wal)
    info = index.recovery
    save_index(index, args.output)
    ops = ", ".join(f"{op} x{n}" for op, n in sorted(info.ops.items())) or "none"
    torn = ", torn tail dropped" if info.torn_tail else ""
    print(
        f"recovered {len(index.series)} videos (replayed {info.replayed} WAL "
        f"records, skipped {info.skipped} already in snapshot{torn}; "
        f"ops: {ops}) -> {args.output}"
    )
    return 0


def _cmd_explain(args) -> int:
    from repro.core.explain import explain_recommendation
    from repro.io import load_index

    index = load_index(args.index)
    for video in (args.query, args.candidate):
        if video not in index.series:
            print(f"error: unknown video {video!r}", file=sys.stderr)
            return 2
    explanation = explain_recommendation(index, args.query, args.candidate)
    print(explanation.summary())
    return 0


def _cmd_evaluate(args) -> int:
    from repro.community.workload import select_source_videos
    from repro.evaluation import JudgePanel, evaluate_method, format_table
    from repro.io import load_index

    index = load_index(args.index)
    sources = select_source_videos(index.dataset)
    panel = JudgePanel(index.dataset)
    methods = [method.strip().lower() for method in args.methods.split(",")]
    for method in methods:
        if method not in METHOD_CHOICES:
            print(
                f"error: unknown method {method!r}; "
                f"expected one of {', '.join(METHOD_CHOICES)}",
                file=sys.stderr,
            )
            return 2
    reports = []
    for method in methods:
        recommender = _make_recommender(index, method)
        reports.append(
            evaluate_method(method.upper(), recommender, sources, panel, close=True)
        )
    print(format_table(reports))
    return 0


def _cmd_stats_sharded(args) -> int:
    """Metrics snapshot of a sharded deployment: per-shard breakdown.

    Sample queries run through the scatter-gather gateway, so the
    snapshot carries the ``repro_sharded_*`` serving counters plus the
    per-shard ``repro_shard_epoch_id`` / ``repro_shard_videos`` gauges;
    index-level gauges get a ``repro_shard_wal_seq{shard=...}`` family
    on top.
    """
    import json

    from repro.obs import MetricsRegistry, use_metrics
    from repro.sharding import ShardedGateway, recover_shards

    sharded = recover_shards(args.index)
    registry = MetricsRegistry()
    with use_metrics(registry):
        if args.queries > 0:
            gateway = ShardedGateway(sharded)
            try:
                # Two identical passes, like --serving: miss then hit
                # the scatter memo.
                for _ in range(2):
                    for video_id in sharded.video_ids[: args.queries]:
                        gateway.recommend(video_id, args.top_k)
            finally:
                gateway.close()
    registry.set_gauge("repro_index_videos", len(sharded.video_ids))
    registry.set_gauge("repro_index_shards", sharded.num_shards)
    registry.set_gauge(
        "repro_index_subcommunities", sharded.shards[0].social_store.k
    )
    for shard in sharded.shards:
        label = str(shard.shard_id)
        registry.set_gauge(
            "repro_shard_videos", len(shard.content.series), shard=label
        )
        registry.set_gauge("repro_shard_wal_seq", shard.wal_seq, shard=label)
        registry.set_gauge(
            "repro_shard_watermark_month", shard.up_to_month, shard=label
        )
    snapshot = registry.snapshot()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(registry.to_prometheus(), end="")
    return 0


def _cmd_serve(args) -> int:
    import pathlib
    import signal
    import threading

    from repro.net import (
        ChaosSchedule,
        InteractionLog,
        NetConfig,
        RecommendService,
        ReproHTTPServer,
    )
    from repro.serving import GatewayConfig, ServingGateway
    from repro.sharding import is_sharded_deployment

    defense = None
    if (
        args.coalesce
        or args.hot_priority
        or args.min_publish_interval > 0
        or args.quarantine
    ):
        from repro.defense import DefenseConfig, init_defense_metrics

        defense = DefenseConfig(
            coalesce=args.coalesce,
            hot_priority=args.hot_priority,
            min_publish_interval=args.min_publish_interval,
            quarantine=args.quarantine,
        )
        init_defense_metrics()
    gateway_config = GatewayConfig(
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        defense=defense,
    )
    if args.shards or is_sharded_deployment(args.index):
        from repro.sharding import ShardedGateway, recover_shards

        if not is_sharded_deployment(args.index):
            print(
                f"error: {args.index!r} is not a sharded deployment directory",
                file=sys.stderr,
            )
            return 2
        sharded = recover_shards(args.index)
        gateway = ShardedGateway(sharded, config=gateway_config)
        videos, shards = len(sharded.video_ids), sharded.num_shards
        default_log = pathlib.Path(args.index) / "interactions.wal"
    else:
        from repro.io import load_index

        index = load_index(args.index)
        gateway = ServingGateway(index, config=gateway_config)
        videos, shards = len(index.series), 1
        default_log = pathlib.Path(f"{args.index}.interactions.wal")
    config = NetConfig(
        default_deadline_ms=args.deadline_ms,
        rate_limit=args.rate_limit,
        rate_burst=args.burst,
        drain_timeout=args.drain_s,
        cache_capacity=args.cache,
        apply_every=args.apply_every,
        defense=defense,
    )
    chaos = None
    if args.chaos_slow_every or args.chaos_abort_every:
        chaos = ChaosSchedule(
            slow_every=args.chaos_slow_every,
            slow_seconds=args.chaos_slow_ms / 1000.0,
            abort_every=args.chaos_abort_every,
        )
    log_path = pathlib.Path(args.log) if args.log else default_log
    service = RecommendService(gateway, InteractionLog(log_path), config)
    server = ReproHTTPServer(service, args.host, args.port, chaos=chaos)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    # The netchaos harness parses this line for the bound URL; keep the
    # "on http://" marker stable.
    print(
        f"serving {videos} videos across {shards} shard(s) on {server.url} "
        f"(interaction log {log_path}, {service.applied_seq} replayed)",
        flush=True,
    )
    stop.wait()
    leftover = server.drain(args.drain_s)
    closer = getattr(gateway, "close", None)
    if closer is not None:
        closer()
    note = f" ({leftover} still in flight at cutoff)" if leftover else ""
    print(f"drained{note}; interaction log flushed at seq {service.interactions.seq}")
    return 0


def _skew_sampler(skew: str, count: int):
    """``rng -> index`` sampler for ``repro load --skew``.

    ``uniform`` keeps the historical behaviour; ``zipf:<s>`` weights the
    catalogue's rank r at ``1/r^s`` (s=0 is uniform again, s~1 is classic
    web skew, s>=2 concentrates most queries on a handful of hot keys).
    Seeded inverse-CDF sampling, so a rerun replays the same key stream.
    """
    import bisect
    import itertools

    if skew == "uniform":
        return lambda rng: rng.randrange(count)
    if skew.startswith("zipf:"):
        exponent = float(skew.split(":", 1)[1])
        if exponent < 0:
            raise ValueError(f"zipf exponent must be >= 0, got {exponent}")
        weights = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
        total = sum(weights)
        cdf = list(itertools.accumulate(weight / total for weight in weights))
        return lambda rng: min(count - 1, bisect.bisect_left(cdf, rng.random()))
    raise ValueError(f"unknown --skew {skew!r} (expected 'uniform' or 'zipf:<s>')")


def _cmd_load(args) -> int:
    import json
    import random
    import threading
    import time

    from repro.errors import NetClientError
    from repro.net import RetryPolicy, RetryingClient
    from repro.obs import percentiles

    try:
        _skew_sampler(args.skew, 1)  # validate the spelling up front
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    policy = RetryPolicy(attempts=args.attempts)
    # The bootstrap client waits out a server that is still loading its
    # index (connection refused is a retryable GET failure).
    videos = RetryingClient(
        args.url, RetryPolicy(attempts=10, backoff=0.3), seed=args.seed
    ).videos()
    if not videos:
        print("error: server reports an empty catalogue", file=sys.stderr)
        return 2
    sample = _skew_sampler(args.skew, len(videos))
    rows: list[dict] = []
    rows_lock = threading.Lock()
    per_worker = [
        args.queries // args.concurrency
        + (1 if worker < args.queries % args.concurrency else 0)
        for worker in range(args.concurrency)
    ]

    def worker(worker_id: int) -> None:
        rng = random.Random(args.seed * 1009 + worker_id)
        client = RetryingClient(
            args.url,
            policy,
            client_id=f"load-{args.seed}-{worker_id}",
            seed=args.seed + worker_id,
        )
        for i in range(per_worker[worker_id]):
            interact = args.interact_every > 0 and i % args.interact_every == (
                args.interact_every - 1
            )
            video = videos[sample(rng)]
            row: dict = {
                "kind": "interaction" if interact else "recommend",
                "video": video,
                "client": client.client_id,
            }
            started = time.monotonic()
            try:
                if interact:
                    response = client.interaction(
                        f"viewer-{client.client_id}",
                        video,
                        watched_percent=rng.randrange(101),
                        liked=rng.choice((-1, 0, 1)),
                    )
                    row["status"] = response.status
                    row["body"] = response.json()
                else:
                    response = client.recommend(
                        video, args.top_k, deadline_ms=args.deadline_ms
                    )
                    row["status"] = response.status
                    row["cache"] = response.header("X-Cache")
                    row["body"] = response.json()
            except NetClientError as error:
                row["status"] = error.status
                row["error"] = str(error)
            except Exception as error:  # noqa: BLE001 - record, keep loading
                row["status"] = None
                row["error"] = str(error)
            row["ms"] = (time.monotonic() - started) * 1000.0
            with rows_lock:
                rows.append(row)

    started = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(worker_id,), daemon=True)
        for worker_id in range(args.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    if args.out:
        with open(args.out, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    by_status: dict = {}
    for row in rows:
        key = str(row["status"]) if row["status"] is not None else "conn"
        by_status[key] = by_status.get(key, 0) + 1
    ok_recommend = [r for r in rows if r["kind"] == "recommend" and r["status"] == 200]
    hits = [r["ms"] for r in ok_recommend if r.get("cache") == "hit"]
    misses = [r["ms"] for r in ok_recommend if r.get("cache") != "hit"]
    acked = sum(1 for r in rows if r["kind"] == "interaction" and r["status"] == 200)
    statuses = ", ".join(f"{n} x{s}" for s, n in sorted(by_status.items()))
    print(
        f"load done: {len(rows)} attempted in {elapsed:.1f}s "
        f"({len(rows) / elapsed:.0f} rps); {statuses}; "
        f"{acked} interactions acked"
    )
    for label, values in (("hit", hits), ("miss", misses)):
        if values:
            pct = percentiles(values, (50.0, 99.0))
            print(
                f"  recommend {label}: {len(values)} ok, "
                f"p50 {pct['p50']:.2f} ms, p99 {pct['p99']:.2f} ms"
            )
    return 0


def _cmd_stats(args) -> int:
    import json

    from repro.io import load_index
    from repro.obs import MetricsRegistry, use_metrics
    from repro.sharding import is_sharded_deployment

    if args.url:
        from repro.net import RetryingClient

        client = RetryingClient(args.url)
        if args.format == "json":
            snapshot = client.stats_snapshot("json")
            if args.output:
                with open(args.output, "w") as handle:
                    json.dump(snapshot, handle, indent=2, sort_keys=True)
                    handle.write("\n")
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(client.stats_snapshot("prom"), end="")
        return 0
    if args.index is None:
        print("error: stats needs an INDEX argument or --url", file=sys.stderr)
        return 2
    if is_sharded_deployment(args.index):
        return _cmd_stats_sharded(args)
    index = load_index(args.index)
    registry = MetricsRegistry()
    with use_metrics(registry):
        if args.queries > 0 and getattr(args, "serving", False):
            from repro.defense import init_defense_metrics
            from repro.serving.gateway import ServingGateway

            # Zero-register the repro_defense_* families so dashboards
            # see the full defense surface even before any attack.
            init_defense_metrics()
            gateway = ServingGateway(index)
            # Two identical passes: the first misses the query memo and
            # scans, the second hits it — both counter families land in
            # the snapshot.
            for _ in range(2):
                for video_id in index.video_ids[: args.queries]:
                    gateway.recommend(video_id, args.top_k)
        elif args.queries > 0:
            recommender = _make_recommender(index, args.method)
            try:
                for video_id in index.video_ids[: args.queries]:
                    recommender.recommend(video_id, args.top_k)
            finally:
                closer = getattr(recommender, "close", None)
                if closer is not None:
                    closer()
    registry.set_gauge("repro_index_videos", len(index.series))
    registry.set_gauge(
        "repro_index_signatures", sum(len(s) for s in index.series.values())
    )
    registry.set_gauge("repro_index_subcommunities", index.social_store.k)
    registry.set_gauge("repro_index_content_revision", index.content.revision)
    registry.set_gauge("repro_index_social_revision", index.social_store.revision)
    registry.set_gauge(
        "repro_social_available", 1 if index.social_store.available else 0
    )
    registry.set_gauge("repro_social_watermark_month", index.up_to_month)
    registry.set_gauge("repro_wal_seq", index.wal_seq)
    snapshot = registry.snapshot()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(registry.to_prometheus(), end="")
    return 0


def _cmd_faults(args) -> int:
    # Import the modules that register crash points at import time — the
    # durability writers and the serving gateway — so the listing is the
    # full injection matrix regardless of what the process touched so far.
    import repro.io.atomic  # noqa: F401
    import repro.io.wal  # noqa: F401
    import repro.serving.gateway  # noqa: F401
    from repro.testing.faults import (
        CRASH_POINTS,
        InjectedCrashError,
        InjectedFaultError,
        registered_crash_points,
    )

    if not args.list_points:
        print("nothing to do; try `faults --list`", file=sys.stderr)
        return 2
    points = registered_crash_points()
    print(f"{len(points)} registered crash points:")
    width = max(len(point) for point in points)
    for point in points:
        description = CRASH_POINTS.get(point, "")
        print(f"  {point:<{width}}  {description}")
    print()
    print("injectable fault classes:")
    for cls, meaning in (
        (InjectedCrashError, "process death at the point (abort_at)"),
        (InjectedFaultError, "transient dependency failure (fail_at; retryable)"),
    ):
        print(f"  {cls.__name__:<{width}}  {meaning}")
    print()
    print("serving fault handling (repro.errors):")
    print(f"  {'OverloadedError':<{width}}  admission shed the request (exit code 2)")
    print(f"  {'CircuitOpenError':<{width}}  social path short-circuited by the breaker")
    print(f"  {'TransientServingError':<{width}}  retryable dependency hiccup")
    return 0


def _cmd_serve_soak(args) -> int:
    import json

    from repro.testing.chaos import SoakConfig, run_soak

    report = run_soak(
        SoakConfig(
            writers=args.writers,
            readers=args.readers,
            queries=args.queries,
            seed=args.seed,
            shards=args.shards,
            router=args.router,
            verify=not args.no_verify,
        )
    )
    summary = report.to_dict()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        f"soak seed {report.config_seed}: {report.queries_total} served, "
        f"{report.queries_shed} shed ({report.shed_rate:.1%}), "
        f"{report.queries_degraded} degraded ({report.degraded_rate:.1%}), "
        f"{report.queries_partial} partial"
    )
    print(
        f"epochs {report.epochs_published} published / {report.epochs_retired} "
        f"retired / {report.epochs_live} live; breaker transitions "
        f"{len(report.breaker_transitions)}"
    )
    if report.shard_sizes:
        per_shard = ", ".join(
            f"shard {i}: {size} videos / {len(transitions)} breaker "
            "transitions"
            for i, (size, transitions) in enumerate(
                zip(report.shard_sizes, report.shard_breaker_transitions)
            )
        )
        print(
            f"{len(report.shard_sizes)} shards ({per_shard}); "
            f"{report.queries_memoized} memoized"
        )
    if report.latencies_ms:
        print(
            f"latency p50 {report.latencies_ms['p50']:.2f} ms, "
            f"p99 {report.latencies_ms['p99']:.2f} ms"
        )
    if report.parity_checked:
        print(
            f"oracle parity: {report.parity_checked - len(report.parity_failures)}"
            f"/{report.parity_checked} bit-identical"
        )
    if not report.ok:
        print(
            f"SOAK FAILED: {len(report.reader_errors)} reader errors, "
            f"{len(report.writer_errors)} writer errors, "
            f"{len(report.parity_failures)} parity failures"
            + (f" (schedule: {report.artifact_path})" if report.artifact_path else ""),
            file=sys.stderr,
        )
        return 1
    print("soak ok")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "index": _cmd_index,
    "recommend": _cmd_recommend,
    "ingest": _cmd_ingest,
    "recover": _cmd_recover,
    "explain": _cmd_explain,
    "evaluate": _cmd_evaluate,
    "stats": _cmd_stats,
    "faults": _cmd_faults,
    "serve-soak": _cmd_serve_soak,
    "serve": _cmd_serve,
    "load": _cmd_load,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Missing files and typed durability failures (corrupt snapshot or WAL,
    incompatible schema, unavailable social store) print one ``error:``
    line on stderr and exit 2 instead of dumping a traceback.  The same
    goes for ``KeyError`` escaping a handler — an unknown query video id
    (or method name) is a user error, not a crash.
    """
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except (FileNotFoundError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        detail = error.args[0] if error.args else error
        print(f"error: {detail}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
