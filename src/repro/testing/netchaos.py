"""Multi-process network chaos soak for the HTTP serving front-end.

Where :mod:`repro.testing.chaos` tortures the gateway *in process*, this
harness exercises the real wire path: a ``repro serve`` **subprocess**
(own interpreter, own signal handling) takes load from ``repro load``
subprocesses while the server's deterministic :class:`ChaosSchedule`
injects slow requests and mid-response connection aborts.  Mid-soak the
harness SIGTERMs the server — while load generators are still firing —
asserts a clean drain (exit 0), restarts it on the **same port** against
the same index and interaction log, and keeps loading.

Afterwards it proves the two promises the front-end makes:

* **Exactly-once interactions.**  Every interaction a client saw a 200
  for is durable in the log (zero lost), and no ``interaction_id`` was
  logged twice (zero duplicated) — across the drain, the restart and
  every abort-triggered client retry.
* **Bit-identical serving.**  Every 200 recommendation payload is
  replayed against a fresh oracle gateway over the same index file:
  responses are grouped by their ``applied_seq``, the oracle folds in
  exactly that prefix of the interaction log, and the served
  ``(videoId, score)`` lists must match float for float.  This works
  across the restart because a restarted server replays the whole log as
  one batch and ``apply_comments`` is batch-split invariant.

Scale via ``NetChaosConfig.queries`` (the test honours the
``NETCHAOS_QUERIES`` env var); on failure — and whenever
``$CHAOS_ARTIFACT_DIR`` is set — the report, server logs and offending
rows land there for CI to attach.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

import repro
from repro.net.interactions import interaction_pairs, read_interactions
from repro.obs import percentiles

__all__ = ["NetChaosConfig", "NetChaosReport", "run_net_soak"]

_BANNER = re.compile(
    r"on (http://[\d.]+:(\d+)) \(interaction log (.+), (\d+) replayed\)"
)


@dataclass(frozen=True)
class NetChaosConfig:
    """Knobs of one network soak (defaults = the acceptance-scale run)."""

    queries: int = 10_000
    loadgens: int = 2
    concurrency: int = 4
    interact_every: int = 7
    apply_every: int = 25
    top_k: int = 10
    seed: int = 2015
    hours: float = 2.0
    attempts: int = 8
    chaos_slow_every: int = 97
    chaos_slow_ms: float = 5.0
    chaos_abort_every: int = 61
    #: SIGTERM the server once this fraction of phase-1 queries has been
    #: served — "mid-soak" by observation, not by a timing guess.
    drain_after_fraction: float = 0.25
    drain_s: float = 10.0
    startup_timeout_s: float = 90.0
    workdir: str | None = None
    index_path: str | None = None

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError(f"queries must be >= 1, got {self.queries}")
        if self.loadgens < 1:
            raise ValueError(f"loadgens must be >= 1, got {self.loadgens}")
        if self.interact_every < 0:
            raise ValueError(
                f"interact_every must be >= 0, got {self.interact_every}"
            )


@dataclass
class NetChaosReport:
    """Everything the soak measured and every invariant it checked."""

    attempted: int = 0
    by_status: dict = field(default_factory=dict)
    recommend_ok: int = 0
    interactions_acked: int = 0
    duplicates_detected: int = 0
    conn_errors: int = 0
    logged_records: int = 0
    lost_acks: list = field(default_factory=list)
    double_logged: list = field(default_factory=list)
    server_500s: int = 0
    oracle_checked: int = 0
    oracle_failures: list = field(default_factory=list)
    degraded_served: int = 0
    partial_served: int = 0
    server_exits: list = field(default_factory=list)
    loadgen_exits: list = field(default_factory=list)
    loadgen_failures: list = field(default_factory=list)
    served_at_sigterm: int = 0
    restarts: int = 0
    replayed_on_restart: int = 0
    loadgens_alive_at_sigterm: int = 0
    hit_latency_ms: dict = field(default_factory=dict)
    miss_latency_ms: dict = field(default_factory=dict)
    rps: float = 0.0
    elapsed_seconds: float = 0.0
    artifact_path: str | None = None

    @property
    def ok(self) -> bool:
        return (
            not self.lost_acks
            and not self.double_logged
            and not self.oracle_failures
            and self.server_500s == 0
            and all(code == 0 for code in self.server_exits)
            and not self.loadgen_failures
            and self.restarts >= 1
        )


class _Server:
    """One ``repro serve`` subprocess with a parsed startup banner."""

    def __init__(self, config: NetChaosConfig, index: pathlib.Path, port: int) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(index),
            "--port",
            str(port),
            "--apply-every",
            str(config.apply_every),
            "--drain-s",
            str(config.drain_s),
        ]
        if config.chaos_slow_every:
            argv += [
                "--chaos-slow-every",
                str(config.chaos_slow_every),
                "--chaos-slow-ms",
                str(config.chaos_slow_ms),
            ]
        if config.chaos_abort_every:
            argv += ["--chaos-abort-every", str(config.chaos_abort_every)]
        env = dict(os.environ)
        package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines: list[str] = []
        self._banner = threading.Event()
        self.url = self.log_path = None
        self.port = self.replayed = None
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + config.startup_timeout_s
        while not self._banner.wait(timeout=0.1):
            if time.monotonic() > deadline:
                break
        if self.url is None:  # timeout, or EOF without a banner (crash)
            self.proc.kill()
            raise RuntimeError("server failed to start:\n" + "".join(self.lines))

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line)
            match = _BANNER.search(line)
            if match:
                self.url = match.group(1)
                self.port = int(match.group(2))
                self.log_path = pathlib.Path(match.group(3))
                self.replayed = int(match.group(4))
                self._banner.set()
        self._banner.set()  # EOF without a banner -> startup failure above

    def sigterm_and_wait(self, timeout: float) -> int:
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=timeout)
        self._reader.join(timeout=5.0)
        return code


def _build_index(config: NetChaosConfig, workdir: pathlib.Path) -> pathlib.Path:
    from repro.community import CommunityConfig, generate_community
    from repro.core import CommunityIndex, RecommenderConfig
    from repro.io import save_index

    dataset = generate_community(
        CommunityConfig(hours=config.hours, seed=config.seed)
    )
    index = CommunityIndex(dataset, RecommenderConfig())
    path = workdir / "netchaos_index.json.gz"
    save_index(index, path)
    return path


def _spawn_loadgens(
    config: NetChaosConfig,
    url: str,
    workdir: pathlib.Path,
    phase: int,
    queries: int,
) -> list[tuple[subprocess.Popen, pathlib.Path]]:
    gens = []
    share = [
        queries // config.loadgens
        + (1 if gen < queries % config.loadgens else 0)
        for gen in range(config.loadgens)
    ]
    for gen, count in enumerate(share):
        if count == 0:
            continue
        out = workdir / f"gen_p{phase}_{gen}.jsonl"
        # Distinct seeds keep every loadgen's client ids — and therefore
        # every minted interaction_id — globally unique across phases.
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "load",
            url,
            "--queries",
            str(count),
            "--concurrency",
            str(config.concurrency),
            "--top-k",
            str(config.top_k),
            "--interact-every",
            str(config.interact_every),
            "--seed",
            str(config.seed + 1000 * phase + gen),
            "--attempts",
            str(config.attempts),
            "--out",
            str(out),
        ]
        env = dict(os.environ)
        package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        gens.append((proc, out))
    return gens


def _collect_rows(report: NetChaosReport, gens) -> list[dict]:
    rows: list[dict] = []
    for proc, out in gens:
        stdout, _ = proc.communicate()
        report.loadgen_exits.append(proc.returncode)
        if out.exists():
            with open(out) as handle:
                rows.extend(json.loads(line) for line in handle if line.strip())
        else:
            # The generator died before writing its rows (e.g. its
            # bootstrap outlived the server) — keep the evidence.
            report.loadgen_failures.append(
                {"argv": proc.args, "exit": proc.returncode, "stdout": stdout}
            )
    return rows


def _served_queries(url: str) -> int:
    """Recommend+interaction requests the server has answered so far."""
    from repro.net.client import RetryingClient, RetryPolicy

    client = RetryingClient(url, RetryPolicy(attempts=1, timeout=5.0))
    counters = client.stats_snapshot().get("counters", {})
    return sum(
        int(value)
        for key, value in counters.items()
        if key.startswith("repro_http_requests_total")
        and ('route="recommend"' in key or 'route="interaction"' in key)
    )


def _await_traffic(url: str, threshold: int, timeout: float) -> int:
    """Block until the server has served *threshold* queries (or timeout)."""
    deadline = time.monotonic() + timeout
    served = 0
    while time.monotonic() < deadline:
        try:
            served = _served_queries(url)
        except Exception:  # noqa: BLE001 - transient; keep polling
            served = 0
        if served >= threshold:
            break
        time.sleep(0.05)
    return served


def _verify_interactions(report: NetChaosReport, rows, log_path) -> list[dict]:
    """Exactly-once check; returns the log records for the oracle replay."""
    records = read_interactions(log_path)
    report.logged_records = len(records)
    seen: dict[str, int] = {}
    for record in records:
        seen[record["interaction_id"]] = seen.get(record["interaction_id"], 0) + 1
    report.double_logged = sorted(rid for rid, n in seen.items() if n > 1)
    for row in rows:
        if row["kind"] != "interaction" or row["status"] != 200:
            continue
        report.interactions_acked += 1
        body = row.get("body") or {}
        if body.get("duplicate"):
            report.duplicates_detected += 1
        rid = body.get("interaction_id")
        if rid not in seen:
            report.lost_acks.append(rid)
    return records


def _verify_oracle(
    report: NetChaosReport,
    rows,
    records,
    index_path,
    top_k: int,
) -> None:
    """Replay every 200 recommendation payload against a fresh gateway.

    Rows are grouped by ``applied_seq`` and replayed in ascending order,
    folding ``records[applied:seq]`` into the oracle between groups —
    the exact state the serving index was in behind each response.
    """
    from repro.io import load_index
    from repro.serving import ServingGateway

    groups: dict[int, list[dict]] = {}
    for row in rows:
        if row["kind"] != "recommend" or row["status"] != 200:
            continue
        body = row.get("body") or {}
        if body.get("degraded"):
            report.degraded_served += 1
            continue  # social-blind ranking; the healthy oracle differs
        groups.setdefault(int(body["applied_seq"]), []).append(row)
    gateway = ServingGateway(load_index(index_path))
    applied = 0
    memo: dict[tuple, list] = {}
    for seq in sorted(groups):
        if seq > applied:
            gateway.apply_comments(interaction_pairs(records[applied:seq]))
            applied = seq
            memo.clear()
        for row in groups[seq]:
            report.oracle_checked += 1
            key = (row["video"], int(row["body"]["top_k"]))
            expected = memo.get(key)
            if expected is None:
                result = gateway.recommend(key[0], key[1])
                expected = [
                    {"videoId": vid, "score": float(result.scores[rank])}
                    for rank, vid in enumerate(result)
                ]
                memo[key] = expected
            if row["body"]["recommendations"] != expected:
                report.oracle_failures.append(
                    {
                        "video": row["video"],
                        "applied_seq": seq,
                        "served": row["body"]["recommendations"],
                        "expected": expected,
                    }
                )


def _dump_artifact(config: NetChaosConfig, report: NetChaosReport, servers) -> str | None:
    directory = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"netchaos_seed{config.seed}.json")
    payload = {
        "config": {
            key: getattr(config, key)
            for key in (
                "queries",
                "loadgens",
                "concurrency",
                "interact_every",
                "apply_every",
                "top_k",
                "seed",
                "hours",
                "chaos_slow_every",
                "chaos_abort_every",
            )
        },
        "report": {
            key: value
            for key, value in vars(report).items()
            if key != "artifact_path"
        },
        "ok": report.ok,
        "server_logs": ["".join(server.lines) for server in servers],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path


def run_net_soak(config: NetChaosConfig) -> NetChaosReport:
    """Run the full soak; the report's ``ok`` is the acceptance verdict."""
    report = NetChaosReport()
    started = time.monotonic()
    cleanup = config.workdir is None
    workdir = pathlib.Path(config.workdir or tempfile.mkdtemp(prefix="netchaos-"))
    workdir.mkdir(parents=True, exist_ok=True)
    servers: list[_Server] = []
    wait_budget = config.drain_s + 60.0
    try:
        index = (
            pathlib.Path(config.index_path)
            if config.index_path
            else _build_index(config, workdir)
        )
        phase1 = config.queries // 2
        phase2 = config.queries - phase1

        # Phase 1: ephemeral port, load, SIGTERM mid-flight.
        server = _Server(config, index, port=0)
        servers.append(server)
        port, url = server.port, server.url
        gens = _spawn_loadgens(config, url, workdir, phase=1, queries=phase1)
        threshold = max(10, int(phase1 * config.drain_after_fraction))
        report.served_at_sigterm = _await_traffic(
            url, threshold, config.startup_timeout_s
        )
        report.loadgens_alive_at_sigterm = sum(
            1 for proc, _ in gens if proc.poll() is None
        )
        report.server_exits.append(server.sigterm_and_wait(wait_budget))
        rows = _collect_rows(report, gens)

        # Restart on the same port, same index, same interaction log.
        server = _Server(config, index, port=port)
        servers.append(server)
        report.restarts += 1
        report.replayed_on_restart = server.replayed
        log_path = server.log_path

        # Phase 2: load against the restarted server, then drain idle.
        gens = _spawn_loadgens(config, server.url, workdir, phase=2, queries=phase2)
        rows.extend(_collect_rows(report, gens))
        report.server_exits.append(server.sigterm_and_wait(wait_budget))

        # Bookkeeping over every attempted request.
        report.attempted = len(rows)
        for row in rows:
            key = str(row["status"]) if row["status"] is not None else "conn"
            report.by_status[key] = report.by_status.get(key, 0) + 1
            if row["status"] is None:
                report.conn_errors += 1
            elif row["status"] == 500:
                report.server_500s += 1
            elif row["status"] == 504:
                report.partial_served += 1
            if row["kind"] == "recommend" and row["status"] == 200:
                report.recommend_ok += 1
        hits = [
            row["ms"]
            for row in rows
            if row["kind"] == "recommend"
            and row["status"] == 200
            and row.get("cache") == "hit"
        ]
        misses = [
            row["ms"]
            for row in rows
            if row["kind"] == "recommend"
            and row["status"] == 200
            and row.get("cache") != "hit"
        ]
        if hits:
            report.hit_latency_ms = percentiles(hits, (50.0, 99.0))
        if misses:
            report.miss_latency_ms = percentiles(misses, (50.0, 99.0))

        records = _verify_interactions(report, rows, log_path)
        _verify_oracle(report, rows, records, index, config.top_k)
    finally:
        for server in servers:
            if server.proc.poll() is None:
                server.proc.kill()
        report.elapsed_seconds = time.monotonic() - started
        if report.elapsed_seconds > 0:
            report.rps = report.attempted / report.elapsed_seconds
        report.artifact_path = _dump_artifact(config, report, servers)
        if cleanup and report.ok:
            shutil.rmtree(workdir, ignore_errors=True)
    return report
