"""Crash-point registry and fault plans for durability testing.

The WAL and snapshot writers thread a :class:`FaultPlan` through their IO
paths and call :meth:`FaultPlan.fire` at every **registered crash point**
— the instants where a real process death would leave interestingly
partial on-disk state (half-written record, complete tmp file not yet
renamed, renamed file not yet directory-fsynced, ...).

A plan can, per point:

* **abort** — raise :class:`InjectedCrashError`, modelling ``kill -9`` at
  exactly that instant (the in-memory state is then discarded by the test
  and recovery is exercised from the on-disk state alone);
* **corrupt bytes** — XOR-flip a byte of the file being written,
  modelling media corruption;
* **slow IO** — sleep, modelling a saturated disk (used to exercise the
  per-query time budget without fake clocks).

Writers register their points at import time via
:func:`register_crash_point`; :func:`registered_crash_points` is the
matrix the fault-injection suite (and the CI crash-recovery job) iterates.
This module imports nothing from the rest of the package, so it can sit
below both ``repro.io`` and ``repro.core``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "CRASH_POINTS",
    "ByteCorruption",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFaultError",
    "register_crash_point",
    "registered_crash_points",
]

#: ``name -> description`` of every registered crash point.
CRASH_POINTS: dict[str, str] = {}


def register_crash_point(name: str, description: str = "") -> str:
    """Register a crash point (idempotent); returns *name* for reuse."""
    CRASH_POINTS.setdefault(name, description)
    return name


def registered_crash_points() -> list[str]:
    """All registered crash point names, sorted (the injection matrix)."""
    return sorted(CRASH_POINTS)


class InjectedCrashError(RuntimeError):
    """Raised by :meth:`FaultPlan.fire` to simulate process death."""


class InjectedFaultError(RuntimeError):
    """Raised by :meth:`FaultPlan.fire` to simulate a *transient* failure.

    Unlike :class:`InjectedCrashError` (process death: nothing after the
    point runs), a transient fault models a dependency hiccup — the
    caller survives and may retry.  The serving gateway maps this onto
    :class:`~repro.errors.TransientServingError` semantics: retry with
    backoff, then count a circuit-breaker failure."""


@dataclass(frozen=True)
class ByteCorruption:
    """XOR-flip one byte of a file (``offset`` may be negative = from end)."""

    offset: int = -2
    mask: int = 0xFF

    def apply(self, path: str | os.PathLike) -> None:
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            position = self.offset if self.offset >= 0 else size + self.offset
            position = min(max(position, 0), size - 1)
            handle.seek(position)
            byte = handle.read(1)
            handle.seek(position)
            handle.write(bytes([byte[0] ^ self.mask]))


@dataclass
class FaultPlan:
    """What to inject at which crash points.

    Attributes
    ----------
    abort_at:
        Points at which to raise :class:`InjectedCrashError`.
    corrupt_at:
        ``point -> ByteCorruption`` applied to the file being written.
    slow_at:
        ``point -> seconds`` to sleep before continuing.
    fail_at:
        ``point -> remaining count`` of :class:`InjectedFaultError` raises
        (transient failures).  A positive count decrements per fire and
        stops injecting at zero — "the dependency flaps N times, then
        recovers"; ``-1`` never stops.  Re-arming a live plan is how the
        chaos harness schedules failure bursts mid-soak, so the decrement
        is lock-protected (plans may be fired from many serving threads).
    fired:
        Log of every point actually hit, in order (assertable by tests).
    """

    abort_at: frozenset[str] = frozenset()
    corrupt_at: dict[str, ByteCorruption] = field(default_factory=dict)
    slow_at: dict[str, float] = field(default_factory=dict)
    fail_at: dict[str, int] = field(default_factory=dict)
    fired: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.abort_at = frozenset(self.abort_at)
        self._lock = threading.Lock()

    def arm_failures(self, point: str, count: int) -> None:
        """(Re)arm *count* transient failures at *point* (thread-safe)."""
        with self._lock:
            self.fail_at[point] = int(count)

    def _take_failure(self, point: str) -> bool:
        """Consume one armed transient failure at *point*, if any."""
        with self._lock:
            remaining = self.fail_at.get(point, 0)
            if remaining == 0:
                return False
            if remaining > 0:
                self.fail_at[point] = remaining - 1
            return True

    def fire(self, point: str, path: str | os.PathLike | None = None) -> None:
        """Hit crash point *point*; injects whatever the plan prescribes.

        Writers must only fire registered points — an unregistered name is
        a programming error (the injection matrix would silently miss it).
        """
        if point not in CRASH_POINTS:
            raise RuntimeError(f"unregistered crash point {point!r}")
        self.fired.append(point)
        delay = self.slow_at.get(point)
        if delay:
            time.sleep(delay)
        corruption = self.corrupt_at.get(point)
        if corruption is not None and path is not None and os.path.exists(path):
            corruption.apply(path)
        if self._take_failure(point):
            raise InjectedFaultError(f"injected transient fault at {point}")
        if point in self.abort_at:
            raise InjectedCrashError(f"injected crash at {point}")


#: Shared no-op plan used when callers pass ``faults=None``.
NO_FAULTS = FaultPlan()
