"""Testing subsystem: fault injection for the durability layer."""

from repro.testing.faults import (
    CRASH_POINTS,
    ByteCorruption,
    FaultPlan,
    InjectedCrashError,
    register_crash_point,
    registered_crash_points,
)

__all__ = [
    "CRASH_POINTS",
    "ByteCorruption",
    "FaultPlan",
    "InjectedCrashError",
    "register_crash_point",
    "registered_crash_points",
]
