"""Testing subsystem: fault injection and the chaos soak harness.

:mod:`repro.testing.chaos` is imported lazily (it pulls in the serving
stack); the fault primitives stay import-light so the IO layer can depend
on them.
"""

from repro.testing.faults import (
    CRASH_POINTS,
    ByteCorruption,
    FaultPlan,
    InjectedCrashError,
    InjectedFaultError,
    register_crash_point,
    registered_crash_points,
)

__all__ = [
    "CRASH_POINTS",
    "ByteCorruption",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFaultError",
    "NetChaosConfig",
    "NetChaosReport",
    "SoakConfig",
    "SoakReport",
    "register_crash_point",
    "registered_crash_points",
    "run_net_soak",
    "run_soak",
]


def __getattr__(name):
    if name in ("SoakConfig", "SoakReport", "run_soak"):
        from repro.testing import chaos

        return getattr(chaos, name)
    if name in ("NetChaosConfig", "NetChaosReport", "run_net_soak"):
        from repro.testing import netchaos

        return getattr(netchaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
