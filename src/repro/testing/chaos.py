"""Seeded chaos soak: concurrent writers vs readers over the gateway.

The harness stands up a :class:`~repro.serving.gateway.ServingGateway`
over a small generated community and hammers it from three sides at once:

* **writers** ingest, retire and comment (each from a private spare-video
  pool, so mutations never conflict), publishing a fresh epoch per
  mutation;
* **readers** issue top-K queries against base videos that exist in every
  epoch — a deterministic fraction with a deliberately tight deadline to
  exercise partial results;
* a **fault schedule** periodically arms bursts of transient failures at
  the gateway's ``serve.social_scores`` point, driving the retry path and
  tripping the circuit breaker into its open → half-open → closed cycle.

Every query result carries the epoch it was served from (the reference
keeps the frozen snapshot alive past retirement), so after the threads
drain the harness replays each query against a **serial oracle** — a
fresh single-threaded recommender over the pinned epoch — and demands a
bit-identical ranking.  Partial results are checked against the oracle of
their scored candidate *prefix* (the chunked scan is prefix-deterministic:
``scored`` is always chunk-aligned).  Any reader exception, writer
exception or parity mismatch fails the soak; a failing run dumps its full
seeded schedule as JSON into ``$CHAOS_ARTIFACT_DIR`` so CI can attach it
and anyone can replay the exact interleaving pressure.

Everything is derived from one seed: thread schedules still interleave
nondeterministically (that is the point of a soak), but the *workload* —
who ingests what, which queries carry tight deadlines, when fault bursts
arm — replays exactly.

Beyond the baseline chaos, ``scenario`` selects one of three seeded
**adversarial** workloads (DESIGN §16), each paired with the defense
mechanism built to absorb it.  The attack occupies the middle
``attack_start``..``attack_end`` fraction of the reader progress, so the
report can measure a pre-attack latency baseline, the p99 *during* the
attack, and — from the timestamped per-query latency series — the
**time-to-recover**: how long after the attack stops until a window of
queries runs at p99 within ``recovery_factor`` of the baseline again.

* ``flash_crowd`` — extra attack readers hammer one hot key with
  identical queries; singleflight coalescing (``defense.coalesce``)
  should collapse the crowd's concurrent memo misses into single scans.
* ``spam_burst`` — burst commenters flood ``apply_comments`` through a
  :class:`~repro.defense.quarantine.SpamGuard`; regular writers stand
  down so the *rank correlation* between the final and the pre-attack
  rankings isolates exactly the spam's surviving influence (1.0 = the
  quarantine withheld/revoked everything).
* ``retire_storm`` — a mutation storm of rapid ingest/retire churn; the
  publish governor (``defense.min_publish_interval``) should amortize
  the epoch/memo/response-cache thrash into bounded publications.

With ``shards > 1`` the same harness runs against a
:class:`~repro.sharding.ShardedGateway` over a
:class:`~repro.sharding.ShardedIndex`: writer pools are grouped by owner
shard (so each writer's mutation stream *skews* toward one shard rather
than spreading evenly), the fault schedule rotates its bursts one shard
at a time (each burst degrades exactly one shard's social path), and
verification checks every per-shard slice against that shard's serial
oracle — with the owner shard's guest-query payload — re-runs the
deterministic ``(-score, id)`` merge over the recorded slices, and (for
deadline-free queries, whose slices may be trimmed by the chained
pruning threshold) demands the served merged ranking bit-match the
merge of every present shard's full local oracle top-K.  Memoized results
(``shard_results is None``) are counted, not replayed: the memo only
stores clean results keyed by the exact epoch vector, so the record that
populated the entry was itself verified.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.community.workload import build_workload
from repro.core.config import RecommenderConfig
from repro.core.pipeline import LiveCommunityIndex
from repro.defense import DefenseConfig, SpamGuard
from repro.core.fusion import fuse_fj
from repro.core.recommender import (
    FusionRecommender,
    rank_components,
    rank_components_scored,
)
from repro.errors import OverloadedError
from repro.obs import MetricsRegistry, use_metrics
from repro.serving import GatewayConfig, ServingGateway
from repro.serving.gateway import SERVE_SOCIAL_POINT
from repro.sharding import ShardedGateway, ShardedIndex, make_router
from repro.testing.faults import FaultPlan

__all__ = ["SoakConfig", "SoakReport", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one chaos soak run (everything keys off ``seed``).

    The defaults satisfy the acceptance floor of the serving work: 4
    writers x 16 readers x 10k queries.  Tests and the bench scale
    ``queries`` (and the community ``hours``) up or down; everything else
    usually stays put.
    """

    writers: int = 4
    readers: int = 16
    #: Attempted queries; with admission deliberately overloaded a soak
    #: sheds 10-20%, so the default leaves ~10k actually *served*.
    queries: int = 12_000
    top_k: int = 10
    seed: int = 2015
    hours: float = 5.0
    base_videos: int = 36
    writer_ops: int = 25
    writer_pause: float = 0.001
    #: Per-query reader pause (0 = flat out).  Adversarial scenarios set
    #: it so the soak spans real wall-time: the attack window and the
    #: recovery tail are measured in seconds, not query counts.
    reader_pause: float = 0.0
    #: Every Nth query of each reader carries ``tight_deadline`` seconds.
    tight_deadline_every: int = 17
    tight_deadline: float = 1e-4
    #: Seconds between armings of ``fault_burst`` transient social faults
    #: (0 disables the fault schedule entirely).
    fault_burst_every: float = 0.2
    fault_burst: int = 8
    #: ``shards > 1`` soaks a :class:`~repro.sharding.ShardedGateway`
    #: instead of the single-index gateway (same writer/reader/fault
    #: pressure; fault bursts rotate one shard at a time).
    shards: int = 1
    router: str = "hash"
    #: Social mode both the gateway under soak and the serial oracles
    #: serve with — "sketch" runs the whole soak on the odd-sketch bank.
    social_mode: str = "sar-h"
    #: Adversarial scenario: ``none`` (baseline chaos), ``flash_crowd``,
    #: ``spam_burst`` or ``retire_storm`` (module docstring).
    scenario: str = "none"
    #: Defense knobs under test (``None`` = undefended; the scenario then
    #: measures the *unmitigated* damage).  Threads into the gateway
    #: config and, for ``spam_burst``, builds the :class:`SpamGuard`.
    defense: DefenseConfig | None = None
    #: The attack window, as fractions of total reader progress: the
    #: attack starts once that share of queries resolved and stands down
    #: at the second mark, leaving the tail to measure recovery.
    attack_start: float = 0.3
    attack_end: float = 0.7
    #: Concurrent attack threads (flash-crowd readers / spam users).
    attack_threads: int = 6
    #: Per-thread attack operation budget (a hard cap under the window).
    attack_ops: int = 500
    attack_pause: float = 0.0005
    #: Recovered = a post-attack window whose p99 is within this factor
    #: of the pre-attack baseline p99.
    recovery_factor: float = 2.0
    #: Width (seconds) of the post-attack windows recovery scans over.
    recovery_window: float = 0.25
    gateway: GatewayConfig = field(
        default_factory=lambda: GatewayConfig(
            max_concurrency=8,
            queue_depth=16,
            queue_timeout=0.05,
            breaker_failure_threshold=3,
            breaker_cooldown=0.05,
            retry_attempts=1,
            retry_backoff=0.0005,
        )
    )
    verify: bool = True

    def __post_init__(self) -> None:
        if self.writers < 1 or self.readers < 1:
            raise ValueError("need at least one writer and one reader")
        if self.queries < self.readers:
            raise ValueError("need at least one query per reader")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.scenario not in ("none", "flash_crowd", "spam_burst", "retire_storm"):
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if not 0.0 <= self.attack_start < self.attack_end <= 1.0:
            raise ValueError(
                f"attack window must satisfy 0 <= start < end <= 1, got "
                f"[{self.attack_start}, {self.attack_end}]"
            )
        if self.attack_threads < 1:
            raise ValueError(f"attack_threads must be >= 1, got {self.attack_threads}")
        if self.recovery_factor < 1.0:
            raise ValueError(
                f"recovery_factor must be >= 1, got {self.recovery_factor}"
            )
        if self.recovery_window <= 0:
            raise ValueError(
                f"recovery_window must be > 0, got {self.recovery_window}"
            )


@dataclass
class SoakReport:
    """What one soak run did and whether it held up.

    ``ok`` is the soak verdict: no reader/writer exceptions and (when
    verification ran) zero oracle parity failures.  Shed queries are
    *expected* under overload and never fail a soak on their own — tests
    bound the shed/degraded **rates** instead.
    """

    config_seed: int
    queries_total: int = 0
    queries_shed: int = 0
    queries_degraded: int = 0
    queries_partial: int = 0
    #: Sharded soaks only: clean memo hits (no per-shard slices to
    #: replay; the record that populated the memo entry was verified).
    queries_memoized: int = 0
    writer_ops: int = 0
    epochs_published: int = 0
    epochs_retired: int = 0
    epochs_live: int = 0
    breaker_transitions: list[tuple[str, str]] = field(default_factory=list)
    parity_checked: int = 0
    parity_failures: list[dict] = field(default_factory=list)
    reader_errors: list[str] = field(default_factory=list)
    writer_errors: list[str] = field(default_factory=list)
    latencies_ms: dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    artifact_path: str | None = None
    #: Final per-shard catalogue sizes (empty for single-index soaks) —
    #: the writer-skew fingerprint.
    shard_sizes: list[int] = field(default_factory=list)
    #: Sharded soaks: each shard's own breaker transition history (the
    #: flat ``breaker_transitions`` is their concatenation).
    shard_breaker_transitions: list[list[tuple[str, str]]] = field(
        default_factory=list
    )
    #: Adversarial scenario bookkeeping (scenario != "none" only).
    scenario: str = "none"
    attack_ops_done: int = 0
    attack_errors: list[str] = field(default_factory=list)
    #: ``(begin, end)`` of the attack, seconds relative to soak start.
    attack_window: tuple[float, float] | None = None
    baseline_p99_ms: float = 0.0
    attack_p99_ms: float = 0.0
    #: Seconds after the attack stood down until a query window ran at
    #: p99 within ``recovery_factor`` of baseline again (0.0 = never
    #: degraded past it; ``None`` = never recovered within the run).
    recovery_seconds: float | None = None
    #: ``spam_burst`` only: mean top-K overlap between the final and the
    #: pre-attack rankings over the base queries (1.0 = spam left no
    #: trace in the served rankings).
    rank_correlation: float | None = None
    #: ``spam_burst`` only: the guard's verdict tallies.
    quarantine: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not (
            self.parity_failures
            or self.reader_errors
            or self.writer_errors
            or self.attack_errors
        )

    @property
    def shed_rate(self) -> float:
        attempted = self.queries_total + self.queries_shed
        return self.queries_shed / attempted if attempted else 0.0

    @property
    def degraded_rate(self) -> float:
        return self.queries_degraded / self.queries_total if self.queries_total else 0.0

    def to_dict(self) -> dict:
        return {
            "seed": self.config_seed,
            "queries_total": self.queries_total,
            "queries_shed": self.queries_shed,
            "queries_degraded": self.queries_degraded,
            "queries_partial": self.queries_partial,
            "queries_memoized": self.queries_memoized,
            "shed_rate": self.shed_rate,
            "degraded_rate": self.degraded_rate,
            "writer_ops": self.writer_ops,
            "epochs_published": self.epochs_published,
            "epochs_retired": self.epochs_retired,
            "epochs_live": self.epochs_live,
            "breaker_transitions": self.breaker_transitions,
            "parity_checked": self.parity_checked,
            "parity_failures": self.parity_failures,
            "reader_errors": self.reader_errors,
            "writer_errors": self.writer_errors,
            "latencies_ms": self.latencies_ms,
            "elapsed_seconds": self.elapsed_seconds,
            "shard_sizes": self.shard_sizes,
            "shard_breaker_transitions": self.shard_breaker_transitions,
            "scenario": self.scenario,
            "attack_ops_done": self.attack_ops_done,
            "attack_errors": self.attack_errors,
            "attack_window": self.attack_window,
            "baseline_p99_ms": self.baseline_p99_ms,
            "attack_p99_ms": self.attack_p99_ms,
            "recovery_seconds": self.recovery_seconds,
            "rank_correlation": self.rank_correlation,
            "quarantine": self.quarantine,
            "ok": self.ok,
        }


@dataclass
class _QueryRecord:
    """One served query, held for post-hoc oracle verification."""

    reader: int
    query_id: str
    ids: list[str]
    epoch: object
    omega_served: float
    scored: int
    total: int
    partial: bool
    degraded: bool
    #: Sharded soaks: the per-shard slices (``None`` entries for shards
    #: that missed/failed), or ``None`` for a memoized result.  Each
    #: slice keeps its pinned shard epoch alive for replay.
    shard_results: tuple | None = None
    #: Sharded soaks: the epoch vector the query was served from (the
    #: owner shard's epoch supplies the guest-query payload even when
    #: that shard's slice is missing).
    epochs: tuple | None = None


def _writer_pools(
    dataset, base_ids: list[str], writers: int, router=None
) -> list[list[str]]:
    """Disjoint spare-master pools, one per writer.

    The single-index split is round-robin.  When a *router* that can
    route bare ids is supplied (sharded soaks with the hash router), the
    spares are instead sorted by owner shard and split contiguously, so
    each writer's ingest/retire stream concentrates on one or two shards
    — deliberate writer *skew* across the shard set.
    """
    spares = sorted(
        vid
        for vid, record in dataset.records.items()
        if record.lineage is None and vid not in base_ids
    )
    if len(spares) < writers:
        raise ValueError(
            f"community too small: {len(spares)} spare masters for {writers} writers"
        )
    pools: list[list[str]] = [[] for _ in range(writers)]
    if router is not None and not router.needs_series:
        ordered = sorted(spares, key=lambda vid: (router.route(vid), vid))
        chunk = -(-len(ordered) // writers)  # ceil division
        for index in range(writers):
            pools[index] = ordered[index * chunk : (index + 1) * chunk]
        if not all(pools):
            pools = [[] for _ in range(writers)]  # degenerate: fall back
        else:
            return pools
    for position, vid in enumerate(spares):
        pools[position % writers].append(vid)
    return pools


def _writer_loop(
    gateway: ServingGateway,
    dataset,
    pool: list[str],
    base_ids: list[str],
    config: SoakConfig,
    rng: np.random.Generator,
    report: SoakReport,
    lock: threading.Lock,
) -> None:
    users = sorted(dataset.users)
    own_live: list[str] = []
    ops = 0
    for _ in range(config.writer_ops):
        try:
            spare = [vid for vid in pool if vid not in own_live]
            choice = rng.integers(0, 4)
            if not own_live or (choice == 0 and spare):
                vid = spare[int(rng.integers(0, len(spare)))]
                gateway.ingest_video(dataset.records[vid])
                own_live.append(vid)
            elif choice == 1 or not spare:
                vid = own_live.pop(int(rng.integers(0, len(own_live))))
                gateway.retire_video(vid)
            elif choice == 2:
                pairs = [
                    (
                        users[int(rng.integers(0, len(users)))],
                        base_ids[int(rng.integers(0, len(base_ids)))],
                    )
                    for _ in range(int(rng.integers(1, 4)))
                ]
                gateway.apply_comments(pairs)
            else:
                gateway.advance_watermark(11)
            ops += 1
        except Exception as error:  # noqa: BLE001 - the soak records, never hides
            with lock:
                report.writer_errors.append(f"{type(error).__name__}: {error}")
            return
        if config.writer_pause:
            time.sleep(config.writer_pause)
    with lock:
        report.writer_ops += ops


def _reader_loop(
    gateway: ServingGateway,
    reader: int,
    base_ids: list[str],
    config: SoakConfig,
    rng: np.random.Generator,
    report: SoakReport,
    records: list[_QueryRecord],
    latencies: list[tuple[float, float]],
    lock: threading.Lock,
    t0: float,
) -> None:
    count = config.queries // config.readers
    if reader < config.queries % config.readers:
        count += 1
    for step in range(count):
        query_id = base_ids[int(rng.integers(0, len(base_ids)))]
        deadline = None
        if config.tight_deadline_every and step % config.tight_deadline_every == 1:
            deadline = config.tight_deadline
        started = time.monotonic()
        try:
            result = gateway.recommend(query_id, top_k=config.top_k, deadline=deadline)
        except OverloadedError:
            with lock:
                report.queries_shed += 1
            continue
        except Exception as error:  # noqa: BLE001 - torn read = soak failure
            with lock:
                report.reader_errors.append(
                    f"reader {reader} {query_id!r}: {type(error).__name__}: {error}"
                )
            continue
        elapsed = time.monotonic() - started
        record = _QueryRecord(
            reader=reader,
            query_id=query_id,
            ids=list(result),
            epoch=getattr(result, "epoch", None),
            omega_served=result.omega_served,
            scored=result.scored,
            total=result.total,
            partial=result.partial,
            degraded=result.degraded,
            shard_results=getattr(result, "shard_results", None),
            epochs=getattr(result, "epochs", None),
        )
        with lock:
            report.queries_total += 1
            if result.degraded:
                report.queries_degraded += 1
            if result.partial:
                report.queries_partial += 1
            records.append(record)
            latencies.append((started - t0, elapsed))
        if config.reader_pause:
            time.sleep(config.reader_pause)


def _fault_loop(
    plans: list[FaultPlan], config: SoakConfig, stop: threading.Event
) -> None:
    """Arm periodic fault bursts; with several plans, rotate one per burst.

    Rotation is the sharded failure mode under test: each burst degrades
    exactly *one* shard's social path, so the gateway must keep serving
    (degraded, with a per-shard reason) while the other shards stay
    full-fidelity — and every shard's breaker gets exercised in turn.
    """
    if not config.fault_burst_every or not config.fault_burst:
        return
    burst = 0
    while not stop.wait(config.fault_burst_every):
        plans[burst % len(plans)].arm_failures(SERVE_SOCIAL_POINT, config.fault_burst)
        burst += 1
    # Recovery window: disarm so the breakers can close before the run ends.
    for plan in plans:
        plan.arm_failures(SERVE_SOCIAL_POINT, 0)


@dataclass
class _AttackState:
    """Shared bookkeeping of one adversarial scenario's attack threads."""

    begin: float | None = None
    end: float | None = None
    ops: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)

    def mark_begin(self, stamp: float) -> None:
        with self.lock:
            if self.begin is None or stamp < self.begin:
                self.begin = stamp

    def mark_end(self, stamp: float) -> None:
        with self.lock:
            if self.end is None or stamp > self.end:
                self.end = stamp

    def add_ops(self, count: int) -> None:
        with self.lock:
            self.ops += count


def _progress(report: SoakReport, lock: threading.Lock) -> int:
    """Resolved reader queries so far (served, shed or errored)."""
    with lock:
        return (
            report.queries_total + report.queries_shed + len(report.reader_errors)
        )


def _await_attack_start(
    config: SoakConfig, report: SoakReport, lock: threading.Lock
) -> None:
    threshold = int(config.attack_start * config.queries)
    while _progress(report, lock) < threshold:
        time.sleep(0.001)


def _attack_over(
    config: SoakConfig, report: SoakReport, lock: threading.Lock, ops: int
) -> bool:
    if ops >= config.attack_ops:
        return True
    # Floor: even when the readers outran the window, the attack lands a
    # meaningful volume so its report fields measure something real.
    if ops < max(1, config.attack_ops // 8):
        return False
    return _progress(report, lock) >= int(config.attack_end * config.queries)


def _record_attack_error(
    report: SoakReport, lock: threading.Lock, error: Exception
) -> None:
    with lock:
        report.attack_errors.append(f"{type(error).__name__}: {error}")


def _flash_crowd_loop(
    gateway,
    hot_id: str,
    config: SoakConfig,
    report: SoakReport,
    state: _AttackState,
    lock: threading.Lock,
    t0: float,
) -> None:
    """One flash-crowd reader: identical hot-key queries, no pause.

    Sheds are expected (the crowd *is* the overload); any other failure
    is an attack error.  The defended gateway collapses the crowd's
    concurrent memo misses into single scans via singleflight.
    """
    _await_attack_start(config, report, lock)
    state.mark_begin(time.monotonic() - t0)
    ops = 0
    try:
        while not _attack_over(config, report, lock, ops):
            try:
                gateway.recommend(hot_id, top_k=config.top_k)
            except OverloadedError:
                pass
            ops += 1
    except Exception as error:  # noqa: BLE001 - recorded, never hidden
        _record_attack_error(report, lock, error)
    state.add_ops(ops)
    state.mark_end(time.monotonic() - t0)


def _spam_burst_loop(
    gateway,
    guard: SpamGuard | None,
    spam_users: list[str],
    base_ids: list[str],
    config: SoakConfig,
    report: SoakReport,
    state: _AttackState,
    lock: threading.Lock,
    t0: float,
    rng: np.random.Generator,
) -> None:
    """The spam flood: every attacker bursts comments at the base videos.

    With a *guard*, each batch routes through :meth:`SpamGuard.filter`
    exactly as the HTTP front-end's apply path does — passed pairs apply,
    revoked pairs un-apply; without one, the flood lands unfiltered (the
    unmitigated baseline the rank-correlation measurement exposes).
    """
    _await_attack_start(config, report, lock)
    state.mark_begin(time.monotonic() - t0)
    ops = 0
    try:
        while not _attack_over(config, report, lock, ops):
            pairs = [
                (user, base_ids[int(rng.integers(0, len(base_ids)))])
                for user in spam_users
                for _ in range(4)
            ]
            if guard is not None:
                verdict = guard.filter(pairs)
                if verdict.passed:
                    gateway.apply_comments(verdict.passed)
                if verdict.revoked:
                    gateway.remove_comments(verdict.revoked)
            else:
                gateway.apply_comments(pairs)
            ops += len(pairs)
            if config.attack_pause:
                time.sleep(config.attack_pause)
    except Exception as error:  # noqa: BLE001 - recorded, never hidden
        _record_attack_error(report, lock, error)
    state.add_ops(ops)
    state.mark_end(time.monotonic() - t0)


def _retire_storm_loop(
    gateway,
    dataset,
    storm_pool: list[str],
    config: SoakConfig,
    report: SoakReport,
    state: _AttackState,
    lock: threading.Lock,
    t0: float,
) -> None:
    """The mutation storm: ingest/retire churn as fast as it will go.

    Every cycle is two mutations — without a publish governor that is
    two epoch publications (plus memo and response-cache invalidations);
    with one, publication amortizes to the configured interval.
    """
    _await_attack_start(config, report, lock)
    state.mark_begin(time.monotonic() - t0)
    ops = 0
    live: list[str] = []
    try:
        while not _attack_over(config, report, lock, ops):
            if live:
                gateway.retire_video(live.pop())
            else:
                vid = storm_pool[(ops // 2) % len(storm_pool)]
                gateway.ingest_video(dataset.records[vid])
                live.append(vid)
            ops += 1
            if config.attack_pause:
                time.sleep(config.attack_pause)
        for vid in live:
            gateway.retire_video(vid)
    except Exception as error:  # noqa: BLE001 - recorded, never hidden
        _record_attack_error(report, lock, error)
    state.add_ops(ops)
    state.mark_end(time.monotonic() - t0)


def _measure_attack(
    latencies: list[tuple[float, float]],
    state: _AttackState,
    config: SoakConfig,
    report: SoakReport,
) -> None:
    """Fill the report's attack-window latency + recovery-SLO fields.

    The recovery SLO (DESIGN §16): *recovered* means a
    ``recovery_window``-wide bucket of post-attack queries whose p99 is
    within ``recovery_factor`` of the pre-attack baseline p99.
    ``recovery_seconds`` is the offset of the first such bucket past the
    attack's end — 0.0 when the very first bucket is already healthy,
    ``None`` when no bucket recovers before the run ends.
    """
    if state.begin is None or state.end is None:
        return
    report.attack_window = (state.begin, state.end)
    before = [seconds for stamp, seconds in latencies if stamp < state.begin]
    during = [
        seconds for stamp, seconds in latencies if state.begin <= stamp <= state.end
    ]
    after = sorted(
        (stamp, seconds) for stamp, seconds in latencies if stamp > state.end
    )
    if not before or not during:
        return
    baseline = float(np.percentile(np.asarray(before), 99))
    report.baseline_p99_ms = baseline * 1000.0
    report.attack_p99_ms = float(np.percentile(np.asarray(during), 99)) * 1000.0
    threshold = config.recovery_factor * baseline
    bucket_of = lambda stamp: int((stamp - state.end) // config.recovery_window)
    buckets: dict[int, list[float]] = {}
    for stamp, seconds in after:
        buckets.setdefault(bucket_of(stamp), []).append(seconds)
    for bucket in sorted(buckets):
        if float(np.percentile(np.asarray(buckets[bucket]), 99)) <= threshold:
            report.recovery_seconds = bucket * config.recovery_window
            break


def _rank_overlap(before: dict[str, list[str]], after: dict[str, list[str]]) -> float:
    """Mean top-K set overlap between two ranking maps (1.0 = identical)."""
    fractions = [
        len(set(before[qid]) & set(after[qid])) / max(1, len(before[qid]))
        for qid in before
    ]
    return float(np.mean(fractions)) if fractions else 1.0


def _verify(records: list[_QueryRecord], config: SoakConfig, report: SoakReport) -> None:
    """Replay every query against a serial oracle on its pinned epoch.

    The oracle is a fresh single-threaded recommender over the frozen
    epoch; a result must be bit-identical to ranking the components of
    its scored candidate prefix.  Results are cached per
    ``(epoch, omega, query, scored)`` — under a handful of base queries
    and bounded epochs the cache turns 10k verifications into a few
    hundred oracle evaluations.

    Sharded records (``shard_results`` present) dispatch to
    :func:`_verify_sharded`; memoized sharded records are counted and
    skipped (their producing record was verified under the same vector).
    """
    oracles: dict[tuple, FusionRecommender] = {}
    cache: dict[tuple, list[str]] = {}
    for record in records:
        if record.shard_results is not None:
            _verify_sharded(record, config, report, oracles, cache)
            continue
        if record.epoch is None:
            # Sharded memo hit: the record that populated the entry was
            # served (and verified) under the same epoch vector.
            report.queries_memoized += 1
            continue
        epoch = record.epoch
        key = (epoch.epoch_id, record.omega_served, record.query_id, record.scored)
        expected = cache.get(key)
        if expected is None:
            oracle = oracles.get(key[:2])
            if oracle is None:
                oracle = epoch.recommender(
                    omega=record.omega_served,
                    time_budget=None,
                    social_mode=config.social_mode,
                )
                oracles[key[:2]] = oracle
            candidates = [vid for vid in epoch.video_ids if vid != record.query_id]
            prefix = candidates[: record.scored]
            content, social = oracle._score_arrays(
                record.query_id, prefix, record.omega_served
            )
            components = {
                vid: (float(c), float(s))
                for vid, c, s in zip(prefix, content, social)
            }
            expected = rank_components(components, record.omega_served, config.top_k)
            cache[key] = expected
        report.parity_checked += 1
        if record.ids != expected:
            report.parity_failures.append(
                {
                    "reader": record.reader,
                    "query_id": record.query_id,
                    "epoch_id": epoch.epoch_id,
                    "omega_served": record.omega_served,
                    "scored": record.scored,
                    "total": record.total,
                    "got": record.ids,
                    "expected": expected,
                }
            )


def _verify_sharded(
    record: _QueryRecord,
    config: SoakConfig,
    report: SoakReport,
    oracles: dict,
    cache: dict,
) -> None:
    """Replay one sharded query: slice fidelity + merged-ranking oracle.

    Three layers, all bitwise.  First, re-merging the recorded slices by
    ``(-score, id)`` must reproduce the served merged ranking.  Second,
    every recorded slice must carry exactly its shard oracle's fused
    scores for its ids, in ``(-score, id)`` order — queried as a guest
    with the owner shard's signature series and SAR row, exactly as the
    gateway scattered it.  A slice is deliberately *not* required to be
    a full local top-K: the deadline-free scatter chains the pruning
    threshold across shards, so later slices come back trimmed to the
    candidates that could still enter the merged top-K.  Third, the
    end-to-end check.  For deadline-free records (``partial`` unset;
    possibly trimmed slices) the served merged ranking must equal the
    deterministic merge of every *present* shard's FULL local oracle
    top-K — this is where unsound trimming would surface.  Deadline
    records (``partial`` set) are scattered through the pooled path
    without chaining, so each slice is instead replayed as its shard's
    oracle over the scored candidate prefix (the chunked scan is
    prefix-deterministic: ``scored`` is always chunk-aligned).
    """

    def fail(check: str, got: list, expected: list) -> None:
        report.parity_failures.append(
            {
                "reader": record.reader,
                "query_id": record.query_id,
                "check": check,
                "omega_served": record.omega_served,
                "scored": record.scored,
                "total": record.total,
                "got": got,
                "expected": expected,
            }
        )

    report.parity_checked += 1
    slices = [r for r in record.shard_results if r is not None]
    entries: list[tuple[float, str]] = []
    for r in slices:
        scores = r.scores if r.scores is not None else []
        entries.extend(zip(scores, r))
    entries.sort(key=lambda entry: (-entry[0], entry[1]))
    expected_merged = [vid for _, vid in entries[: config.top_k]]
    if record.ids != expected_merged:
        fail("merge", record.ids, expected_merged)
        return
    # The owner shard's epoch supplies the guest-query payload the
    # gateway scattered with (the soak runs the default "sar-h" mode).
    owner_epoch = next(
        (
            epoch
            for epoch in (record.epochs or ())
            if record.query_id in epoch.series
        ),
        None,
    )
    query_series = None
    query_vector = None
    if owner_epoch is not None:
        query_series = owner_epoch.series[record.query_id]
        if owner_epoch.social_store.available and owner_epoch.video_ids:
            row = int(np.searchsorted(owner_epoch._ids_array, record.query_id))
            if config.social_mode in ("sar", "sar-h"):
                query_vector = owner_epoch.sar_matrix(config.social_mode)[row]
            elif config.social_mode == "sketch":
                matrix, sizes = owner_epoch.sketch_matrix()
                query_vector = (matrix[row], int(sizes[row]))

    def shard_components(r, ids: list[str]) -> dict:
        """``{id: (content, social)}`` from *r*'s shard oracle."""
        oracle_key = (r.shard_id, r.epoch.epoch_id, r.omega_served)
        oracle = oracles.get(oracle_key)
        if oracle is None:
            oracle = r.epoch.recommender(
                omega=r.omega_served,
                time_budget=None,
                social_mode=config.social_mode,
            )
            oracles[oracle_key] = oracle
        content, social = oracle._score_arrays(
            record.query_id,
            ids,
            r.omega_served,
            query_series=query_series,
            query_vector=query_vector,
        )
        return {
            vid: (float(c), float(s)) for vid, c, s in zip(ids, content, social)
        }

    # Slice fidelity: exactly the oracle's fused scores for these ids,
    # ordered the way the merge expects.
    for r in slices:
        ids = list(r)
        scores = list(r.scores) if r.scores is not None else []
        if len(scores) != len(ids):
            fail(f"shard {r.shard_id} scores", scores, ids)
            return
        key = (
            "slice",
            r.shard_id,
            r.epoch.epoch_id,
            r.omega_served,
            record.query_id,
            tuple(ids),
        )
        expected_scores = cache.get(key)
        if expected_scores is None:
            components = shard_components(r, ids)
            expected_scores = [
                fuse_fj(*components[vid], r.omega_served) for vid in ids
            ]
            cache[key] = expected_scores
        if scores != expected_scores:
            fail(f"shard {r.shard_id} scores", scores, expected_scores)
            return
        ordered = sorted(range(len(ids)), key=lambda i: (-scores[i], ids[i]))
        if ordered != list(range(len(ids))):
            fail(f"shard {r.shard_id} order", ids, [ids[i] for i in ordered])
            return

    if record.partial:
        # Pooled (deadline) scatter: no threshold chaining — each slice
        # is its shard's oracle over the scored candidate prefix.
        for r in slices:
            key = (
                "prefix",
                r.shard_id,
                r.epoch.epoch_id,
                r.omega_served,
                record.query_id,
                r.scored,
            )
            expected = cache.get(key)
            if expected is None:
                candidates = [
                    vid for vid in r.epoch.video_ids if vid != record.query_id
                ]
                prefix = candidates[: r.scored]
                if prefix:
                    expected = rank_components(
                        shard_components(r, prefix), r.omega_served, config.top_k
                    )
                else:
                    expected = []
                cache[key] = expected
            if list(r) != expected:
                fail(f"shard {r.shard_id}", list(r), expected)
                return
    else:
        # Deadline-free scatter: slices may be threshold-trimmed, but
        # only of candidates provably outside the merged top-K — so the
        # merge of every present shard's FULL local oracle top-K must
        # reproduce the served merged ranking bit-identically.
        full_entries: list[tuple[float, str]] = []
        for r in slices:
            key = (
                "full",
                r.shard_id,
                r.epoch.epoch_id,
                r.omega_served,
                record.query_id,
            )
            expected = cache.get(key)
            if expected is None:
                candidates = [
                    vid for vid in r.epoch.video_ids if vid != record.query_id
                ]
                if candidates:
                    expected = rank_components_scored(
                        shard_components(r, candidates),
                        r.omega_served,
                        config.top_k,
                    )
                else:
                    expected = ([], [])
                cache[key] = expected
            full_entries.extend(zip(expected[1], expected[0]))
        full_entries.sort(key=lambda entry: (-entry[0], entry[1]))
        expected_full = [vid for _, vid in full_entries[: config.top_k]]
        if record.ids != expected_full:
            fail("full-merge", record.ids, expected_full)
            return


def _dump_artifact(config: SoakConfig, report: SoakReport) -> str | None:
    directory = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"chaos_soak_seed{config.seed}.json")
    schedule = {
        "config": {
            "writers": config.writers,
            "readers": config.readers,
            "queries": config.queries,
            "top_k": config.top_k,
            "seed": config.seed,
            "hours": config.hours,
            "base_videos": config.base_videos,
            "writer_ops": config.writer_ops,
            "tight_deadline_every": config.tight_deadline_every,
            "tight_deadline": config.tight_deadline,
            "fault_burst_every": config.fault_burst_every,
            "fault_burst": config.fault_burst,
            "shards": config.shards,
            "router": config.router,
            "scenario": config.scenario,
            "attack_start": config.attack_start,
            "attack_end": config.attack_end,
            "attack_threads": config.attack_threads,
            "attack_ops": config.attack_ops,
            "recovery_factor": config.recovery_factor,
            "recovery_window": config.recovery_window,
            "defense": None if config.defense is None else vars(config.defense),
        },
        "report": report.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schedule, handle, indent=2)
    return path


def run_soak(config: SoakConfig | None = None) -> SoakReport:
    """Run one seeded chaos soak; see the module docstring for the shape.

    Runs against a private :class:`~repro.obs.MetricsRegistry` (scoped via
    :func:`~repro.obs.use_metrics`), whose snapshot lands in
    ``report.metrics`` — a soak never pollutes the process registry.
    """
    config = config or SoakConfig()
    report = SoakReport(config_seed=config.seed, scenario=config.scenario)
    workload = build_workload(hours=config.hours, seed=config.seed % (2**31))
    dataset = workload.dataset
    masters = sorted(
        vid for vid, record in dataset.records.items() if record.lineage is None
    )
    base_ids = masters[: config.base_videos]
    if len(base_ids) < config.base_videos:
        raise ValueError(
            f"community too small: {len(base_ids)} masters for "
            f"{config.base_videos} base videos"
        )
    rec_config = RecommenderConfig(k=12)
    sharded = config.shards > 1
    if sharded:
        router = make_router(config.router, config.shards, rec_config)
        pools = _writer_pools(dataset, base_ids, config.writers, router=router)
        index = ShardedIndex.build(
            dataset.subset(base_ids), rec_config, config.shards, router=router
        )
        for shard in index.shards:
            shard.dataset.comments = list(dataset.comments)
        plans = [FaultPlan() for _ in range(config.shards)]
    else:
        pools = _writer_pools(dataset, base_ids, config.writers)
        index = LiveCommunityIndex(dataset.subset(base_ids), rec_config)
        index.dataset.comments = list(dataset.comments)
        plans = [FaultPlan()]
    # The retire storm churns its own pool, stolen from the writers so
    # storm and writer mutations never touch the same video.
    storm_pool: list[str] = []
    if config.scenario == "retire_storm":
        for pool in pools:
            while len(pool) > 2 and len(storm_pool) < 4 * config.writers:
                storm_pool.append(pool.pop())
        if not storm_pool:
            raise ValueError("community too small for a retire storm pool")
    gateway_config = config.gateway
    if config.defense is not None:
        gateway_config = replace(gateway_config, defense=config.defense)
    guard: SpamGuard | None = None
    if (
        config.scenario == "spam_burst"
        and config.defense is not None
        and config.defense.quarantine
    ):
        master = index.shards[0] if sharded else index
        store = master.social_store

        def _membership(user: str, video: str) -> bool:
            descriptor = store.descriptors.get(video)
            return descriptor is not None and user in descriptor.users

        guard = SpamGuard(config.defense, membership=_membership)
    metrics = MetricsRegistry()
    started = time.monotonic()
    with use_metrics(metrics):
        if sharded:
            gateway = ShardedGateway(
                index,
                config=gateway_config,
                faults=plans,
                seed=config.seed,
                social_mode=config.social_mode,
            )
        else:
            gateway = ServingGateway(
                index,
                config=gateway_config,
                faults=plans[0],
                seed=config.seed,
                social_mode=config.social_mode,
            )
        baseline_rank: dict[str, list[str]] = {}
        if config.scenario == "spam_burst":
            baseline_rank = {
                qid: list(gateway.recommend(qid, top_k=config.top_k))
                for qid in base_ids
            }
        lock = threading.Lock()
        records: list[_QueryRecord] = []
        latencies: list[tuple[float, float]] = []
        stop = threading.Event()
        fault_thread = threading.Thread(
            target=_fault_loop, args=(plans, config, stop), name="chaos-faults"
        )
        # The spam scenario stands the regular writers down: with the
        # only mutations being (guarded) spam, the final-vs-baseline
        # rank correlation isolates exactly the spam's surviving trace.
        spawn_writers = config.scenario != "spam_burst"
        writer_threads = [
            threading.Thread(
                target=_writer_loop,
                args=(
                    gateway,
                    dataset,
                    pools[i],
                    base_ids,
                    config,
                    np.random.default_rng(config.seed + 1000 + i),
                    report,
                    lock,
                ),
                name=f"chaos-writer-{i}",
            )
            for i in range(config.writers if spawn_writers else 0)
        ]
        reader_threads = [
            threading.Thread(
                target=_reader_loop,
                args=(
                    gateway,
                    i,
                    base_ids,
                    config,
                    np.random.default_rng(config.seed + 2000 + i),
                    report,
                    records,
                    latencies,
                    lock,
                    started,
                ),
                name=f"chaos-reader-{i}",
            )
            for i in range(config.readers)
        ]
        attack_state = _AttackState()
        attack_threads: list[threading.Thread] = []
        if config.scenario == "flash_crowd":
            attack_threads = [
                threading.Thread(
                    target=_flash_crowd_loop,
                    args=(
                        gateway,
                        base_ids[0],
                        config,
                        report,
                        attack_state,
                        lock,
                        started,
                    ),
                    name=f"chaos-crowd-{i}",
                )
                for i in range(config.attack_threads)
            ]
        elif config.scenario == "spam_burst":
            spam_users = [f"spammer-{i:03d}" for i in range(config.attack_threads)]
            attack_threads = [
                threading.Thread(
                    target=_spam_burst_loop,
                    args=(
                        gateway,
                        guard,
                        spam_users,
                        base_ids,
                        config,
                        report,
                        attack_state,
                        lock,
                        started,
                        np.random.default_rng(config.seed + 3000),
                    ),
                    name="chaos-spam",
                )
            ]
        elif config.scenario == "retire_storm":
            attack_threads = [
                threading.Thread(
                    target=_retire_storm_loop,
                    args=(
                        gateway,
                        dataset,
                        storm_pool,
                        config,
                        report,
                        attack_state,
                        lock,
                        started,
                    ),
                    name="chaos-storm",
                )
            ]
        fault_thread.start()
        for thread in writer_threads + reader_threads + attack_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        for thread in writer_threads + attack_threads:
            thread.join()
        stop.set()
        fault_thread.join()
        report.attack_ops_done = attack_state.ops
        # Snapshot serving metrics now: the breaker-recovery queries
        # below are post-soak bookkeeping, not soak traffic, and must
        # not skew the counters the tests reconcile against the report.
        report.metrics = metrics.snapshot()
        # Let every breaker recover (faults are disarmed) so the report
        # can assert the full trip -> open -> half-open -> closed cycle.
        shard_gateways = gateway.gateways if sharded else [gateway]
        deadline = time.monotonic() + 2.0
        while (
            any(gw.breaker.state != "closed" for gw in shard_gateways)
            and report.queries_total
            and time.monotonic() < deadline
        ):
            time.sleep(config.gateway.breaker_cooldown)
            try:
                gateway.recommend(base_ids[0], top_k=config.top_k)
            except OverloadedError:  # pragma: no cover - drained by now
                pass
        if config.scenario == "spam_burst":
            final_rank = {
                qid: list(gateway.recommend(qid, top_k=config.top_k))
                for qid in base_ids
            }
            report.rank_correlation = _rank_overlap(baseline_rank, final_rank)
            if guard is not None:
                report.quarantine = {
                    "suspect_users": guard.suspect_users,
                    "held_comments": guard.held_comments,
                    "confirmed_users": sum(
                        1
                        for user in (
                            f"spammer-{i:03d}" for i in range(config.attack_threads)
                        )
                        if guard.state_of(user) == "confirmed"
                    ),
                }
        if sharded:
            gateway.close()
    report.elapsed_seconds = time.monotonic() - started
    report.epochs_published = sum(gw.epochs.published_total for gw in shard_gateways)
    report.epochs_retired = sum(gw.epochs.retired_total for gw in shard_gateways)
    report.epochs_live = sum(gw.epochs.live_count for gw in shard_gateways)
    for gw in shard_gateways:
        report.breaker_transitions.extend(gw.breaker.transitions)
    if sharded:
        report.shard_sizes = index.shard_sizes()
        report.shard_breaker_transitions = [
            list(gw.breaker.transitions) for gw in shard_gateways
        ]
    if latencies:
        ordered = np.sort(np.asarray([seconds for _, seconds in latencies]))
        report.latencies_ms = {
            "p50": float(np.percentile(ordered, 50) * 1000),
            "p99": float(np.percentile(ordered, 99) * 1000),
            "max": float(ordered[-1] * 1000),
        }
    if config.scenario != "none":
        _measure_attack(latencies, attack_state, config, report)
    if config.verify:
        _verify(records, config, report)
    if not report.ok:
        report.artifact_path = _dump_artifact(config, report)
    return report
