"""Indexing substrates: chained hashing, Z-order, B+-tree, LSB, inverted files."""

from repro.index.bptree import BPlusTree
from repro.index.hashing import ChainedHashTable, shift_add_xor
from repro.index.inverted import InvertedFile
from repro.index.lsb import LsbEntry, LsbIndex
from repro.index.zorder import common_prefix_length, zorder_decode, zorder_encode

__all__ = [
    "BPlusTree",
    "ChainedHashTable",
    "InvertedFile",
    "LsbEntry",
    "LsbIndex",
    "common_prefix_length",
    "shift_add_xor",
    "zorder_decode",
    "zorder_encode",
]
