"""Inverted files from sub-community ids to video ids (paper Section 4.4).

"To quickly identify the social relevance, we use k inverted files, each of
which stores a sub-community id and a list of its corresponding videos."

A video is listed under sub-community ``c`` when at least one of its social
users belongs to ``c`` (i.e. its SAR vector has a positive count in
dimension ``c``).  Given a query vector, the candidate set is the union of
the postings of the query's non-zero dimensions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["InvertedFile"]


class InvertedFile:
    """k postings lists: sub-community id -> video ids."""

    def __init__(self, num_communities: int) -> None:
        if num_communities < 1:
            raise ValueError("need at least one sub-community")
        self._postings: list[list[str]] = [[] for _ in range(num_communities)]
        self._memberships: dict[str, set[int]] = {}

    @property
    def num_communities(self) -> int:
        """Number of postings lists (the SAR dimensionality k)."""
        return len(self._postings)

    def add_video(self, video_id: str, vector: Sequence[float] | np.ndarray) -> None:
        """Register *video_id* under every community its vector touches."""
        vector = np.asarray(vector)
        if vector.shape != (self.num_communities,):
            raise ValueError(
                f"vector length {vector.shape} does not match k={self.num_communities}"
            )
        communities = {int(c) for c in np.nonzero(vector > 0)[0]}
        previous = self._memberships.get(video_id, set())
        for community in communities - previous:
            self._postings[community].append(video_id)
        for community in previous - communities:
            self._postings[community].remove(video_id)
        self._memberships[video_id] = communities

    def postings(self, community: int) -> list[str]:
        """The videos listed under *community* (a copy)."""
        return list(self._postings[community])

    def candidates(self, query_vector: Sequence[float] | np.ndarray) -> list[str]:
        """Union of postings over the query vector's non-zero dimensions.

        Order: first occurrence while scanning communities by descending
        query count, so videos sharing the query's dominant communities
        surface first.
        """
        query_vector = np.asarray(query_vector)
        if query_vector.shape != (self.num_communities,):
            raise ValueError(
                f"query length {query_vector.shape} does not match k={self.num_communities}"
            )
        order = np.argsort(query_vector)[::-1]
        results: list[str] = []
        seen: set[str] = set()
        for community in order:
            if query_vector[community] <= 0:
                break
            for video_id in self._postings[int(community)]:
                if video_id not in seen:
                    seen.add(video_id)
                    results.append(video_id)
        return results

    def remove_video(self, video_id: str) -> None:
        """Remove every posting of *video_id* (no-op when absent)."""
        for community in self._memberships.pop(video_id, set()):
            self._postings[community].remove(video_id)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._memberships

    def __len__(self) -> int:
        return len(self._memberships)
