"""A from-scratch B+-tree keyed by integers.

The LSB index of Tao et al. [28] is "a B+-tree-based hash index ... for
Z-order values of hash keys"; Section 4.4 of the paper reuses it for the
content-relevance KNN.  This tree supports:

* duplicate keys (several signatures can share one Z-order value);
* leftmost-position search (`seek`), used to anchor prefix scans;
* doubly linked leaves so searches can expand outward in both directions —
  the access pattern of "continuously finding the next longest common
  prefix with the query".

It is intentionally a textbook implementation: sorted key arrays inside
nodes, top-down descent with bisect, bottom-up splits.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Any

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.children: list[Any] = []


class BPlusTree:
    """Order-configurable B+-tree with linked leaves and duplicate keys.

    Parameters
    ----------
    order:
        Maximum number of keys per node; nodes split when they exceed it.
        Must be at least 3.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self._order = order
        self._root: Any = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def order(self) -> int:
        """Maximum keys per node."""
        return self._order

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        """Insert ``(key, value)``; duplicate keys are kept side by side."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: Any, key: int, value: Any):
        if isinstance(node, _Leaf):
            index = bisect.bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def seek(self, key: int) -> tuple[_Leaf, int]:
        """Position of the first entry with key ``>= key``.

        Returns ``(leaf, index)``; when every stored key is smaller, the
        position is past the end of the last leaf (``index ==
        len(leaf.keys)``).
        """
        node = self._root
        while isinstance(node, _Internal):
            # Descend left on separator ties: duplicates of the separator
            # may straddle a split, and we want the leftmost occurrence.
            index = bisect.bisect_left(node.keys, key)
            node = node.children[index]
        leaf: _Leaf = node
        index = bisect.bisect_left(leaf.keys, key)
        if index == len(leaf.keys) and leaf.next is not None:
            # The tie-descent can land one leaf early; the true successor
            # is then the first entry of the next leaf.
            return leaf.next, 0
        return leaf, index

    def get(self, key: int) -> list[Any]:
        """All values stored under exactly *key* (empty list when absent)."""
        leaf, index = self.seek(key)
        results: list[Any] = []
        while leaf is not None:
            while index < len(leaf.keys):
                if leaf.keys[index] != key:
                    return results
                results.append(leaf.values[index])
                index += 1
            leaf = leaf.next
            index = 0
        return results

    def items(self) -> Iterator[tuple[int, Any]]:
        """All entries in ascending key order."""
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range(self, low: int, high: int) -> Iterator[tuple[int, Any]]:
        """Entries with ``low <= key <= high`` in ascending order."""
        if low > high:
            return
        leaf, index = self.seek(low)
        while leaf is not None:
            while index < len(leaf.keys):
                if leaf.keys[index] > high:
                    return
                yield leaf.keys[index], leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    @staticmethod
    def _scan_forward(leaf: _Leaf | None, index: int) -> Iterator[tuple[int, Any]]:
        while leaf is not None:
            while index < len(leaf.keys):
                yield leaf.keys[index], leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    @staticmethod
    def _scan_backward(leaf: _Leaf | None, index: int) -> Iterator[tuple[int, Any]]:
        while leaf is not None:
            while index >= 0:
                yield leaf.keys[index], leaf.values[index]
                index -= 1
            leaf = leaf.prev
            index = len(leaf.keys) - 1 if leaf is not None else -1

    def neighbourhood(self, key: int) -> Iterator[tuple[int, Any]]:
        """Entries in order of increasing key distance from *key*.

        Alternates between the next entry to the right and the next to the
        left of the seek position — the outward bidirectional leaf walk the
        LSB search performs to find "the next longest common prefix".
        """
        anchor_leaf, anchor_index = self.seek(key)
        forward = self._scan_forward(anchor_leaf, anchor_index)
        if anchor_index > 0:
            backward = self._scan_backward(anchor_leaf, anchor_index - 1)
        else:
            backward = self._scan_backward(anchor_leaf.prev,
                                           len(anchor_leaf.prev.keys) - 1
                                           if anchor_leaf.prev is not None else -1)
        pending_right = next(forward, None)
        pending_left = next(backward, None)
        while pending_right is not None or pending_left is not None:
            if pending_left is None:
                take_right = True
            elif pending_right is None:
                take_right = False
            else:
                take_right = abs(pending_right[0] - key) <= abs(key - pending_left[0])
            if take_right:
                yield pending_right
                pending_right = next(forward, None)
            else:
                yield pending_left
                pending_left = next(backward, None)

    def depth(self) -> int:
        """Tree height (1 for a lone leaf)."""
        depth = 1
        node = self._root
        while isinstance(node, _Internal):
            depth += 1
            node = node.children[0]
        return depth
