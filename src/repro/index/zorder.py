"""Z-order (Morton) encoding for the LSB content index.

The LSB-tree of Tao et al. [28] stores each LSH-hashed point by the Z-order
value of its ``m`` integer hash coordinates and answers approximate nearest
neighbour queries by scanning entries whose Z-order keys share the longest
common prefix with the query.  This module provides bit interleaving,
decoding and the common-prefix primitive that search relies on.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["zorder_encode", "zorder_decode", "common_prefix_length"]


def zorder_encode(coordinates: Sequence[int], bits_per_dim: int) -> int:
    """Interleave *coordinates* into a single Morton code.

    Bit ``b`` of dimension ``d`` (with ``b = bits_per_dim - 1`` the most
    significant) lands at output position ``b * ndim + (ndim - 1 - d)`` so
    that the most significant output bits cycle through the dimensions'
    most significant bits — the standard Z-order layout.

    Raises
    ------
    ValueError
        If any coordinate is negative or needs more than *bits_per_dim*
        bits.
    """
    if bits_per_dim < 1:
        raise ValueError(f"bits_per_dim must be >= 1, got {bits_per_dim}")
    if not coordinates:
        raise ValueError("need at least one coordinate")
    limit = 1 << bits_per_dim
    code = 0
    for bit in range(bits_per_dim - 1, -1, -1):
        for dim, value in enumerate(coordinates):
            if not 0 <= value < limit:
                raise ValueError(
                    f"coordinate {value} out of range [0, {limit}) for "
                    f"{bits_per_dim}-bit encoding"
                )
            code = (code << 1) | ((value >> bit) & 1)
    return code


def zorder_decode(code: int, ndim: int, bits_per_dim: int) -> list[int]:
    """Invert :func:`zorder_encode`."""
    if code < 0:
        raise ValueError("Morton codes are non-negative")
    if ndim < 1 or bits_per_dim < 1:
        raise ValueError("ndim and bits_per_dim must be >= 1")
    coordinates = [0] * ndim
    position = ndim * bits_per_dim - 1
    for bit in range(bits_per_dim - 1, -1, -1):
        for dim in range(ndim):
            coordinates[dim] |= ((code >> position) & 1) << bit
            position -= 1
    return coordinates


def common_prefix_length(first: int, second: int, total_bits: int) -> int:
    """Number of leading bits shared by two Morton codes of *total_bits*.

    The LSB-tree ranks candidate entries by this value: a longer common
    prefix means the two points share a smaller Z-order quadrant and are
    therefore likely closer.
    """
    if total_bits < 1:
        raise ValueError("total_bits must be >= 1")
    difference = (first ^ second) & ((1 << total_bits) - 1)
    if difference == 0:
        return total_bits
    return total_bits - difference.bit_length()
