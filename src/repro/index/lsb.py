"""The LSB content index: LSH over the EMD->L1 embedding, Z-order keys,
B+-tree storage, longest-common-prefix KNN (paper Section 4.4, refs [28, 35]).

Pipeline per signature:

1. embed the cuboid signature into L1 space (:class:`~repro.emd.EmdEmbedding`);
2. hash the embedding with ``m`` 1-stable (Cauchy) LSH projections
   ``h_i(x) = floor((a_i . x + b_i) / W)`` — the standard family for the L1
   metric;
3. clamp each hash into ``[0, 2^bits)`` and interleave into a Z-order key;
4. store ``(zkey, entry)`` in a B+-tree.

A query walks the tree outward from its own Z-order key, yielding the
entries with the *next longest common prefix* first — the access pattern of
the paper's Figure 6 content step.  Multiple independent trees can be used
to boost recall, as in the original LSB forest.

Deletion is tombstone-based: the B+-tree is append-only, so
:meth:`LsbIndex.remove` marks a video dead and probes skip its entries;
:meth:`LsbIndex.compact` rebuilds the trees without the dead entries, and
runs automatically once tombstones exceed a fraction of the live size.
This is what lets a live community retire videos without rebuilding the
whole forest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emd.embedding import EmdEmbedding
from repro.index.bptree import BPlusTree
from repro.index.zorder import common_prefix_length, zorder_encode
from repro.signatures.cuboid import CuboidSignature

__all__ = ["LsbEntry", "LsbIndex"]


@dataclass(frozen=True)
class LsbEntry:
    """One indexed signature: its owning video and position in the series."""

    video_id: str
    signature_index: int
    signature: CuboidSignature


class LsbIndex:
    """LSB forest over cuboid signatures.

    Parameters
    ----------
    embedding:
        The EMD -> L1 embedding shared by every signature.
    num_projections:
        ``m``, the number of LSH hash functions per tree (the Z-order
        dimensionality).
    bits_per_dim:
        Bits used to clamp each hash coordinate.
    bucket_width:
        ``W`` of the p-stable family; larger widths hash more aggressively
        (more collisions, higher recall, lower precision).
    num_trees:
        Independent LSB-trees; query results interleave across trees.
    seed:
        Seed for the Cauchy projection vectors.
    """

    def __init__(
        self,
        embedding: EmdEmbedding,
        num_projections: int = 4,
        bits_per_dim: int = 8,
        bucket_width: float = 2.0,
        num_trees: int = 2,
        seed: int = 7,
        tree_order: int = 32,
    ) -> None:
        if num_projections < 1:
            raise ValueError("need at least one projection")
        if bits_per_dim < 1:
            raise ValueError("bits_per_dim must be >= 1")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if num_trees < 1:
            raise ValueError("need at least one tree")
        self._embedding = embedding
        self._m = num_projections
        self._bits = bits_per_dim
        self._width = bucket_width
        rng = np.random.default_rng(seed)
        # 1-stable (Cauchy) projections: the LSH family for L1.
        self._projections = [
            rng.standard_cauchy(size=(num_projections, embedding.resolution))
            for _ in range(num_trees)
        ]
        self._offsets = [
            rng.uniform(0.0, bucket_width, size=num_projections)
            for _ in range(num_trees)
        ]
        self._trees = [BPlusTree(order=tree_order) for _ in range(num_trees)]
        self._tree_order = tree_order
        self._size = 0
        #: Per-video live entry counts (for O(1) tombstoning).
        self._video_entries: dict[str, int] = {}
        #: Tombstoned videos whose entries still sit in the trees.
        self._dead: set[str] = set()
        self._dead_entries = 0
        #: Dead fraction above which mutation triggers auto-compaction.
        self.compact_threshold = 0.5

    @property
    def total_bits(self) -> int:
        """Bit length of every Z-order key."""
        return self._m * self._bits

    def __len__(self) -> int:
        return self._size

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._video_entries

    @property
    def dead_entries(self) -> int:
        """Tombstoned entries still physically present in the trees."""
        return self._dead_entries

    def _zkey(self, tree_index: int, signature: CuboidSignature) -> int:
        vector = self._embedding.embed(signature.values, signature.weights)
        raw = (self._projections[tree_index] @ vector + self._offsets[tree_index]) / self._width
        half = 1 << (self._bits - 1)
        coords = np.clip(np.floor(raw).astype(np.int64) + half, 0, (1 << self._bits) - 1)
        return zorder_encode([int(c) for c in coords], self._bits)

    def insert(self, video_id: str, signature_index: int, signature: CuboidSignature) -> None:
        """Index one signature of one video in every tree."""
        if video_id in self._dead:
            # A retired id is being re-ingested: purge its tombstoned
            # entries first so they cannot resurrect alongside the new ones.
            self.compact()
        entry = LsbEntry(video_id, signature_index, signature)
        for tree_index, tree in enumerate(self._trees):
            tree.insert(self._zkey(tree_index, signature), entry)
        self._video_entries[video_id] = self._video_entries.get(video_id, 0) + 1
        self._size += 1

    def remove(self, video_id: str) -> int:
        """Tombstone every entry of *video_id*; returns the entry count.

        The B+-trees are append-only, so the entries stay physically in
        place but stop appearing in probe results immediately.  When the
        tombstone fraction exceeds :attr:`compact_threshold`, the trees are
        compacted automatically.  Removing an unknown video is a no-op.
        """
        count = self._video_entries.pop(video_id, 0)
        if count == 0:
            return 0
        self._dead.add(video_id)
        self._dead_entries += count
        self._size -= count
        if self._dead_entries > self.compact_threshold * max(1, self._size):
            self.compact()
        return count

    def compact(self) -> None:
        """Rebuild every tree without the tombstoned entries."""
        if not self._dead:
            return
        for tree_index, tree in enumerate(self._trees):
            fresh = BPlusTree(order=self._tree_order)
            for key, entry in tree.items():
                if entry.video_id not in self._dead:
                    fresh.insert(key, entry)
            self._trees[tree_index] = fresh
        self._dead.clear()
        self._dead_entries = 0

    def probe(
        self,
        signature: CuboidSignature,
        budget: int,
        probes: int | None = None,
    ) -> list[tuple[int, LsbEntry]]:
        """Return up to *budget* candidate entries for *signature*.

        Candidates are collected by walking each tree outward from the
        query key and merged by descending common-prefix length, so the
        first results are those sharing the smallest Z-order quadrant with
        the query — "the next longest common prefix" order.

        *probes* limits how many of the forest's trees are consulted
        (``None`` = all).  Fewer probes mean fewer, more concentrated
        candidates — the recall-vs-candidates trade the bench sweeps.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if probes is not None and probes < 1:
            raise ValueError("probes must be >= 1")
        trees = self._trees
        if probes is not None:
            trees = trees[: min(probes, len(trees))]
        scored: list[tuple[int, LsbEntry]] = []
        per_tree = max(1, budget // len(trees))
        seen: set[tuple[str, int]] = set()
        for tree_index, tree in enumerate(trees):
            query_key = self._zkey(tree_index, signature)
            taken = 0
            for key, entry in tree.neighbourhood(query_key):
                if entry.video_id in self._dead:
                    continue
                identity = (entry.video_id, entry.signature_index)
                if identity in seen:
                    continue
                seen.add(identity)
                lcp = common_prefix_length(key, query_key, self.total_bits)
                scored.append((lcp, entry))
                taken += 1
                if taken >= per_tree:
                    break
        scored.sort(key=lambda pair: -pair[0])
        return scored[:budget]

    def candidate_videos(
        self,
        signature: CuboidSignature,
        budget: int,
        probes: int | None = None,
    ) -> list[str]:
        """Distinct video ids among the probe results, best-prefix first."""
        ordered: list[str] = []
        seen: set[str] = set()
        for _, entry in self.probe(signature, budget, probes=probes):
            if entry.video_id not in seen:
                seen.add(entry.video_id)
                ordered.append(entry.video_id)
        return ordered
