"""Shift-add-xor string hashing and the chained hash table (Section 4.2.3).

The paper maps social user names to sub-community ids through a chained
hash table keyed by the *shift-add-xor* family of Ramakrishna & Zobel
(Eq. 7):

    init(v)        = v
    step(i, h, c)  = h XOR (shift_left(h, L) + shift_right(h, R) + c)
    final(h, v)    = h mod T

Each bucket element is the triad ``<key, cno, nextptr>`` from the paper's
Figure 4; we keep the explicit linked-chain representation (rather than a
Python ``dict``) because the efficiency experiments measure precisely this
structure against the binary-searched sorted dictionary that plain SAR uses.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from functools import lru_cache

__all__ = ["shift_add_xor", "ChainedHashTable"]

_MASK64 = (1 << 64) - 1


@lru_cache(maxsize=1 << 17)
def shift_add_xor(key: str, seed: int = 31, left: int = 5, right: int = 2) -> int:
    """Hash *key* with the shift-add-xor family (Eq. 7 of the paper).

    Parameters
    ----------
    key:
        The string to hash (a social user name).
    seed:
        The initial hash value ``v``.
    left, right:
        The ``L``-bit left shift and ``R``-bit right shift of the step
        function.

    Returns
    -------
    int
        An unreduced 64-bit hash value; callers apply their own modulo.

    Notes
    -----
    Hash codes are memoised (``lru_cache``): user names recur across every
    descriptor vectorization, so repeated probes cost a dictionary hit
    instead of a per-character loop.  The memo is transparent — it never
    changes a returned value, only its cost.
    """
    h = seed & _MASK64
    for char in key:
        h = (h ^ (((h << left) + (h >> right) + ord(char)) & _MASK64)) & _MASK64
    return h


@dataclass
class _Node:
    """One bucket element: the paper's ``<key, cno, nextptr>`` triad."""

    key: str
    cno: int
    nextptr: "_Node | None" = None


class ChainedHashTable:
    """Chained hash table mapping user names to sub-community ids.

    New triads are inserted at the *head* of their bucket, exactly as the
    paper describes.  The table exposes collision statistics so the
    efficiency benches can report the ``n * eta * beta`` vectorization cost
    model of Section 4.2.3.
    """

    def __init__(self, num_buckets: int = 1024, seed: int = 31) -> None:
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self._buckets: list[_Node | None] = [None] * num_buckets
        self._seed = seed
        self._size = 0

    @property
    def num_buckets(self) -> int:
        """Number of hash buckets."""
        return len(self._buckets)

    def __len__(self) -> int:
        return self._size

    def _bucket_index(self, key: str) -> int:
        return shift_add_xor(key, seed=self._seed) % len(self._buckets)

    def insert(self, key: str, cno: int) -> None:
        """Insert or update the triad for *key*.

        An existing triad with the same key has its ``cno`` overwritten
        (users belong to exactly one sub-community); otherwise a new triad
        is pushed at the bucket head.
        """
        index = self._bucket_index(key)
        node = self._buckets[index]
        while node is not None:
            if node.key == key:
                node.cno = cno
                return
            node = node.nextptr
        self._buckets[index] = _Node(key=key, cno=cno, nextptr=self._buckets[index])
        self._size += 1

    def lookup(self, key: str) -> int | None:
        """Return the sub-community id of *key*, or ``None`` if absent."""
        node = self._buckets[self._bucket_index(key)]
        while node is not None:
            if node.key == key:
                return node.cno
            node = node.nextptr
        return None

    def delete(self, key: str) -> bool:
        """Remove *key*'s triad.  Returns True when something was removed."""
        index = self._bucket_index(key)
        node = self._buckets[index]
        previous: _Node | None = None
        while node is not None:
            if node.key == key:
                if previous is None:
                    self._buckets[index] = node.nextptr
                else:
                    previous.nextptr = node.nextptr
                self._size -= 1
                return True
            previous = node
            node = node.nextptr
        return False

    def relabel(self, old_cno: int, new_cno: int) -> int:
        """Rewrite every triad carrying *old_cno* to *new_cno*.

        Used by the social-updates maintenance when sub-communities merge
        ("replacing the ids of the two original sub-communities with a
        single new id").  Returns the number of triads rewritten.
        """
        changed = 0
        for head in self._buckets:
            node = head
            while node is not None:
                if node.cno == old_cno:
                    node.cno = new_cno
                    changed += 1
                node = node.nextptr
        return changed

    def items(self) -> Iterator[tuple[str, int]]:
        """Iterate ``(key, cno)`` pairs in bucket order."""
        for head in self._buckets:
            node = head
            while node is not None:
                yield node.key, node.cno
                node = node.nextptr

    def __contains__(self, key: str) -> bool:
        return self.lookup(key) is not None

    def chain_lengths(self) -> list[int]:
        """Length of every bucket chain (collision diagnostics)."""
        lengths = []
        for head in self._buckets:
            count = 0
            node = head
            while node is not None:
                count += 1
                node = node.nextptr
            lengths.append(count)
        return lengths

    def average_collisions(self) -> float:
        """Mean extra comparisons per lookup — the ``eta`` of Section 4.2.3.

        Computed as the expected number of *other* triads sharing the probed
        key's bucket, averaged over stored keys.
        """
        if self._size == 0:
            return 0.0
        total = sum(length * (length - 1) for length in self.chain_lengths())
        return total / self._size
