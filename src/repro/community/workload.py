"""Experiment workloads: the Table-2 queries and source-video selection.

The paper retrieves the top favourite videos of the five most popular
YouTube queries (its Table 2) and, following [33], uses the top two videos
of each query as recommendation sources — 10 source videos in total.  We
mirror that: each query topic's two most-commented videos become sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.generator import QUERY_TOPICS, CommunityConfig, generate_community
from repro.community.models import CommunityDataset

__all__ = ["QUERY_TOPICS", "Workload", "build_workload", "select_source_videos"]


@dataclass(frozen=True)
class Workload:
    """A dataset plus its query source videos.

    Attributes
    ----------
    dataset:
        The generated community.
    sources:
        The 10 source video ids (two per Table-2 query, in query order).
    """

    dataset: CommunityDataset
    sources: tuple[str, ...]

    @property
    def queries(self) -> tuple[str, ...]:
        """The Table-2 query strings."""
        return QUERY_TOPICS


def select_source_videos(
    dataset: CommunityDataset, per_query: int = 2, up_to_month: int = 11
) -> tuple[str, ...]:
    """Pick each query topic's *per_query* most-commented videos.

    Ties break on video id for determinism.  Only the five query topics
    contribute sources; background topics never do (the paper's sources
    come from its query crawl).
    """
    counts = dataset.comment_counts(up_to_month=up_to_month)
    sources: list[str] = []
    for topic in range(len(QUERY_TOPICS)):
        candidates = dataset.videos_of_topic(topic)
        if not candidates:
            raise ValueError(f"query topic {topic} has no videos")
        ranked = sorted(candidates, key=lambda vid: (-counts.get(vid, 0), vid))
        sources.extend(ranked[:per_query])
    return tuple(sources)


def build_workload(
    hours: float = 20.0,
    seed: int = 2015,
    per_query: int = 2,
    **config_overrides,
) -> Workload:
    """Generate a community of *hours* hours and select its sources."""
    config = CommunityConfig(hours=hours, seed=seed, **config_overrides)
    dataset = generate_community(config)
    return Workload(dataset=dataset, sources=select_source_videos(dataset, per_query))
