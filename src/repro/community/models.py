"""Data model of the synthetic sharing community.

Videos are stored as lightweight :class:`VideoRecord` entries carrying the
*generation parameters* (seed, topic, lineage, edit seed) instead of raw
frames; :meth:`CommunityDataset.clip` re-synthesises any clip on demand,
deterministically.  This keeps a "200-hour" dataset (thousands of clips) in
a few megabytes while still letting every experiment touch real frames.

Time is modelled in *months*: the comment stream spans a 12-month source
year (months ``0..11``) plus a 4-month test window (months ``12..15``),
mirroring the paper's Sept. 2013 – Dec. 2014 crawl split used by the
social-update experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.social.descriptor import SocialDescriptor
from repro.video.clip import VideoClip
from repro.video.synthesis import synthesize_clip
from repro.video.transforms import derive_variant

__all__ = [
    "DEFAULT_UP_TO_MONTH",
    "SOURCE_MONTHS",
    "TEST_MONTHS",
    "User",
    "Comment",
    "VideoRecord",
    "CommunityDataset",
]

#: Months forming the source year of the comment stream.
SOURCE_MONTHS = range(0, 12)
#: Months forming the held-out update window (the paper's "recent 4 months").
TEST_MONTHS = range(12, 16)
#: Default comment watermark: the last source-year month.  Shared by the
#: dataset's social views, the stores and the snapshot loader so "build
#: through the source year" means the same thing everywhere.
DEFAULT_UP_TO_MONTH = SOURCE_MONTHS[-1]


@dataclass(frozen=True)
class User:
    """A registered social user.

    Attributes
    ----------
    user_id:
        Unique name (the string the chained hash table hashes).
    home_topic:
        The user's dominant interest topic.
    interests:
        Probability vector over topics; drives which videos the user
        comments on.  Multi-interest users are the social noise source the
        paper's ω < 1 optimum relies on.
    drift_topic:
        Topic the user drifts toward during the test months, or ``None``.
        Drift is what makes sub-communities reorganise over time.
    group:
        Fan-group index within the home topic.  Topics are not socially
        monolithic: users cluster into smaller co-commenting groups (the
        micro-communities SAR's sub-community extraction recovers).
    """

    user_id: str
    home_topic: int
    interests: tuple[float, ...]
    drift_topic: int | None = None
    group: int = 0


@dataclass(frozen=True)
class Comment:
    """One timestamped comment event."""

    user_id: str
    video_id: str
    month: int


@dataclass(frozen=True)
class VideoRecord:
    """Generation parameters of one video (frames are re-derivable).

    ``lineage is None`` marks original ("master") content; otherwise the
    record describes an edited near-duplicate of the master *lineage*,
    reproduced by applying a seeded random edit chain.
    """

    video_id: str
    topic: int
    seed: int
    owner: str
    title: str
    tags: tuple[str, ...]
    lineage: str | None = None
    edit_seed: int | None = None
    group: int = 0

    def __post_init__(self) -> None:
        if (self.lineage is None) != (self.edit_seed is None):
            raise ValueError("variants need both lineage and edit_seed; masters neither")


@dataclass
class CommunityDataset:
    """The full synthetic sharing community.

    Attributes
    ----------
    records:
        ``video_id -> VideoRecord``.
    users:
        ``user_id -> User``.
    comments:
        The complete timestamped comment stream (source + test months).
    topics:
        Human-readable topic names; the first five are the Table-2 queries.
    clip_params:
        Keyword arguments forwarded to the synthesiser (frame size, shots,
        fps...), so every materialisation is consistent.
    """

    records: dict[str, VideoRecord]
    users: dict[str, User]
    comments: list[Comment]
    topics: tuple[str, ...]
    clip_params: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Clip materialisation
    # ------------------------------------------------------------------
    def clip(self, video_id: str) -> VideoClip:
        """Deterministically re-synthesise the frames of *video_id*."""
        record = self.records[video_id]
        if record.lineage is None:
            return synthesize_clip(
                video_id=record.video_id,
                topic=record.topic,
                rng=np.random.default_rng(record.seed),
                title=record.title,
                tags=record.tags,
                **self.clip_params,
            )
        master = self.clip(record.lineage)
        variant = derive_variant(
            master, record.video_id, np.random.default_rng(record.edit_seed)
        )
        return VideoClip(
            video_id=record.video_id,
            frames=variant.frames,
            fps=variant.fps,
            title=record.title,
            topic=record.topic,
            lineage=record.lineage,
            tags=record.tags,
        )

    # ------------------------------------------------------------------
    # Social views
    # ------------------------------------------------------------------
    def comments_between(self, first_month: int, last_month: int) -> list[Comment]:
        """Comments with ``first_month <= month <= last_month``."""
        return [c for c in self.comments if first_month <= c.month <= last_month]

    def descriptors(
        self, up_to_month: int = DEFAULT_UP_TO_MONTH
    ) -> dict[str, SocialDescriptor]:
        """Social descriptors built from the owner plus comments through
        *up_to_month* (inclusive).  Every video is present even when it has
        no comments yet (the owner always counts); comments referencing
        videos without a record are ignored — only catalogued videos get
        descriptors, so a dataset subset stays self-consistent."""
        users_by_video: dict[str, set[str]] = {
            video_id: {record.owner} for video_id, record in self.records.items()
        }
        for comment in self.comments:
            if comment.month <= up_to_month and comment.video_id in users_by_video:
                users_by_video[comment.video_id].add(comment.user_id)
        return {
            video_id: SocialDescriptor.from_users(video_id, members)
            for video_id, members in users_by_video.items()
        }

    def subset(self, video_ids) -> "CommunityDataset":
        """A copy restricted to *video_ids* (records and their comments).

        Used to build the "final community" reference state that live
        ingest/retire sequences are checked against.
        """
        keep = set(video_ids)
        missing = keep - set(self.records)
        if missing:
            raise KeyError(f"unknown videos {sorted(missing)!r}")
        orphaned = {
            vid
            for vid in keep
            if self.records[vid].lineage is not None
            and self.records[vid].lineage not in keep
        }
        if orphaned:
            # A variant's frames are derived from its master's; a subset
            # that drops the master could never re-materialise the clip.
            raise ValueError(
                f"variants {sorted(orphaned)!r} need their lineage masters"
            )
        return CommunityDataset(
            records={vid: self.records[vid] for vid in keep},
            users=dict(self.users),
            comments=[c for c in self.comments if c.video_id in keep],
            topics=self.topics,
            clip_params=dict(self.clip_params),
        )

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def relevance_grade(self, query_id: str, candidate_id: str) -> int:
        """Ground-truth relevance grade used by the simulated judges.

        * 2 — near-duplicate content (same lineage root);
        * 1 — same topic (what human raters call "relevant" even when the
          footage differs);
        * 0 — unrelated.
        """
        if query_id == candidate_id:
            return 2
        query = self.records[query_id]
        candidate = self.records[candidate_id]
        query_root = query.lineage or query.video_id
        candidate_root = candidate.lineage or candidate.video_id
        if query_root == candidate_root:
            return 2
        if query.topic == candidate.topic:
            return 1
        return 0

    # ------------------------------------------------------------------
    # Convenience statistics
    # ------------------------------------------------------------------
    def comment_counts(self, up_to_month: int = DEFAULT_UP_TO_MONTH) -> dict[str, int]:
        """Number of comments per video through *up_to_month*."""
        counts = {video_id: 0 for video_id in self.records}
        for comment in self.comments:
            if comment.month <= up_to_month:
                counts[comment.video_id] = counts.get(comment.video_id, 0) + 1
        return counts

    def videos_of_topic(self, topic: int) -> list[str]:
        """Ids of every video generated under *topic*, sorted."""
        return sorted(
            video_id for video_id, record in self.records.items() if record.topic == topic
        )

    @property
    def num_videos(self) -> int:
        """Total number of videos."""
        return len(self.records)

    @property
    def num_users(self) -> int:
        """Total number of registered users."""
        return len(self.users)
