"""Seeded generator for the synthetic sharing community.

This is the data substrate that stands in for the paper's 200-hour YouTube
crawl (see DESIGN.md's substitution table).  A generated community has:

* **topics** — the paper's five query topics (Table 2) plus a few
  background topics that pad the collection the way an organic crawl would;
* **videos** — per topic, a set of *master* clips plus edited
  near-duplicate variants (the content ground truth), owned by topic users;
* **users** — per-topic pools with Dirichlet interest profiles; a fraction
  are *multi-interest* (they comment across topics, injecting exactly the
  social noise that makes pure social relevance imperfect and pushes the
  optimal fusion weight below 1);
* **comments** — a 16-month timestamped stream: months 0–11 form the
  source year, months 12–15 the update window; a fraction of users *drift*
  to a new home topic in the update window, forcing the sub-community
  maintenance of Section 4.2.4 to actually reorganise things.

Everything is reproducible from ``CommunityConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.community.models import Comment, CommunityDataset, User, VideoRecord

__all__ = ["CommunityConfig", "generate_community", "QUERY_TOPICS"]

#: The five most popular YouTube queries of the paper's Table 2, in order.
QUERY_TOPICS: tuple[str, ...] = (
    "youtube",
    "mariah carey",
    "miley cyrus",
    "american idol",
    "wwe",
)

_SHARED_VOCAB = ("video", "official", "hd", "new", "live", "2014", "full", "best")


@dataclass(frozen=True)
class CommunityConfig:
    """Knobs of the synthetic community.

    The defaults are calibrated so the paper's qualitative results
    reproduce (see EXPERIMENTS.md); benches override ``hours`` and
    ``seed`` and occasionally the social noise parameters.

    Attributes
    ----------
    hours:
        Dataset size in "hours of video"; one hour is
        ``videos_per_hour`` clips (the paper keeps clips under 10
        minutes, so 12 five-minute clips approximate an hour).
    videos_per_hour:
        Clips per modelled hour.
    background_topics:
        Extra non-query topics padding the collection.
    near_dup_fraction:
        Fraction of videos that are edited variants of same-topic masters.
    users_per_topic:
        Registered users whose home is a given topic.
    groups_per_topic:
        Fan groups each topic's users split into; co-commenting is
        concentrated within a group (micro-community structure).
    group_boost:
        How much more likely a user is to comment a video of their own
        fan group than a same-topic video of another group.
    multi_interest_fraction:
        Fraction of users with spread interests (social noise).
    drift_fraction:
        Fraction of users that migrate to a new home topic during the
        test months (months 12–15).
    comments_mean, comments_sigma, comments_cap:
        Per-video comment volume: a capped lognormal draw with location
        ``log(comments_mean)`` and shape ``comments_sigma``.  A small
        sigma keeps group members co-appearing consistently, which is
        what gives intra-group UIG edges their weight margin.
    test_comment_share:
        Share of a video's comments landing in the test window.
    seed:
        Master seed; every video/user/comment derives from it.
    clip_num_shots, clip_frames_per_shot, clip_height, clip_width:
        Forwarded to the frame synthesiser on materialisation.
    """

    hours: float = 20.0
    videos_per_hour: int = 12
    background_topics: int = 3
    near_dup_fraction: float = 0.3
    users_per_topic: int = 24
    groups_per_topic: int = 3
    group_boost: float = 30.0
    multi_interest_fraction: float = 0.25
    drift_fraction: float = 0.08
    comments_mean: float = 7.0
    comments_sigma: float = 0.25
    comments_cap: int = 16
    test_comment_share: float = 0.15
    seed: int = 2015
    clip_num_shots: int = 3
    clip_frames_per_shot: tuple[int, int] = (8, 16)
    clip_height: int = 32
    clip_width: int = 32

    @property
    def num_videos(self) -> int:
        """Total clips implied by ``hours``."""
        return max(1, int(round(self.hours * self.videos_per_hour)))

    @property
    def num_topics(self) -> int:
        """Query topics plus background topics."""
        return len(QUERY_TOPICS) + self.background_topics

    @property
    def topic_names(self) -> tuple[str, ...]:
        """Names: Table-2 queries first, then ``background<i>``."""
        return QUERY_TOPICS + tuple(
            f"background{i}" for i in range(self.background_topics)
        )

    def clip_params(self) -> dict:
        """Synthesiser kwargs stored on the dataset."""
        return {
            "num_shots": self.clip_num_shots,
            "frames_per_shot": self.clip_frames_per_shot,
            "height": self.clip_height,
            "width": self.clip_width,
        }


def _topic_vocab(topic_name: str) -> list[str]:
    """Topic vocabulary drawn from a shared global pool.

    Real YouTube titles reuse a small common vocabulary across topics
    ("official", "live", artist names bleeding between fandoms...), which
    is exactly what caps the text modality's discrimination power.  Each
    topic deterministically samples 12 of 36 global words, so any two
    topics collide on roughly a third of their vocabulary.
    """
    pool = [f"word{i:02d}" for i in range(36)]
    anchor = np.random.default_rng(sum(ord(c) for c in topic_name) * 31 + 7)
    return [str(w) for w in anchor.choice(pool, size=12, replace=False)]


def _make_users(config: CommunityConfig, rng: np.random.Generator) -> dict[str, User]:
    users: dict[str, User] = {}
    n_topics = config.num_topics
    for topic in range(n_topics):
        for index in range(config.users_per_topic):
            user_id = f"user_t{topic}_{index:04d}"
            if rng.random() < config.multi_interest_fraction:
                # Spread interests over the home topic plus 1-2 others.
                extra = rng.choice(
                    [t for t in range(n_topics) if t != topic],
                    size=int(rng.integers(1, 3)),
                    replace=False,
                )
                raw = np.full(n_topics, 0.02)
                raw[topic] = 1.0
                # Cross interests are real but secondary: strong enough to
                # put shared commenters on cross-topic videos (the SR noise
                # that caps omega below 1), weak enough that repeated
                # co-comment pairs — heavy UIG edges — stay intra-topic.
                for other in extra:
                    raw[other] = 0.35
            else:
                raw = np.full(n_topics, 0.02)
                raw[topic] = 1.0
            interests = raw / raw.sum()
            drift_topic = None
            if rng.random() < config.drift_fraction:
                drift_topic = int(
                    rng.choice([t for t in range(n_topics) if t != topic])
                )
            users[user_id] = User(
                user_id=user_id,
                home_topic=topic,
                interests=tuple(float(x) for x in interests),
                drift_topic=drift_topic,
                group=index % config.groups_per_topic,
            )
    return users


def _make_videos(
    config: CommunityConfig,
    users: dict[str, User],
    rng: np.random.Generator,
) -> dict[str, VideoRecord]:
    records: dict[str, VideoRecord] = {}
    n_topics = config.num_topics
    topic_names = config.topic_names
    owners_by_topic = {
        topic: [u for u in sorted(users) if users[u].home_topic == topic]
        for topic in range(n_topics)
    }
    masters_by_topic: dict[int, list[str]] = {t: [] for t in range(n_topics)}
    # Query topics get a larger share of the collection than background
    # topics, mimicking a crawl seeded from popular queries.  Shares are
    # allocated proportionally (largest-remainder) rather than sampled so
    # small datasets never starve a query topic, then shuffled.
    weights = np.array(
        [1.5 if t < len(QUERY_TOPICS) else 1.0 for t in range(n_topics)]
    )
    shares = weights / weights.sum() * config.num_videos
    counts = np.floor(shares).astype(int)
    remainder_order = np.argsort(-(shares - counts))
    for position in range(config.num_videos - int(counts.sum())):
        counts[remainder_order[position % n_topics]] += 1
    topic_sequence = np.repeat(np.arange(n_topics), counts)
    rng.shuffle(topic_sequence)

    for index in range(config.num_videos):
        topic = int(topic_sequence[index])
        vocab = _topic_vocab(topic_names[topic])
        title_words = [
            *rng.choice(vocab, size=3, replace=False),
            str(rng.choice(_SHARED_VOCAB)),
        ]
        tags = tuple(rng.choice(vocab, size=4, replace=False))
        owner_pool = owners_by_topic[topic] or sorted(users)
        owner = str(rng.choice(owner_pool))
        video_id = f"v{index:05d}"
        group = int(rng.integers(0, config.groups_per_topic))
        make_variant = (
            masters_by_topic[topic] and rng.random() < config.near_dup_fraction
        )
        if make_variant:
            lineage = str(rng.choice(masters_by_topic[topic]))
            records[video_id] = VideoRecord(
                video_id=video_id,
                topic=topic,
                seed=int(rng.integers(0, 2**31)),
                owner=owner,
                title=" ".join(title_words),
                tags=tags,
                lineage=lineage,
                edit_seed=int(rng.integers(0, 2**31)),
                group=group,
            )
        else:
            records[video_id] = VideoRecord(
                video_id=video_id,
                topic=topic,
                seed=int(rng.integers(0, 2**31)),
                owner=owner,
                title=" ".join(title_words),
                tags=tags,
                group=group,
            )
            masters_by_topic[topic].append(video_id)
    return records


def _interest_in(user: User, topic: int, month: int) -> float:
    """User's effective interest in *topic* at *month* (drift applied)."""
    if month >= 12 and user.drift_topic is not None:
        # After drifting, the old home cools down and the new one heats up.
        if topic == user.drift_topic:
            return max(user.interests[topic], 0.9)
        if topic == user.home_topic:
            return 0.05
    return user.interests[topic]


def _make_comments(
    config: CommunityConfig,
    records: dict[str, VideoRecord],
    users: dict[str, User],
    rng: np.random.Generator,
) -> list[Comment]:
    comments: list[Comment] = []
    user_ids = sorted(users)
    source_interest = np.array(
        [[users[u].interests[t] for t in range(config.num_topics)] for u in user_ids]
    )
    test_interest = np.array(
        [
            [_interest_in(users[u], t, month=12) for t in range(config.num_topics)]
            for u in user_ids
        ]
    )
    # Per-user multiplier for each fan group: own-group videos are far
    # more likely to attract the user's comment.
    max_groups = config.groups_per_topic
    group_multiplier = np.ones((len(user_ids), max_groups), dtype=np.float64)
    for row, user_id in enumerate(user_ids):
        group_multiplier[row, users[user_id].group] = config.group_boost

    for video_id in sorted(records):
        record = records[video_id]
        volume = int(
            min(
                config.comments_cap,
                max(2, rng.lognormal(np.log(config.comments_mean), config.comments_sigma)),
            )
        )
        n_test = int(round(volume * config.test_comment_share))
        n_source = volume - n_test
        for phase, count in (("source", n_source), ("test", n_test)):
            if count == 0:
                continue
            interest = source_interest if phase == "source" else test_interest
            weights = interest[:, record.topic].astype(np.float64)
            weights = weights * group_multiplier[:, record.group]
            total = weights.sum()
            if total <= 0:
                continue
            chosen = rng.choice(
                len(user_ids),
                size=min(count, len(user_ids)),
                replace=False,
                p=weights / total,
            )
            for user_index in chosen:
                month = (
                    int(rng.integers(0, 12))
                    if phase == "source"
                    else int(rng.integers(12, 16))
                )
                comments.append(
                    Comment(
                        user_id=user_ids[int(user_index)],
                        video_id=video_id,
                        month=month,
                    )
                )
    comments.sort(key=lambda c: (c.month, c.video_id, c.user_id))
    return comments


def generate_community(config: CommunityConfig) -> CommunityDataset:
    """Generate the full community dataset from *config*.

    Deterministic in ``config.seed``; all downstream experiments share one
    dataset object.
    """
    rng = np.random.default_rng(config.seed)
    users = _make_users(config, rng)
    records = _make_videos(config, users, rng)
    comments = _make_comments(config, records, users, rng)
    return CommunityDataset(
        records=records,
        users=users,
        comments=comments,
        topics=config.topic_names,
        clip_params=config.clip_params(),
    )
