"""Synthetic sharing-community substrate: dataset model, generator, workloads."""

from repro.community.generator import QUERY_TOPICS, CommunityConfig, generate_community
from repro.community.models import (
    DEFAULT_UP_TO_MONTH,
    SOURCE_MONTHS,
    TEST_MONTHS,
    Comment,
    CommunityDataset,
    User,
    VideoRecord,
)
from repro.community.workload import Workload, build_workload, select_source_videos

__all__ = [
    "DEFAULT_UP_TO_MONTH",
    "QUERY_TOPICS",
    "SOURCE_MONTHS",
    "TEST_MONTHS",
    "Comment",
    "CommunityConfig",
    "CommunityDataset",
    "User",
    "VideoRecord",
    "Workload",
    "build_workload",
    "generate_community",
    "select_source_videos",
]
