"""Adversarial-workload defense layer (DESIGN §16).

Three coordinated mechanisms keep latency and Eq.-8 ranking quality
bounded under hostile traffic, each off by default and bit-parity-pinned
when off:

* :mod:`repro.defense.coalesce` — flash-crowd protection: per-key
  singleflight collapses concurrent identical memo misses into one scan
  (plus hot-key priority admission in the gateway's gate);
* :mod:`repro.defense.quarantine` — spam-commenter quarantine: a
  per-user comment-rate anomaly detector diverting burst traffic into a
  WAL-logged buffer, with release-on-clear and revoke-on-confirm;
* :mod:`repro.defense.backpressure` — retire-storm backpressure: a
  minimum epoch-publication interval bounding cache-invalidation churn.

Every mechanism reports under ``repro_defense_*`` metric names;
:func:`init_defense_metrics` pre-registers them at zero so operators'
dashboards (and ``repro stats``) see the full family before the first
attack.
"""

from __future__ import annotations

from repro.defense.backpressure import PublishGovernor
from repro.defense.coalesce import TIMEOUT, SingleFlight
from repro.defense.config import DefenseConfig
from repro.defense.quarantine import (
    GuardVerdict,
    QuarantineReplay,
    SpamGuard,
    replay_quarantine,
)

__all__ = [
    "DefenseConfig",
    "GuardVerdict",
    "PublishGovernor",
    "QuarantineReplay",
    "SingleFlight",
    "SpamGuard",
    "TIMEOUT",
    "init_defense_metrics",
    "replay_quarantine",
]

#: Counter families every defense mechanism reports under.
_COUNTERS = (
    "repro_defense_coalesce_leaders_total",
    "repro_defense_coalesced_followers_total",
    "repro_defense_coalesce_timeouts_total",
    "repro_defense_hot_admissions_total",
    "repro_defense_deferred_publishes_total",
    "repro_defense_quarantined_comments_total",
    "repro_defense_quarantined_users_total",
    "repro_defense_released_comments_total",
    "repro_defense_revoked_comments_total",
    "repro_defense_blocked_comments_total",
    "repro_defense_confirmed_spammers_total",
)

_GAUGES = (
    "repro_defense_suspect_users",
    "repro_defense_held_comments",
    "repro_defense_recovery_seconds",
)


def init_defense_metrics(metrics=None) -> None:
    """Pre-register every ``repro_defense_*`` series at zero.

    Counters only materialize in the Prometheus/JSON surfaces once
    incremented; a dashboard watching a healthy service would otherwise
    see no defense series at all and could not tell "no attack" from
    "defense not wired".  Zero-increments register the full family.
    """
    if metrics is None:
        from repro.obs import get_metrics

        metrics = get_metrics()
    for name in _COUNTERS:
        metrics.inc(name, 0)
    for name in _GAUGES:
        metrics.set_gauge(name, 0.0)
