"""Per-key singleflight: flash-crowd misses collapse into one scan.

Under a flash crowd, thousands of concurrent requests for the *same*
query arrive between two memo hits — each would miss the memo and pay a
full candidate scan.  :class:`SingleFlight` collapses them: the first
request for a key becomes the **leader** and computes normally; every
concurrent duplicate becomes a **follower** that parks on the leader's
event and receives the leader's finished result (the gateway hands each
follower a :meth:`~repro.core.recommender.Recommendations.copy`, so the
ranking bytes are bit-identical to the leader's).  A leader that *fails*
propagates its typed error to the flock — under overload that is the
defense working: one shed leader sheds the whole duplicate crowd without
each member burning a queue slot first.

A follower that outwaits its budget falls back to its own full serving
path (correctness never depends on the leader finishing).
"""

from __future__ import annotations

import threading

__all__ = ["SingleFlight"]


class _Flight:
    """One in-progress leader computation and its parked followers."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class _Timeout:
    """Sentinel distinguishing 'leader timed out' from a ``None`` result."""

    __slots__ = ()


TIMEOUT = _Timeout()


class SingleFlight:
    """Keyed singleflight groups under one small lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[tuple, _Flight] = {}

    def begin(self, key: tuple) -> tuple[bool, _Flight]:
        """Join the flight for *key*; ``(is_leader, flight)``.

        The leader must call :meth:`finish` exactly once (also on error),
        or followers hang until their own wait budget expires.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                return False, flight
            flight = _Flight()
            self._flights[key] = flight
            return True, flight

    def finish(
        self,
        key: tuple,
        flight: _Flight,
        result=None,
        error: BaseException | None = None,
    ) -> None:
        """Publish the leader's outcome and wake every follower."""
        flight.result = result
        flight.error = error
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.event.set()

    def wait(self, flight: _Flight, timeout: float):
        """A follower's wait: the leader's result, its raised error, or
        :data:`TIMEOUT` when the budget expires first."""
        if not flight.event.wait(timeout):
            return TIMEOUT
        if flight.error is not None:
            raise flight.error
        return flight.result
