"""Spam-commenter quarantine: rate anomaly detection + durable buffer.

"Who are Like-minded" (PAPERS.md) shows interest-similarity estimates
are highly sensitive to low-quality bursty commenters — and this repo's
Eq.-8 ranking folds commenter sets straight into social relevance, so a
bot flooding ``POST /interaction`` steers rankings within one
``apply_every`` batch.  :class:`SpamGuard` sits in front of
``apply_comments`` and runs a three-state per-user machine:

``normal`` → ``suspect``
    A user whose in-window comment count reaches ``spam_burst`` stops
    being applied: subsequent comments divert into a **quarantine
    buffer**, withheld from the UIG and the sketch banks.  Every hold is
    logged to a dedicated quarantine WAL before it is acknowledged, so a
    restart reconstructs exactly which interactions were withheld.

``suspect`` → ``normal`` (release-on-clear)
    A suspect whose in-window count decays to ``spam_clear`` stops
    looking like a bot (a flash crowd of genuine enthusiasm ebbs); the
    held comments are released and applied normally — late, not lost.

``suspect`` → ``confirmed`` (revoke-on-confirm)
    A suspect who keeps flooding past ``spam_confirm`` is confirmed:
    held comments are dropped, further comments are blocked, and the
    comments that slipped through *before* detection are **revoked** —
    un-applied from the social state.  Exact mode re-derives the
    partition without them; sketch mode's XOR self-inverse makes the
    un-apply literally free (``remove_user`` is the same toggle as
    ``add_user``).

Only genuinely *new* memberships are recorded as revocable: applying a
comment for an already-member user is a no-op, so revoking it must be
too — the optional ``membership`` probe answers "was this user already
in the video's descriptor?" at forward time.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.defense.config import DefenseConfig
from repro.io.wal import WriteAheadLog, read_wal
from repro.obs import get_metrics

__all__ = [
    "GuardVerdict",
    "QuarantineReplay",
    "SpamGuard",
    "replay_quarantine",
]

_NORMAL = "normal"
_SUSPECT = "suspect"
_CONFIRMED = "confirmed"


@dataclass
class GuardVerdict:
    """What one :meth:`SpamGuard.filter` call decided.

    Attributes
    ----------
    passed:
        Pairs to apply now — the clean traffic plus any pairs released
        from quarantine by this call.
    revoked:
        Pairs to *un-apply* (``remove_comments``): a suspect confirmed
        as a spammer, and these recently-applied pairs must leave the
        social state.
    held / released / blocked:
        Pair counts: newly quarantined, released from quarantine, and
        dropped outright (already-confirmed spammers).
    """

    passed: list[tuple[str, str]] = field(default_factory=list)
    revoked: list[tuple[str, str]] = field(default_factory=list)
    held: int = 0
    released: int = 0
    blocked: int = 0


@dataclass
class QuarantineReplay:
    """A quarantine WAL distilled for restart replay.

    ``withheld_refs`` are interaction-log sequence numbers that must NOT
    be re-applied (still-held, confirmed-dropped, or blocked);
    ``revoke_pairs`` are the confirmed revocations to re-apply *after*
    the interaction replay; ``held`` / ``confirmed`` seed a fresh guard.
    """

    withheld_refs: set[int] = field(default_factory=set)
    revoke_pairs: list[tuple[str, str]] = field(default_factory=list)
    held: dict[str, list[tuple[str, str, int | None]]] = field(default_factory=dict)
    confirmed: set[str] = field(default_factory=set)


def replay_quarantine(path) -> QuarantineReplay:
    """Scan a quarantine WAL into a :class:`QuarantineReplay`."""
    replay = QuarantineReplay()
    pending: dict[str, list[tuple[str, str, int | None]]] = {}
    for record in read_wal(path, missing_ok=True).records:
        payload = record.payload
        if record.op == "spam_hold":
            pending.setdefault(payload["user"], []).append(
                (payload["user"], payload["video"], payload.get("ref"))
            )
        elif record.op == "spam_block":
            if payload.get("ref") is not None:
                replay.withheld_refs.add(payload["ref"])
        elif record.op == "spam_release":
            # Released pairs were applied at release time; the restart
            # replay applies them via their original interaction
            # records, so they are simply no longer withheld.
            pending.pop(payload["user"], None)
        elif record.op == "spam_confirm":
            for _, _, ref in pending.pop(payload["user"], []):
                if ref is not None:
                    replay.withheld_refs.add(ref)
            replay.revoke_pairs.extend(
                (user, video) for user, video in payload["revoked"]
            )
            replay.confirmed.add(payload["user"])
        # Unknown ops are ignored: the quarantine log is advisory state,
        # not acknowledged index mutations.
    for user, holds in pending.items():
        replay.held[user] = list(holds)
        replay.withheld_refs.update(ref for _, _, ref in holds if ref is not None)
    return replay


class SpamGuard:
    """Per-user comment-rate anomaly detector + durable quarantine buffer.

    Parameters
    ----------
    config:
        The :class:`~repro.defense.config.DefenseConfig` spam knobs.
    wal_path:
        Quarantine WAL path (``None`` = in-memory only).  An existing
        log is replayed: still-held pairs and confirmed spammers carry
        across restarts.
    clock:
        Injectable monotonic clock (deterministic tests).
    membership:
        Optional ``(user, video) -> bool`` probe: True when the user is
        *already* in the video's descriptor, in which case the forwarded
        pair is a no-op and must never be recorded as revocable.
    """

    def __init__(
        self,
        config: DefenseConfig,
        wal_path=None,
        clock=time.monotonic,
        membership=None,
    ) -> None:
        self.config = config
        self._clock = clock
        self._membership = membership
        self._lock = threading.Lock()
        self._events: dict[str, deque[float]] = {}
        self._state: dict[str, str] = {}
        self._held: dict[str, list[tuple[str, str, int | None]]] = {}
        #: user -> recently *applied* new-membership pairs (revocable).
        self._applied: dict[str, deque[tuple[float, str]]] = {}
        self._wal: WriteAheadLog | None = None
        if wal_path is not None:
            replay = replay_quarantine(wal_path)
            for user in replay.confirmed:
                self._state[user] = _CONFIRMED
            for user, holds in replay.held.items():
                self._state[user] = _SUSPECT
                self._held[user] = list(holds)
            self._wal = WriteAheadLog(wal_path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def suspect_users(self) -> int:
        with self._lock:
            return sum(1 for state in self._state.values() if state == _SUSPECT)

    @property
    def held_comments(self) -> int:
        with self._lock:
            return sum(len(holds) for holds in self._held.values())

    def state_of(self, user: str) -> str:
        with self._lock:
            return self._state.get(user, _NORMAL)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # The decision path
    # ------------------------------------------------------------------
    def _prune(self, events: deque[float], now: float) -> None:
        horizon = now - self.config.spam_window
        while events and events[0] <= horizon:
            events.popleft()

    def _log(self, op: str, payload: dict) -> None:
        if self._wal is not None:
            self._wal.append(op, payload)

    def _release_locked(self, user: str, verdict: GuardVerdict, metrics) -> None:
        holds = self._held.pop(user, [])
        self._state.pop(user, None)
        self._log("spam_release", {"user": user})
        now = self._clock()
        applied = self._applied.setdefault(
            user, deque()
        )
        for held_user, video, _ in holds:
            verdict.passed.append((held_user, video))
            verdict.released += 1
            if self._membership is None or not self._membership(held_user, video):
                applied.append((now, video))
        metrics.inc("repro_defense_released_comments_total", len(holds))

    def _confirm_locked(self, user: str, verdict: GuardVerdict, metrics) -> None:
        holds = self._held.pop(user, [])
        now = self._clock()
        horizon = now - self.config.spam_window
        revoked: list[tuple[str, str]] = []
        seen: set[str] = set()
        for stamp, video in self._applied.pop(user, ()):  # oldest first
            if stamp >= horizon and video not in seen:
                seen.add(video)
                revoked.append((user, video))
        self._state[user] = _CONFIRMED
        self._log(
            "spam_confirm",
            {
                "user": user,
                "refs": [ref for _, _, ref in holds if ref is not None],
                "revoked": [[u, v] for u, v in revoked],
            },
        )
        verdict.revoked.extend(revoked)
        metrics.inc("repro_defense_confirmed_spammers_total")
        metrics.inc("repro_defense_revoked_comments_total", len(revoked))

    def filter(
        self,
        pairs,
        refs=None,
    ) -> GuardVerdict:
        """Classify one ``(user_id, video_id)`` batch.

        *refs* optionally aligns interaction-log sequence numbers with
        *pairs*, so holds and blocks are WAL-logged by ref and a restart
        withholds exactly the same interactions.  Also sweeps every
        suspect for release-on-clear, so a subsided burst is released by
        the next batch of *any* traffic.
        """
        pairs = list(pairs)
        refs = list(refs) if refs is not None else [None] * len(pairs)
        if len(refs) != len(pairs):
            raise ValueError(f"got {len(pairs)} pairs but {len(refs)} refs")
        metrics = get_metrics()
        verdict = GuardVerdict()
        with self._lock:
            now = self._clock()
            # Release sweep: suspects whose window count decayed.
            for user in [
                user for user, state in self._state.items() if state == _SUSPECT
            ]:
                events = self._events.get(user)
                if events is not None:
                    self._prune(events, now)
                if not events or len(events) <= self.config.spam_clear:
                    self._release_locked(user, verdict, metrics)
            for (user, video), ref in zip(pairs, refs):
                state = self._state.get(user, _NORMAL)
                if state == _CONFIRMED:
                    self._log("spam_block", {"user": user, "video": video, "ref": ref})
                    verdict.blocked += 1
                    metrics.inc("repro_defense_blocked_comments_total")
                    continue
                now = self._clock()
                events = self._events.setdefault(user, deque())
                self._prune(events, now)
                events.append(now)
                count = len(events)
                if state == _SUSPECT:
                    if count >= self.config.spam_confirm:
                        self._confirm_locked(user, verdict, metrics)
                        self._log(
                            "spam_block", {"user": user, "video": video, "ref": ref}
                        )
                        verdict.blocked += 1
                        metrics.inc("repro_defense_blocked_comments_total")
                        continue
                    self._log("spam_hold", {"user": user, "video": video, "ref": ref})
                    self._held.setdefault(user, []).append((user, video, ref))
                    verdict.held += 1
                    metrics.inc("repro_defense_quarantined_comments_total")
                    continue
                if count >= self.config.spam_burst:
                    self._state[user] = _SUSPECT
                    metrics.inc("repro_defense_quarantined_users_total")
                    self._log("spam_hold", {"user": user, "video": video, "ref": ref})
                    self._held.setdefault(user, []).append((user, video, ref))
                    verdict.held += 1
                    metrics.inc("repro_defense_quarantined_comments_total")
                    continue
                verdict.passed.append((user, video))
                if self._membership is None or not self._membership(user, video):
                    applied = self._applied.setdefault(user, deque())
                    horizon = now - self.config.spam_window
                    while applied and applied[0][0] <= horizon:
                        applied.popleft()
                    applied.append((now, video))
            metrics.set_gauge(
                "repro_defense_suspect_users",
                sum(1 for state in self._state.values() if state == _SUSPECT),
            )
            metrics.set_gauge(
                "repro_defense_held_comments",
                sum(len(holds) for holds in self._held.values()),
            )
        return verdict

    def poll(self) -> GuardVerdict:
        """Run the release sweep without new traffic (idle ticks)."""
        return self.filter(())
