"""Knobs of the adversarial-workload defense layer.

One frozen dataclass gathers every defense mechanism's tuning so the
gateways, the HTTP front-end and the chaos harness share a single
currency.  **Every default is off**: a gateway built with the default
config behaves bit-identically to one built before the defense layer
existed — the parity suites pin that.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DefenseConfig"]


@dataclass(frozen=True)
class DefenseConfig:
    """Defense-layer tuning; the default instance disables everything.

    Attributes
    ----------
    coalesce:
        Per-key singleflight on the serving gateways: concurrent
        identical memo misses collapse into one candidate scan whose
        result every follower receives bit-identically.
    coalesce_wait:
        Longest a deadline-free follower waits for its leader (seconds);
        a request carrying its own deadline waits at most that.  On
        timeout the follower falls back to its own full serving path.
    hot_priority:
        Skew-aware admission: a request whose memo key is already
        resident (a hot key — it will be answered from the memo without
        scanning) is admitted ahead of queued cold scans when the gate
        is backlogged.
    min_publish_interval:
        Minimum seconds between epoch publications (0 = publish per
        mutation, today's behaviour).  Mutations inside the interval
        apply to the master immediately but defer the publish; a timer
        flushes the deferred publication when the interval elapses, so
        a retire storm amortizes into bounded epoch/memo/response-cache
        invalidation instead of thrashing it per mutation.
    max_deferred_mutations:
        Mutations allowed to accumulate behind one deferred publication
        before the governor force-publishes regardless of the interval
        (bounds staleness under a sustained storm).
    quarantine:
        Per-user comment-rate anomaly detection in front of
        ``apply_comments``: burst-anomalous users' comments divert into
        a WAL-logged quarantine buffer withheld from the UIG and the
        sketch banks, released if the burst subsides and revoked (un-
        applied) if it confirms.
    spam_window:
        Sliding window (seconds) over which a user's comment rate is
        measured.
    spam_burst:
        Comments within ``spam_window`` that make a user *suspect*
        (subsequent comments are quarantined, not applied).
    spam_confirm:
        Comments within ``spam_window`` that *confirm* a suspect as a
        spammer: held comments are dropped and the suspect's recently
        applied comments are revoked from the social state.
    spam_clear:
        A suspect whose in-window comment count decays to this value or
        below is cleared: their held comments are released and applied
        normally.
    """

    coalesce: bool = False
    coalesce_wait: float = 0.25
    hot_priority: bool = False
    min_publish_interval: float = 0.0
    max_deferred_mutations: int = 64
    quarantine: bool = False
    spam_window: float = 1.0
    spam_burst: int = 16
    spam_confirm: int = 48
    spam_clear: int = 2

    def __post_init__(self) -> None:
        if self.coalesce_wait <= 0:
            raise ValueError(f"coalesce_wait must be > 0, got {self.coalesce_wait}")
        if self.min_publish_interval < 0:
            raise ValueError(
                f"min_publish_interval must be >= 0, got {self.min_publish_interval}"
            )
        if self.max_deferred_mutations < 1:
            raise ValueError(
                f"max_deferred_mutations must be >= 1, got {self.max_deferred_mutations}"
            )
        if self.spam_window <= 0:
            raise ValueError(f"spam_window must be > 0, got {self.spam_window}")
        if self.spam_burst < 2:
            raise ValueError(f"spam_burst must be >= 2, got {self.spam_burst}")
        if self.spam_confirm <= self.spam_burst:
            raise ValueError(
                f"spam_confirm ({self.spam_confirm}) must exceed "
                f"spam_burst ({self.spam_burst})"
            )
        if not 0 <= self.spam_clear < self.spam_burst:
            raise ValueError(
                f"spam_clear must be in [0, spam_burst), got {self.spam_clear}"
            )

    @property
    def serving_enabled(self) -> bool:
        """Whether any serving-side mechanism is on (gateway fast-exit)."""
        return self.coalesce or self.hot_priority or self.min_publish_interval > 0
