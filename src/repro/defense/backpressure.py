"""Retire-storm backpressure: bounded epoch-publication frequency.

Every gateway mutation publishes a copy-on-write epoch, and every
publication invalidates the query memo and the HTTP response cache.
That coupling is exactly what a retire storm attacks: a burst of cheap
mutations forces O(storm) epoch builds and keeps every cache permanently
cold, collapsing read latency without a single heavy query.

:class:`PublishGovernor` decouples them.  Mutations always apply to the
write master immediately (durability is untouched — the WAL logged them
before they applied); what the governor bounds is the *visibility*
cadence: at most one publication per ``min_interval`` seconds.  A
mutation arriving inside the interval defers its publish; the gateway
arms a one-shot timer so the deferred batch becomes visible as soon as
the interval elapses, even if no further mutation arrives.  A storm of
R retires then costs ``R / min_interval``-bounded epoch builds instead
of R, and readers keep their memo/cache warm between publications.

``max_deferred`` bounds staleness: once that many mutations stack up
behind one deferred publication, the governor force-publishes.
"""

from __future__ import annotations

import time

__all__ = ["PublishGovernor"]


class PublishGovernor:
    """Decides publish-now vs defer; callers hold the writer lock.

    Not internally locked: every method is called under the owning
    gateway's writer lock, which already serializes mutations.
    """

    def __init__(
        self,
        min_interval: float,
        max_deferred: int = 64,
        clock=time.monotonic,
    ) -> None:
        if min_interval <= 0:
            raise ValueError(f"min_interval must be > 0, got {min_interval}")
        if max_deferred < 1:
            raise ValueError(f"max_deferred must be >= 1, got {max_deferred}")
        self.min_interval = float(min_interval)
        self.max_deferred = int(max_deferred)
        self._clock = clock
        self._last_publish: float | None = None
        self._deferred = 0

    @property
    def deferred(self) -> int:
        """Mutations currently waiting behind the deferred publication."""
        return self._deferred

    def should_defer(self) -> bool:
        """Whether the mutation that just applied should defer its publish."""
        if self._last_publish is None:
            return False
        if self._clock() - self._last_publish >= self.min_interval:
            return False
        if self._deferred + 1 >= self.max_deferred:
            # Staleness bound: force this publication through.
            return False
        self._deferred += 1
        return True

    def published(self) -> None:
        """Record a publication; restarts the interval, clears the backlog."""
        self._last_publish = self._clock()
        self._deferred = 0

    def delay_remaining(self) -> float:
        """Seconds until the interval elapses (timer arming)."""
        if self._last_publish is None:
            return 0.0
        return max(0.0, self.min_interval - (self._clock() - self._last_publish))
