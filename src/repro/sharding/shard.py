"""Sharded community index: partitioned content, replicated social state.

:class:`ShardIndex` is a :class:`~repro.core.pipeline.LiveCommunityIndex`
that owns a **subset** of the community's content (signature series,
global features, LSB forest, signature bank) while holding **all** social
descriptors.  Replicating the social side is what keeps every shard's
scores bit-identical to the single-index oracle: the sub-community
partition, SAR dictionaries and SAR vectors are all derived from the full
descriptor set, so a shard vectorises its candidates exactly as the
unsharded index would.  Comments and watermark advances therefore apply
to *every* shard; only content ingest/retire routes to one owner.

:class:`ShardedIndex` coordinates S shards behind the familiar mutation
API (``ingest_video`` / ``retire_video`` / ``apply_comments`` /
``advance_watermark``) plus :meth:`ShardedIndex.pin_layout`, which
reduces the shards' natural bank layouts to the global (oracle) layout
and pins it everywhere — the float32 scoring kernel's results depend on
the packed width and key offset, so pinning is what upgrades "same
scores up to float error" to "bitwise the same scores".
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.community.models import (
    DEFAULT_UP_TO_MONTH,
    CommunityDataset,
    VideoRecord,
)
from repro.core.config import RecommenderConfig
from repro.core.pipeline import LiveCommunityIndex, _private_dataset
from repro.core.stores import ContentStore, SocialStore, global_features
from repro.measures.content import SignatureFastPack
from repro.sharding.router import ShardRouter, make_router
from repro.social.descriptor import SocialDescriptor
from repro.video.clip import VideoClip

__all__ = ["ShardIndex", "ShardedIndex"]


class ShardIndex(LiveCommunityIndex):
    """One shard: a live index over partial content + full social state.

    Beyond the inherited maintenance API it adds the two *replica-side*
    mutations the coordinator fans out to non-owner shards —
    :meth:`ingest_social` and :meth:`retire_social` — both WAL-logged so
    each shard recovers independently from its own log.
    """

    shard_id = 0
    num_shards = 1

    @classmethod
    def _adopt(cls, index, shard_id: int, num_shards: int) -> "ShardIndex":
        """Rewrap a loaded :class:`LiveCommunityIndex` as a shard.

        Snapshot loads rebuild a plain live index; adoption reuses its
        stores wholesale (a shard snapshot already carries the partial
        content and the full descriptor set) and restores the shard's
        identity and WAL position.
        """
        shard = cls._from_parts(
            index.dataset, index.config, index.content, index.social_store
        )
        shard.wal_seq = index.wal_seq
        shard.shard_id = int(shard_id)
        shard.num_shards = int(num_shards)
        return shard

    # ------------------------------------------------------------------
    # Replica-side social mutations
    # ------------------------------------------------------------------
    def ingest_social(self, video_id: str, members: Iterable[str]) -> None:
        """Register a non-owned video's social descriptor (WAL-logged)."""
        descriptor = SocialDescriptor.from_users(video_id, members)
        if self._wal is not None:
            self.wal_seq = self._wal.log_social_add(video_id, descriptor.users)
        self.social_store.add_video(descriptor)

    def retire_social(self, video_id: str) -> None:
        """Drop a non-owned video's social descriptor (WAL-logged)."""
        if video_id not in self.social_store.descriptors:
            raise KeyError(f"unknown video {video_id!r}")
        if self._wal is not None:
            self.wal_seq = self._wal.log_social_retire(video_id)
        self.social_store.retire_video(video_id)

    def _validate_comment_target(self, video_id: str) -> None:
        # Comments replicate to every shard; a shard knows every video
        # socially even when another shard owns its content.
        if video_id not in self.social_store.descriptors:
            raise KeyError(f"unknown video {video_id!r}")


def _build_shard(
    dataset: CommunityDataset,
    config: RecommenderConfig,
    shard_id: int,
    num_shards: int,
    owned: list[str],
    extracted: dict,
    up_to_month: int,
    build_lsb: bool,
    build_global_features: bool,
) -> ShardIndex:
    """Assemble one shard from the partition pass's extractions."""
    content = ContentStore(
        config, build_lsb=build_lsb, build_global_features=build_global_features
    )
    for video_id in sorted(owned):
        series, features = extracted[video_id]
        content.add_series(video_id, series, features)
    social = SocialStore(
        dataset.descriptors(up_to_month=up_to_month),
        k=config.k,
        uig_pair_cap=config.uig_pair_cap,
        up_to_month=up_to_month,
        sketch_bits=config.sketch_bits,
        sketch_seed=config.sketch_seed,
    )
    shard = ShardIndex._from_parts(_private_dataset(dataset), config, content, social)
    shard.shard_id = int(shard_id)
    shard.num_shards = int(num_shards)
    return shard


class ShardedIndex:
    """S :class:`ShardIndex` instances behind one mutation facade.

    Content mutations route to the owner shard (plus a social replica
    fan-out); social mutations fan out to every shard.  The facade is a
    plain coordinator — it holds no locks; concurrency control belongs
    to the serving layer (:class:`repro.sharding.gateway.ShardedGateway`).
    """

    def __init__(self, shards: list[ShardIndex], router: ShardRouter) -> None:
        if not shards:
            raise ValueError("a sharded index needs at least one shard")
        if router.shards != len(shards):
            raise ValueError(
                f"router covers {router.shards} shards, got {len(shards)}"
            )
        self.shards = list(shards)
        self.router = router
        self.config = shards[0].config
        # Stateless extraction helper for routing/ingest of new clips.
        self._extractor = ContentStore(
            self.config, build_lsb=False, build_global_features=False
        )
        self.pin_layout()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: CommunityDataset,
        config: RecommenderConfig,
        shards: int,
        router: ShardRouter | str = "hash",
        up_to_month: int = DEFAULT_UP_TO_MONTH,
        build_lsb: bool = True,
        build_global_features: bool = True,
    ) -> "ShardedIndex":
        """Partition *dataset* across *shards* and build every shard.

        Extraction runs once per video during the partition pass; each
        shard is then bulk-loaded from the pre-extracted state in sorted
        id order, exactly as a cold single-index build would load it.
        """
        if isinstance(router, str):
            router = make_router(router, shards, config)
        elif router.shards != shards:
            raise ValueError(
                f"router covers {router.shards} shards, expected {shards}"
            )
        extractor = ContentStore(
            config, build_lsb=False, build_global_features=build_global_features
        )
        owned: list[list[str]] = [[] for _ in range(shards)]
        extracted: dict = {}
        for video_id in sorted(dataset.records):
            clip = dataset.clip(video_id)
            series = extractor.extract(clip)
            features = global_features(clip) if build_global_features else None
            extracted[video_id] = (series, features)
            target = router.route(
                video_id, series if router.needs_series else None
            )
            owned[target].append(video_id)
        built = [
            _build_shard(
                dataset,
                config,
                shard_id,
                shards,
                owned[shard_id],
                extracted,
                up_to_month,
                build_lsb,
                build_global_features,
            )
            for shard_id in range(shards)
        ]
        return cls(built, router)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def video_ids(self) -> list[str]:
        """All indexed video ids across shards, sorted."""
        merged: list[str] = []
        for shard in self.shards:
            merged.extend(shard.video_ids)
        return sorted(merged)

    def owner_of(self, video_id: str) -> int:
        """The shard currently holding *video_id*'s content."""
        for shard in self.shards:
            if video_id in shard.content.series:
                return shard.shard_id
        raise KeyError(f"unknown video {video_id!r}")

    def shard_sizes(self) -> list[int]:
        """Per-shard indexed-video counts (placement balance)."""
        return [len(shard.content.series) for shard in self.shards]

    # ------------------------------------------------------------------
    # Layout pinning (bit-parity with the single-index oracle)
    # ------------------------------------------------------------------
    def pin_layout(self) -> bool:
        """Pin every shard's bank to the global (oracle) pack layout.

        The float32 scoring kernel's per-pair results depend on the
        bank's padded width (merged-reduction shape) and the pack's key
        offset (derived from the value minimum).  A shard's natural
        layout reflects only its own rows, so shards are pinned to the
        reduction of the per-shard extremes: the maximum natural width
        and the minimum float32 value — exactly what a single bank over
        the union of all rows would derive.  The segment-integral grid
        is pinned to the global value range as well: grids only steer
        pruning bounds (sound on any grid), but one shared grid lets the
        scatter compute a guest query's integrals once instead of per
        shard.  Returns whether any shard's layout changed (callers
        republish epochs when it did).
        """
        extremes = [
            shard.content.signature_bank().layout_extremes()
            for shard in self.shards
            if shard.content.series
        ]
        if not extremes:
            return False
        width = max(w for w, _, _ in extremes)
        lo = min(m for _, m, _ in extremes)
        hi = max(m for _, _, m in extremes)
        grid = np.linspace(lo, hi, SignatureFastPack.SEGMENTS + 1)
        changed = False
        for shard in self.shards:
            if not shard.content.series:
                continue
            bank = shard.content.signature_bank()
            if bank.pin_layout(width=width, offset=lo - 1.0, grid=grid):
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Mutations (route + fan out)
    # ------------------------------------------------------------------
    def _materialize(self, clip_or_record) -> tuple[str, VideoClip]:
        """The clip of an ingest argument (records re-derive via shard 0)."""
        if isinstance(clip_or_record, VideoClip):
            return clip_or_record.video_id, clip_or_record
        record: VideoRecord = clip_or_record
        host = self.shards[0].dataset
        added = record.video_id not in host.records
        if added:
            host.records[record.video_id] = record
        try:
            clip = host.clip(record.video_id)
        finally:
            if added:
                host.records.pop(record.video_id, None)
        return record.video_id, clip

    def ingest_video(
        self,
        clip_or_record,
        owner: str | None = None,
        users: Iterable[str] = (),
    ) -> str:
        """Route a new video to its owner shard; replicate its descriptor."""
        video_id, clip = self._materialize(clip_or_record)
        for shard in self.shards:
            if video_id in shard.content.series:
                raise ValueError(f"video {video_id!r} is already indexed")
        series = (
            self._extractor.extract(clip) if self.router.needs_series else None
        )
        target = self.router.route(video_id, series)
        self.shards[target].ingest_video(clip_or_record, owner=owner, users=users)
        members = self.shards[target].descriptor(video_id).users
        for shard in self.shards:
            if shard.shard_id != target:
                shard.ingest_social(video_id, members)
        return video_id

    def retire_video(self, video_id: str) -> None:
        """Retire content on the owner shard, the descriptor everywhere."""
        target = self.owner_of(video_id)
        self.shards[target].retire_video(video_id)
        for shard in self.shards:
            if shard.shard_id != target:
                shard.retire_social(video_id)

    def apply_comments(
        self,
        comments: Iterable[tuple[str, str]],
        incremental: bool = False,
    ) -> list:
        """Fold a comment batch into every shard's replicated social state."""
        pairs = list(comments)
        return [
            shard.apply_comments(pairs, incremental=incremental)
            for shard in self.shards
        ]

    def remove_comments(self, comments: Iterable[tuple[str, str]]) -> int:
        """Un-apply a revoked batch from every shard's replicated state."""
        pairs = list(comments)
        removed = 0
        for shard in self.shards:
            removed = shard.remove_comments(pairs)
        return removed

    def advance_watermark(self, month: int) -> int:
        """Advance every shard's comment watermark."""
        result = 0
        for shard in self.shards:
            result = shard.advance_watermark(month)
        return result
