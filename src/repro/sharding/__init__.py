"""Sharded community index + scatter-gather serving.

Partitions the catalogue's content across S :class:`ShardIndex` shards
(social state replicated for score parity), serves the merged top-K
bit-identically to the single-index oracle via :class:`ShardedGateway`,
and persists/recovers each shard independently.
"""

from repro.sharding.gateway import ShardedGateway, ShardServingGateway
from repro.sharding.persist import (
    attach_wals,
    is_sharded_deployment,
    load_shards,
    read_manifest,
    recover_shard,
    recover_shards,
    save_shards,
    shard_paths,
)
from repro.sharding.router import (
    HashShardRouter,
    ShardRouter,
    ZOrderShardRouter,
    make_router,
)
from repro.sharding.shard import ShardedIndex, ShardIndex

__all__ = [
    "HashShardRouter",
    "ShardRouter",
    "ShardServingGateway",
    "ShardedGateway",
    "ShardedIndex",
    "ShardIndex",
    "ZOrderShardRouter",
    "attach_wals",
    "is_sharded_deployment",
    "load_shards",
    "make_router",
    "read_manifest",
    "recover_shard",
    "recover_shards",
    "save_shards",
    "shard_paths",
]
