"""Durability for sharded deployments: per-shard snapshots + WALs.

A sharded deployment lives in one directory::

    deployment/
      manifest.json          # shard count + router kind (plain JSON)
      shard-0.idx.gz         # per-shard snapshot (save_index archive)
      shard-0.wal            # per-shard write-ahead log
      shard-1.idx.gz
      shard-1.wal
      ...

Each shard checkpoints and logs **independently** — the existing
single-index snapshot format already round-trips a shard exactly (it
stores the content subset plus the full replicated descriptor set), and
:func:`repro.io.wal.replay_wal` replays one shard's log onto its loaded
snapshot.  Recovery therefore parallelises trivially: every shard is
``load_index`` + adopt + ``replay_wal`` with no cross-shard ordering, and
:func:`recover_shards` fans the shards out over a thread pool.  The only
cross-shard step is re-deriving the pinned bank layout afterwards, which
is cheap and deterministic (it is a pure function of the recovered
content, so it is *not* persisted).
"""

from __future__ import annotations

import json
import pathlib
from concurrent.futures import ThreadPoolExecutor

from repro.io.atomic import atomic_write_bytes
from repro.io.index_store import load_index, save_index
from repro.io.wal import WriteAheadLog, replay_wal
from repro.sharding.router import make_router
from repro.sharding.shard import ShardedIndex, ShardIndex

__all__ = [
    "attach_wals",
    "is_sharded_deployment",
    "load_shards",
    "read_manifest",
    "recover_shard",
    "recover_shards",
    "save_shards",
    "shard_paths",
]

MANIFEST_NAME = "manifest.json"


def shard_paths(
    root: str | pathlib.Path, shard_id: int
) -> tuple[pathlib.Path, pathlib.Path]:
    """``(snapshot, wal)`` paths of *shard_id* under *root*."""
    root = pathlib.Path(root)
    return root / f"shard-{shard_id}.idx.gz", root / f"shard-{shard_id}.wal"


def is_sharded_deployment(path: str | pathlib.Path) -> bool:
    """Whether *path* is a sharded deployment directory."""
    path = pathlib.Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def read_manifest(root: str | pathlib.Path) -> dict:
    """The deployment manifest (raises on a non-sharded *root*)."""
    root = pathlib.Path(root)
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    if manifest.get("kind") != "sharded-index":
        raise ValueError(
            f"not a sharded deployment manifest: kind={manifest.get('kind')!r}"
        )
    return manifest


def save_shards(sharded: ShardedIndex, root: str | pathlib.Path) -> None:
    """Checkpoint every shard of *sharded* under *root* (atomic writes).

    Snapshots embed each shard's ``wal_seq`` watermark, so a later
    :func:`recover_shards` replays only the log suffix past the
    checkpoint.  The manifest is written last — a crash mid-save of a
    fresh deployment leaves no manifest, hence no half-deployment that
    recovery would mistake for a whole one.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    for shard in sharded.shards:
        snapshot, _ = shard_paths(root, shard.shard_id)
        save_index(shard, snapshot)
    manifest = {
        "kind": "sharded-index",
        "shards": sharded.num_shards,
        "router": sharded.router.kind,
    }
    payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
    atomic_write_bytes(root / MANIFEST_NAME, payload)


def recover_shard(
    snapshot_path: str | pathlib.Path,
    wal_path: str | pathlib.Path,
    shard_id: int,
    num_shards: int,
) -> ShardIndex:
    """Recover one shard: load its snapshot, adopt, replay its log."""
    shard = ShardIndex._adopt(load_index(snapshot_path), shard_id, num_shards)
    replay_wal(shard, wal_path)
    return shard


def _assemble(
    root: pathlib.Path, shards: list[ShardIndex], router_kind: str
) -> ShardedIndex:
    router = make_router(router_kind, len(shards), shards[0].config)
    return ShardedIndex(shards, router)


def recover_shards(
    root: str | pathlib.Path, max_workers: int | None = None
) -> ShardedIndex:
    """Recover a whole deployment (shards load and replay in parallel).

    Shards share no mutable state until assembly, so recovery fans out
    over a thread pool; the :class:`ShardedIndex` constructor then
    re-derives and pins the global bank layout, restoring bit-parity
    with the single-index oracle.
    """
    root = pathlib.Path(root)
    manifest = read_manifest(root)
    count = int(manifest["shards"])
    with ThreadPoolExecutor(max_workers=max_workers or count) as pool:
        futures = [
            pool.submit(recover_shard, *shard_paths(root, i), i, count)
            for i in range(count)
        ]
        shards = [future.result() for future in futures]
    return _assemble(root, shards, manifest["router"])


def load_shards(root: str | pathlib.Path) -> ShardedIndex:
    """Load a deployment's snapshots without replaying the WALs.

    The checkpoint-only view — what a deliberately-rewound deployment
    serves.  Most callers want :func:`recover_shards`.
    """
    root = pathlib.Path(root)
    manifest = read_manifest(root)
    count = int(manifest["shards"])
    shards = []
    for shard_id in range(count):
        snapshot, _ = shard_paths(root, shard_id)
        shards.append(
            ShardIndex._adopt(load_index(snapshot), shard_id, count)
        )
    return _assemble(root, shards, manifest["router"])


def attach_wals(
    sharded: ShardedIndex, root: str | pathlib.Path, faults=None
) -> list[WriteAheadLog]:
    """Open and attach each shard's WAL; returns the logs (caller closes)."""
    root = pathlib.Path(root)
    logs = []
    for shard in sharded.shards:
        _, wal_path = shard_paths(root, shard.shard_id)
        wal = WriteAheadLog(wal_path, faults=faults)
        shard.attach_wal(wal)
        logs.append(wal)
    return logs
