"""Scatter-gather serving over a sharded community index.

:class:`ShardedGateway` fronts a :class:`~repro.sharding.shard.ShardedIndex`
with the same contract as the single-index
:class:`~repro.serving.gateway.ServingGateway` — and the same *answers*:
the merged top-K is **bit-identical** to what one gateway over the
unsharded index serves.  Three mechanisms carry that guarantee:

* **pinned bank layout** — before every publication the coordinator
  reduces the shards' natural pack layouts to the global one and pins it
  (:meth:`~repro.sharding.shard.ShardedIndex.pin_layout`), so the
  float32 kernel's width- and offset-dependent results match the oracle
  per candidate pair;
* **guest queries** — the query's signature series (and, for the SAR
  modes, its frozen SAR vector) is read from the owner shard's epoch and
  passed to every shard, whose recommender packs it against the pinned
  offset — producing the very keys the oracle derives from its own rows;
* **deterministic merge** — shards partition the candidates, so each
  global top-K candidate appears in its shard's top-K; merging by
  ``(-score, id)`` reproduces the oracle's fused ranking and tie-break
  exactly.

The deadline-free scatter additionally **chains the pruning threshold**
across shards: each shard's bound-ordered scan is seeded with the
running merged k-th best fused score, so a candidate whose upper bound
falls strictly below a score already attained elsewhere is never
scored at all.  A pruned candidate satisfies ``score <= bound <
threshold <= final merged k-th``, so it could not have entered the
merged top-K — the slices may come back trimmed, but the merge stays
bit-identical to the oracle (boundary ties are kept and scored, just
like the in-scan threshold).  The guest query is also packed once
against the pinned layout and shared, since pack output depends only
on the query and the pinned offset.

Each shard keeps its own epoch lifecycle, circuit breaker and fault
plan, so one failing shard degrades *its slice* of the ranking — the
merged result comes back flagged ``degraded``/``partial`` with a
per-shard reason instead of failing the query.  Cross-shard atomicity
comes from the **epoch vector**: after publishing every shard the
coordinator pins the fresh epochs, swaps the vector, and unpins the old
ones; a query pins the whole recorded vector (retrying if a swap won it)
and therefore never mixes shard states from different publications.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager

import numpy as np

from repro.core.recommender import Recommendations
from repro.defense.backpressure import PublishGovernor
from repro.defense.coalesce import TIMEOUT, SingleFlight
from repro.defense.config import DefenseConfig
from repro.measures.content import _segment_integrals
from repro.obs import get_metrics
from repro.serving.epoch import CommunityEpoch
from repro.serving.gateway import GatewayConfig, ServingGateway, _AdmissionGate, _QueryMemo
from repro.sharding.shard import ShardedIndex

__all__ = ["ShardServingGateway", "ShardedGateway"]


class ShardServingGateway(ServingGateway):
    """One shard's serving gateway: epoch lifecycle, breaker, fault plan.

    Inherits the full single-index behaviour (a shard can be queried
    directly) and adds :meth:`scatter_recommend` — the coordinator-facing
    entry that skips admission, memoization and pinning (all global at
    the sharded level) and accepts the owner shard's guest query state.
    """

    def __init__(self, shard, shard_id: int, **kwargs) -> None:
        self.shard_id = int(shard_id)
        super().__init__(shard, **kwargs)

    def _publish(self, fire: bool = True) -> CommunityEpoch:
        epoch = super()._publish(fire=fire)
        metrics = get_metrics()
        label = str(self.shard_id)
        metrics.set_gauge("repro_shard_epoch_id", epoch.epoch_id, shard=label)
        metrics.set_gauge(
            "repro_shard_videos", len(epoch.video_ids), shard=label
        )
        return epoch

    def scatter_recommend(
        self,
        epoch: CommunityEpoch,
        query_id: str,
        top_k: int,
        deadline_at: float | None,
        metrics,
        query_series=None,
        query_vector=None,
        query_pack=None,
        initial_threshold=None,
        trace=None,
    ) -> Recommendations:
        """This shard's top-K slice of a scattered query.

        *epoch* is the coordinator-pinned epoch from the scatter's
        vector (never re-pinned here); *deadline_at* is the request's
        absolute ``time.monotonic`` deadline shared by every shard.  The
        guest *query_series* / *query_vector* come from the owner
        shard's epoch; on the owner itself the indexed fast path wins,
        so passing them everywhere is uniform and harmless.
        *query_pack* is the query packed once against the pinned layout
        (shared by every shard of the scatter); *initial_threshold*
        seeds the pruned scan with the coordinator's running merged
        k-th best score — this shard's slice may come back trimmed to
        the candidates that could still enter the merged top-K.
        """
        candidates = len(epoch.series) - (1 if query_id in epoch.series else 0)
        if candidates <= 0:
            result = Recommendations(scores=[])
        else:
            reason = None
            if self._omega > 0.0 and epoch.social_store.available:
                reason = self._social_path(deadline_at, metrics)
            which = "content" if reason is not None else "full"
            omega_served = 0.0 if reason is not None else self._omega
            recommender = epoch.serving_recommenders[which]
            result = recommender.recommend(
                query_id,
                top_k,
                trace=trace,
                deadline=deadline_at,
                query_series=query_series,
                query_vector=query_vector,
                query_pack=query_pack,
                initial_threshold=initial_threshold,
            )
            if reason is not None:
                result = Recommendations(
                    result,
                    degraded=True,
                    partial=result.partial,
                    reasons=(*result.reasons, reason),
                    scored=result.scored,
                    total=result.total,
                    scores=getattr(result, "scores", None),
                )
            result.omega_served = omega_served
        result.epoch_id = epoch.epoch_id
        result.epoch = epoch
        result.shard_id = self.shard_id
        if not hasattr(result, "omega_served"):
            result.omega_served = self._omega
        return result


class ShardedGateway:
    """Scatter-gather serving facade over a :class:`ShardedIndex`.

    Parameters mirror :class:`~repro.serving.gateway.ServingGateway`;
    *faults* may be one :class:`~repro.testing.faults.FaultPlan` shared
    by every shard or a per-shard list (``None`` entries allowed), which
    is how the chaos suite aims a fault burst at a single shard.

    Mutations are serialized under one writer lock, fan out through the
    :class:`ShardedIndex` (owner routing + social replication), re-pin
    the global bank layout, republish **every** shard's epoch and swap
    the epoch vector — one cross-shard-consistent view per mutation (or
    per :meth:`mutations` block).  Queries admit through one global
    gate, pin the vector, scatter, and merge deterministically.
    """

    def __init__(
        self,
        sharded: ShardedIndex,
        omega: float | None = None,
        social_mode: str = "sar-h",
        content_measure: str = "kj",
        engine: str | None = None,
        config: GatewayConfig | None = None,
        faults=None,
        breaker_clock=time.monotonic,
        seed: int = 0,
    ) -> None:
        self.sharded = sharded
        self.config = config or GatewayConfig()
        self._social_mode = social_mode
        plans = self._per_shard_plans(faults, sharded.num_shards)
        # Pin before the per-shard gateways exist: their constructors
        # publish epoch 0, which must already freeze the global layout.
        sharded.pin_layout()
        self._gateways = [
            ShardServingGateway(
                shard,
                shard.shard_id,
                omega=omega,
                social_mode=social_mode,
                content_measure=content_measure,
                engine=engine,
                config=self.config,
                faults=plans[shard.shard_id],
                breaker_clock=breaker_clock,
                seed=seed + shard.shard_id,
            )
            for shard in sharded.shards
        ]
        self._omega = self._gateways[0]._omega
        self._write_lock = threading.RLock()
        self._mutation_depth = 0
        self._publish_pending = False
        self._vector_lock = threading.Lock()
        self._defense = self.config.defense or DefenseConfig()
        self._gate = _AdmissionGate(
            self.config.max_concurrency,
            self.config.queue_depth,
            self.config.queue_timeout,
            hot_priority=self._defense.hot_priority,
        )
        self._memo = _QueryMemo(self.config.memo_capacity)
        self._flights = SingleFlight() if self._defense.coalesce else None
        self._governor = (
            PublishGovernor(
                self._defense.min_publish_interval,
                self._defense.max_deferred_mutations,
            )
            if self._defense.min_publish_interval > 0
            else None
        )
        self._publish_timer: threading.Timer | None = None
        self._deferred_publish = False
        self._pool = ThreadPoolExecutor(
            max_workers=sharded.num_shards, thread_name_prefix="shard-scatter"
        )
        # The vector itself holds one reader pin per epoch, so an epoch
        # referenced by the vector can never retire out from under a
        # query that read the vector but has not pinned yet.
        vector = tuple(gw.current_epoch for gw in self._gateways)
        for gw, epoch in zip(self._gateways, vector):
            pinned = gw.epochs.pin_specific(epoch)
            assert pinned  # the constructor's epoch 0 is current
        self._epoch_vector = vector
        if self._governor is not None:
            self._governor.published()

    @staticmethod
    def _per_shard_plans(faults, num_shards: int) -> list:
        if faults is None:
            return [None] * num_shards
        if isinstance(faults, (list, tuple)):
            plans = list(faults)
            if len(plans) != num_shards:
                raise ValueError(
                    f"need {num_shards} per-shard fault plans, got {len(plans)}"
                )
            return plans
        return [faults] * num_shards

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._gateways)

    @property
    def gateways(self) -> list[ShardServingGateway]:
        """The per-shard gateways (breaker/epoch introspection)."""
        return list(self._gateways)

    @property
    def current_epochs(self) -> tuple[CommunityEpoch, ...]:
        """The epoch vector new queries pin."""
        with self._vector_lock:
            return self._epoch_vector

    def close(self) -> None:
        """Shut the scatter thread pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Mutations (serialized; each swaps a fresh epoch vector)
    # ------------------------------------------------------------------
    def _republish(self) -> None:
        self.sharded.pin_layout()
        fresh = []
        for gw in self._gateways:
            with gw._write_lock:
                fresh.append(gw._publish())
        for gw, epoch in zip(self._gateways, fresh):
            pinned = gw.epochs.pin_specific(epoch)
            assert pinned  # just published, still current
        with self._vector_lock:
            stale = self._epoch_vector
            self._epoch_vector = tuple(fresh)
        for gw, epoch in zip(self._gateways, stale):
            gw.epochs.unpin(epoch)
        metrics = get_metrics()
        self._memo.invalidate(metrics)
        metrics.inc("repro_sharded_publish_total")

    def _maybe_republish(self) -> None:
        """Republish now, defer into a block, or defer under the governor
        (same backpressure model as :meth:`ServingGateway._maybe_publish`
        — a storm of mutations builds a bounded number of epoch vectors)."""
        if self._mutation_depth:
            self._publish_pending = True
            return
        if self._governor is not None and self._governor.should_defer():
            self._deferred_publish = True
            get_metrics().inc("repro_defense_deferred_publishes_total")
            self._arm_publish_timer()
            return
        self._republish_governed()

    def _republish_governed(self) -> None:
        self._deferred_publish = False
        self._republish()
        if self._governor is not None:
            self._governor.published()

    def _arm_publish_timer(self) -> None:
        if self._publish_timer is not None:
            return
        delay = max(self._governor.delay_remaining(), 1e-4)
        timer = threading.Timer(delay, self._flush_deferred_publish)
        timer.daemon = True
        self._publish_timer = timer
        timer.start()

    def _flush_deferred_publish(self) -> None:
        with self._write_lock:
            self._publish_timer = None
            if not self._deferred_publish or self._mutation_depth:
                return
            if self._governor.delay_remaining() > 0:
                self._arm_publish_timer()
                return
            self._republish_governed()

    @contextmanager
    def mutations(self):
        """Batch mutations into **one** vector swap (see
        :meth:`ServingGateway.mutations`)."""
        with self._write_lock:
            self._mutation_depth += 1
            try:
                yield self
            finally:
                self._mutation_depth -= 1
                if self._mutation_depth == 0 and self._publish_pending:
                    self._publish_pending = False
                    self._maybe_republish()

    def ingest_video(self, clip_or_record, owner=None, users=()) -> str:
        with self._write_lock:
            video_id = self.sharded.ingest_video(
                clip_or_record, owner=owner, users=users
            )
            self._maybe_republish()
            return video_id

    def retire_video(self, video_id: str) -> None:
        with self._write_lock:
            self.sharded.retire_video(video_id)
            self._maybe_republish()

    def apply_comments(self, comments, incremental: bool = False):
        with self._write_lock:
            stats = self.sharded.apply_comments(comments, incremental=incremental)
            self._maybe_republish()
            return stats

    def remove_comments(self, comments) -> int:
        """Serialized spam revocation across every shard + republish."""
        with self._write_lock:
            removed = self.sharded.remove_comments(comments)
            self._maybe_republish()
            return removed

    def advance_watermark(self, month: int) -> int:
        with self._write_lock:
            month = self.sharded.advance_watermark(month)
            self._maybe_republish()
            return month

    # ------------------------------------------------------------------
    # Queries (scatter + gather)
    # ------------------------------------------------------------------
    def _pin_vector(self) -> tuple[CommunityEpoch, ...]:
        """Pin every epoch of one consistent vector (retrying swaps)."""
        while True:
            with self._vector_lock:
                vector = self._epoch_vector
            pinned: list[CommunityEpoch] = []
            for gw, epoch in zip(self._gateways, vector):
                if not gw.epochs.pin_specific(epoch):
                    break
                pinned.append(epoch)
            if len(pinned) == len(vector):
                return vector
            for gw, epoch in zip(self._gateways, pinned):
                gw.epochs.unpin(epoch)
            # A republish swapped the vector mid-pin; re-read and retry.
            time.sleep(0.0005)

    def _unpin_vector(self, vector: tuple[CommunityEpoch, ...]) -> None:
        for gw, epoch in zip(self._gateways, vector):
            gw.epochs.unpin(epoch)

    def _query_state(self, query_id: str, vector):
        """``(owner, series, sar_vector)`` of *query_id* in *vector*."""
        for owner, epoch in enumerate(vector):
            if query_id in epoch.series:
                break
        else:
            raise KeyError(f"unknown video {query_id!r}")
        series = epoch.series[query_id]
        vector_row = None
        if (
            self._omega > 0.0
            and epoch.social_store.available
            and epoch.video_ids
        ):
            if self._social_mode in ("sar", "sar-h"):
                row = int(np.searchsorted(epoch._ids_array, query_id))
                vector_row = epoch.sar_matrix(self._social_mode)[row]
            elif self._social_mode == "sketch":
                # Sketch guests ship ``(sketch row, set size)`` — the
                # non-owner shards' frozen banks only cover their own
                # videos, exactly like the SAR matrices.
                row = int(np.searchsorted(epoch._ids_array, query_id))
                matrix, sizes = epoch.sketch_matrix()
                vector_row = (matrix[row], int(sizes[row]))
        return owner, series, vector_row

    def recommend(
        self,
        query_id: str,
        top_k: int = 10,
        deadline: float | None = None,
        trace=None,
    ) -> Recommendations:
        """The merged top-K over every shard's slice of the candidates.

        Bit-identical to the single-index oracle when every shard
        answers cleanly.  A shard that misses the shared deadline marks
        the result ``partial``; a shard that fails marks it
        ``degraded``; both attach a per-shard reason and the remaining
        shards' slices still merge.  The per-shard raw results ride
        along as ``result.shard_results`` (``None`` for a shard that
        produced nothing), which is what the chaos suite replays.
        """
        metrics = get_metrics()
        if deadline is None:
            deadline = self.config.default_deadline
        deadline_at = None if deadline is None else time.monotonic() + float(deadline)
        defense = self._defense
        hot = False
        flight_key = None
        if defense.coalesce or defense.hot_priority:
            # Advisory pre-admission peek at the current vector (no
            # pin); see ServingGateway.recommend for the rationale.
            with self._vector_lock:
                vector = self._epoch_vector
            epoch_ids = tuple(epoch.epoch_id for epoch in vector)
            deadline_class = "none" if deadline is None else f"{deadline:g}"
            if defense.hot_priority:
                hot = self._memo.contains(
                    (epoch_ids, query_id, int(top_k), deadline_class)
                )
            if defense.coalesce:
                flight_key = (epoch_ids, query_id, int(top_k), deadline_class)
        if flight_key is not None:
            leader, flight = self._flights.begin(flight_key)
            if not leader:
                budget = defense.coalesce_wait
                if deadline_at is not None:
                    budget = min(budget, max(0.001, deadline_at - time.monotonic()))
                outcome = self._flights.wait(flight, budget)
                if outcome is not TIMEOUT:
                    metrics.inc("repro_defense_coalesced_followers_total")
                    result = outcome.copy()
                    result.epoch_ids = outcome.epoch_ids
                    result.epochs = outcome.epochs
                    result.omega_served = outcome.omega_served
                    result.shard_results = None
                    result.coalesced = True
                    metrics.inc("repro_sharded_queries_total")
                    return result
                metrics.inc("repro_defense_coalesce_timeouts_total")
                return self._admitted_recommend(
                    query_id, top_k, deadline, deadline_at, trace, metrics, hot
                )
            metrics.inc("repro_defense_coalesce_leaders_total")
            try:
                result = self._admitted_recommend(
                    query_id, top_k, deadline, deadline_at, trace, metrics, hot
                )
            except BaseException as error:
                self._flights.finish(flight_key, flight, error=error)
                raise
            self._flights.finish(flight_key, flight, result=result)
            return result
        return self._admitted_recommend(
            query_id, top_k, deadline, deadline_at, trace, metrics, hot
        )

    def _admitted_recommend(
        self, query_id, top_k, deadline, deadline_at, trace, metrics, hot=False
    ) -> Recommendations:
        self._gate.admit(deadline_at, metrics, hot=hot)
        admitted_at = time.monotonic()
        try:
            with metrics.time("repro_sharded_latency_seconds"):
                vector = self._pin_vector()
                try:
                    return self._scatter(
                        vector, query_id, top_k, deadline, deadline_at, trace, metrics
                    )
                finally:
                    self._unpin_vector(vector)
        finally:
            self._gate.release(metrics, time.monotonic() - admitted_at)

    def _scatter(
        self, vector, query_id, top_k, deadline, deadline_at, trace, metrics
    ) -> Recommendations:
        owner, query_series, query_vector = self._query_state(query_id, vector)
        memo_key = (
            tuple(epoch.epoch_id for epoch in vector),
            query_id,
            int(top_k),
            "none" if deadline is None else f"{deadline:g}",
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            metrics.inc("repro_sharded_memo_hit_total")
            result = cached.copy()
            result.epoch_ids = memo_key[0]
            result.epochs = vector
            result.omega_served = self._omega
            result.shard_results = None
            metrics.inc("repro_sharded_queries_total")
            return result
        metrics.inc("repro_sharded_memo_miss_total")

        def scatter_one(index: int, query_pack=None, initial_threshold=None):
            gw, epoch = self._gateways[index], vector[index]
            return gw.scatter_recommend(
                epoch,
                query_id,
                top_k,
                deadline_at,
                metrics,
                query_series=query_series,
                query_vector=query_vector,
                query_pack=query_pack,
                initial_threshold=initial_threshold,
                trace=trace,
            )

        shard_results: list = [None] * len(vector)
        shard_reasons: list[str] = []
        missed: list[int] = []
        failed: list[int] = []
        if deadline_at is None:
            # No deadline: scatter in-thread — the perf path pays no
            # handoff, and a shard exception is contained per shard.
            # Two cross-shard amortizations keep the scatter near the
            # single-index cost: the query is packed ONCE against the
            # pinned layout (pack output depends only on the query and
            # the pinned offset, so every shard would derive the same
            # triple), and each shard's pruned scan is seeded with the
            # running merged k-th best score, so later shards skip
            # candidates that can no longer enter the merged top-K.
            query_pack = None
            if len(vector) > 1:
                try:
                    pack = vector[owner].signature_bank().fast_pack()
                    keys, values, weights = pack.pack_query(query_series)
                    # The pinned grid is shared by every shard, so the
                    # guest's bound integrals are computed once too.
                    integrals = _segment_integrals(
                        values, weights, grid=pack.grid
                    )[1]
                    query_pack = (keys, values, weights, integrals)
                except Exception:  # noqa: BLE001 - shards repack solo
                    query_pack = None
            running: list[tuple[float, str]] = []
            threshold = None
            # Owner shard first: its indexed fast path is the cheapest
            # full (unseeded) scan, and the threshold it establishes
            # seeds every guest shard.  The merge is order-independent
            # — trimming only ever drops candidates provably outside
            # the merged top-K — so this is purely a perf choice.
            scan_order = [owner] + [
                index for index in range(len(vector)) if index != owner
            ]
            for index in scan_order:
                try:
                    shard_results[index] = scatter_one(
                        index,
                        query_pack=query_pack,
                        initial_threshold=threshold,
                    )
                except Exception as error:  # noqa: BLE001 - degrade, never fail
                    failed.append(index)
                    shard_reasons.append(f"shard {index} failed ({error})")
                    metrics.inc(
                        "repro_sharded_shard_failures_total", shard=str(index)
                    )
                else:
                    slice_result = shard_results[index]
                    scores = getattr(slice_result, "scores", None) or []
                    if scores:
                        running.extend(zip(scores, slice_result))
                        running.sort(key=lambda entry: (-entry[0], entry[1]))
                        del running[top_k:]
                        if len(running) >= top_k:
                            threshold = running[-1][0]
        else:
            futures = {
                index: self._pool.submit(scatter_one, index)
                for index in range(len(vector))
            }
            for index, future in futures.items():
                remaining = deadline_at - time.monotonic()
                try:
                    shard_results[index] = future.result(
                        timeout=max(0.0, remaining)
                    )
                except FutureTimeoutError:
                    missed.append(index)
                    shard_reasons.append(
                        f"shard {index} missed the deadline; merged without it"
                    )
                    metrics.inc(
                        "repro_sharded_shard_deadline_total", shard=str(index)
                    )
                except Exception as error:  # noqa: BLE001 - degrade, never fail
                    failed.append(index)
                    shard_reasons.append(f"shard {index} failed ({error})")
                    metrics.inc(
                        "repro_sharded_shard_failures_total", shard=str(index)
                    )

        result = self._merge(
            vector, owner, shard_results, shard_reasons, missed, failed, top_k
        )
        if not result.degraded and not result.partial:
            self._memo.put(memo_key, result.copy(), metrics)
        result.epoch_ids = memo_key[0]
        result.epochs = vector
        result.omega_served = (
            self._omega
            if not result.degraded
            else min(
                (r.omega_served for r in shard_results if r is not None),
                default=0.0,
            )
        )
        result.shard_results = tuple(shard_results)
        metrics.inc("repro_sharded_queries_total")
        if result.degraded:
            metrics.inc("repro_sharded_degraded_total")
        if result.partial:
            metrics.inc("repro_sharded_deadline_miss_total")
        return result

    def _merge(
        self, vector, owner, shard_results, shard_reasons, missed, failed, top_k
    ) -> Recommendations:
        """Gather per-shard slices into the oracle's fused ranking.

        Shards partition the candidate set, so every global top-K
        candidate ranks inside its own shard's top-K; concatenating the
        slices and sorting by ``(-score, id)`` therefore reproduces the
        oracle's score order *and* its ascending-id tie-break exactly.
        Threshold-chained slices may be trimmed below K entries, but
        only of candidates provably outside the merged top-K, so the
        guarantee is unchanged.
        """
        entries: list[tuple[float, str]] = []
        reasons: list[str] = list(shard_reasons)
        degraded = bool(failed)
        partial = bool(missed)
        scored = 0
        total = 0
        for index, result in enumerate(shard_results):
            if result is None:
                # The missing shard's candidates were never scored.
                epoch = vector[index]
                total += len(epoch.series) - (1 if index == owner else 0)
                continue
            degraded |= result.degraded
            partial |= result.partial
            reasons.extend(
                f"shard {index}: {reason}" for reason in result.reasons
            )
            scored += result.scored
            total += result.total
            scores = result.scores if result.scores is not None else []
            entries.extend(zip(scores, result))
        entries.sort(key=lambda entry: (-entry[0], entry[1]))
        top = entries[:top_k]
        return Recommendations(
            [video_id for _, video_id in top],
            degraded=degraded,
            partial=partial,
            reasons=tuple(reasons),
            scored=scored,
            total=total,
            scores=[score for score, _ in top],
        )
