"""Shard routing: deciding which shard owns a video's content.

Two policies ship:

* :class:`HashShardRouter` — CRC32 of the video id modulo the shard
  count.  Placement is uniform and needs nothing but the id, so it is
  the default for ingest paths that have not extracted features yet.
* :class:`ZOrderShardRouter` — quantises the video's first cuboid
  signature through the same :class:`~repro.emd.embedding.EmdEmbedding`
  the LSB forest uses, interleaves the coordinates into a Z-order key
  (:func:`~repro.index.zorder.zorder_encode`), and assigns the shard
  from the key's **top** ``log2(shards)`` bits.  Key-range partitioning
  keeps Z-order-adjacent videos co-resident, so the locality the LSB
  forest exploits survives sharding: probing a query's neighbourhood
  mostly touches one shard.

Routing only places **content**.  Social descriptors are replicated to
every shard (see :mod:`repro.sharding.shard`), so the router never has
to be consulted for comment traffic.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.emd.embedding import EmdEmbedding
from repro.index.zorder import zorder_encode

__all__ = [
    "HashShardRouter",
    "ShardRouter",
    "ZOrderShardRouter",
    "make_router",
]


class ShardRouter:
    """Base routing policy: ``route(video_id, series) -> shard``.

    Attributes
    ----------
    kind:
        Stable policy name, persisted in shard-deployment manifests so
        recovery rebuilds the same router.
    needs_series:
        Whether :meth:`route` requires the video's extracted
        :class:`~repro.signatures.series.SignatureSeries` (content-aware
        policies) or works from the id alone.
    """

    kind = "base"
    needs_series = False

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = int(shards)

    def route(self, video_id: str, series=None) -> int:
        """The shard in ``[0, shards)`` that owns *video_id*'s content."""
        raise NotImplementedError


class HashShardRouter(ShardRouter):
    """Uniform id-hash placement (CRC32 mod shards)."""

    kind = "hash"
    needs_series = False

    def route(self, video_id: str, series=None) -> int:
        return zlib.crc32(video_id.encode("utf-8")) % self.shards


class ZOrderShardRouter(ShardRouter):
    """Key-range placement over the Z-order curve of EMD embeddings.

    The video's first signature is embedded into the ``resolution``-dim
    L1 space (its scaled CDF), each coordinate is normalised to ``[0, 1]``
    (embedding entries are bounded by the bin width) and quantised to
    ``bits_per_dim`` bits, and the coordinates are bit-interleaved
    MSB-first.  With a power-of-two shard count the shard is simply the
    key's top ``log2(shards)`` bits — contiguous key ranges map to one
    shard, so curve-adjacent (content-similar) videos co-locate.
    """

    kind = "zorder"
    needs_series = True

    def __init__(self, shards: int, config, bits_per_dim: int = 4) -> None:
        super().__init__(shards)
        if shards & (shards - 1):
            raise ValueError(
                f"zorder routing needs a power-of-two shard count, got {shards}"
            )
        if bits_per_dim < 1:
            raise ValueError(f"bits_per_dim must be >= 1, got {bits_per_dim}")
        self.bits_per_dim = int(bits_per_dim)
        self.embedding = EmdEmbedding(
            lo=config.embedding_range[0],
            hi=config.embedding_range[1],
            resolution=config.embedding_resolution,
        )
        #: Total key width: ``resolution * bits_per_dim`` interleaved bits.
        self.total_bits = self.embedding.resolution * self.bits_per_dim
        #: How many leading key bits select the shard (0 when shards == 1).
        self.prefix_bits = (self.shards - 1).bit_length()

    def zorder_key(self, series) -> int:
        """The Z-order key of *series* (from its first signature)."""
        signature = series[0]
        embedded = self.embedding.embed(signature.values, signature.weights)
        # Embedding entries are prefix sums of a normalised histogram
        # scaled by the bin width, hence bounded by it; dividing maps
        # them onto [0, 1] before quantisation.
        unit = np.clip(embedded / self.embedding.bin_width, 0.0, 1.0)
        levels = (1 << self.bits_per_dim) - 1
        coords = np.clip(np.floor(unit * levels).astype(np.int64), 0, levels)
        return zorder_encode([int(c) for c in coords], self.bits_per_dim)

    def route(self, video_id: str, series=None) -> int:
        if self.shards == 1:
            return 0
        if series is None:
            raise ValueError(
                "zorder routing requires the video's signature series"
            )
        return self.zorder_key(series) >> (self.total_bits - self.prefix_bits)


_ROUTERS = {"hash": HashShardRouter, "zorder": ZOrderShardRouter}


def make_router(kind: str, shards: int, config=None) -> ShardRouter:
    """Build the router named *kind* (``"hash"`` or ``"zorder"``)."""
    if kind == "hash":
        return HashShardRouter(shards)
    if kind == "zorder":
        if config is None:
            raise ValueError("zorder routing requires a RecommenderConfig")
        return ZOrderShardRouter(shards, config)
    raise ValueError(
        f"unknown router kind {kind!r} (expected one of {sorted(_ROUTERS)})"
    )
