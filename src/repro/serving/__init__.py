"""Concurrent serving: epoch snapshot isolation, deadlines, load shedding.

See DESIGN §11.  The entry point is :class:`ServingGateway`; the epoch
and breaker machinery are public for tests and for callers that want the
pieces without the facade.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, STATE_CODES, CircuitBreaker
from repro.serving.epoch import CommunityEpoch, EpochManager
from repro.serving.gateway import (
    SERVE_PUBLISH_POINT,
    SERVE_SOCIAL_POINT,
    GatewayConfig,
    ServingGateway,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "CircuitBreaker",
    "CommunityEpoch",
    "EpochManager",
    "GatewayConfig",
    "ServingGateway",
    "SERVE_PUBLISH_POINT",
    "SERVE_SOCIAL_POINT",
]
