"""Epoch snapshot isolation: immutable per-query views of the live index.

The live stores (:class:`~repro.core.stores.ContentStore` /
:class:`~repro.core.stores.SocialStore`) are only safe when queries and
mutations are serialized — one ``ingest_video`` mid-scan can tear a
:class:`~repro.measures.content.SignatureBank` read or swap the SAR
matrix under a ``searchsorted``.  Epochs decouple the two sides:

* every **mutation** (applied under the gateway's writer lock) builds and
  publishes a new :class:`CommunityEpoch` — a copy-on-write freeze of the
  revision-counted store state.  Publication is O(videos): dict copies
  hold the immutable per-video values (signature series, social
  descriptors), the bank snapshot shares its padded matrices (safe under
  its append-only array discipline, see
  :meth:`~repro.measures.content.SignatureBank.snapshot`), and the SAR
  matrices are the index's revision-keyed materializations, which are
  rebuilt fresh — never written in place — when a revision moves;
* every **query** pins the current epoch, scans it without taking any
  lock (the pin/unpin itself is a short critical section; the scan hot
  path touches only frozen state), and unpins when done;
* an epoch is **retired** when it is no longer current and its last
  reader has drained.

A :class:`CommunityEpoch` duck-types enough of
:class:`~repro.core.pipeline.CommunityIndex` that an unmodified
:class:`~repro.core.recommender.FusionRecommender` serves from it; the
SAR vectorizers are replaced by :class:`_RowVectorizer`, which reads the
query's histogram straight out of the frozen SAR matrix instead of
walking a live hash table that incremental maintenance mutates in place.
Because every indexed video's matrix row *is* its vectorization, the
substitution is bit-exact.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.recommender import FusionRecommender

__all__ = ["CommunityEpoch", "EpochManager"]


class _FrozenSocialView:
    """The slice of :class:`SocialStore` a recommender reads, frozen."""

    __slots__ = ("available", "unavailable_reason", "skipped_mutations", "k")

    def __init__(self, store) -> None:
        self.available = store.available
        self.unavailable_reason = store.unavailable_reason
        self.skipped_mutations = store.skipped_mutations
        self.k = store.k


class _RowVectorizer:
    """SAR vectorization by frozen-matrix row lookup.

    Rows of the epoch's ``(N, k)`` SAR matrix follow the sorted video-id
    order and were produced by the live vectorizer at publish time, so
    ``matrix[row_of(video)]`` *is* ``vectorize(descriptor(video))`` — but
    reads only frozen state.  Only descriptors of indexed videos can be
    vectorized, which is exactly what query-time code paths need.
    """

    __slots__ = ("_matrix", "_ids")

    def __init__(self, matrix: np.ndarray, ids: np.ndarray) -> None:
        self._matrix = matrix
        self._ids = ids

    def vectorize(self, descriptor) -> np.ndarray:
        row = int(np.searchsorted(self._ids, descriptor.video_id))
        if row >= self._ids.size or self._ids[row] != descriptor.video_id:
            raise KeyError(f"unknown video {descriptor.video_id!r}")
        return self._matrix[row]


class CommunityEpoch:
    """One immutable published view of the community (a serving epoch).

    Duck-types the :class:`~repro.core.pipeline.CommunityIndex` surface
    that :class:`~repro.core.recommender.FusionRecommender` consumes
    (``config`` / ``series`` / ``video_ids`` / ``descriptor`` /
    ``signature_bank`` / ``sar_matrix`` / ``sketch_matrix`` / ``sar`` /
    ``sar_h`` / ``social_store`` / ``revisions``), entirely over frozen
    state.  The
    ``lsb`` attribute is ``None``: index-backed KNN search stays a
    live-index feature.

    Reader bookkeeping (``readers``/``retired``) belongs to the owning
    :class:`EpochManager` and is only touched under its lock.
    """

    def __init__(self, index, epoch_id: int, published_at: float) -> None:
        self.epoch_id = epoch_id
        self.published_at = published_at
        self.config = index.config
        self.revisions = index.revisions
        self.up_to_month = index.up_to_month
        self.series = dict(index.content.series)
        self.features = dict(index.content.features)
        self.video_ids = sorted(self.series)
        self._ids_array = np.asarray(self.video_ids)
        self.descriptors = dict(index.social_store.descriptors)
        self.social_store = _FrozenSocialView(index.social_store)
        # A shard can be (or become) empty of content while its replicated
        # social side still holds descriptors; an empty content store has
        # no bank or SAR matrix to freeze.
        self._bank = (
            index.content.signature_bank().snapshot() if self.series else None
        )
        self._sar_matrices: dict[str, np.ndarray] = {}
        self._vectorizers: dict[str, _RowVectorizer] = {}
        self._sketch: tuple[np.ndarray, np.ndarray] | None = None
        if self.social_store.available and self.video_ids:
            for backend in ("sar", "sar-h"):
                matrix = index.sar_matrix(backend)
                self._sar_matrices[backend] = matrix
                self._vectorizers[backend] = _RowVectorizer(matrix, self._ids_array)
            # The sketch bank is maintained incrementally, so this is the
            # index's revision-keyed stacked copy — frozen like the SAR
            # matrices, never written in place.
            self._sketch = index.sketch_matrix()
        self.lsb = None
        # Managed by EpochManager under its lock.
        self.readers = 0
        self.retired = False

    # ------------------------------------------------------------------
    # CommunityIndex surface
    # ------------------------------------------------------------------
    def descriptor(self, video_id: str):
        """The frozen social descriptor of *video_id*."""
        return self.descriptors[video_id]

    def signature_bank(self):
        """The frozen signature bank snapshot."""
        if self._bank is None:
            raise ValueError("cannot build a SignatureBank from no series")
        return self._bank

    def sar_matrix(self, backend: str) -> np.ndarray:
        """The frozen ``(N, k)`` SAR matrix of *backend*."""
        return self._sar_matrices[backend]

    def sketch_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """The frozen ``(sketches, sizes)`` pair (``social_mode="sketch"``)."""
        if self._sketch is None:
            raise KeyError("no sketch matrix frozen in this epoch")
        return self._sketch

    @property
    def sar(self) -> _RowVectorizer:
        """Frozen sorted-dictionary SAR vectorization (row lookup)."""
        return self._vectorizers["sar"]

    @property
    def sar_h(self) -> _RowVectorizer:
        """Frozen chained-hash SAR vectorization (row lookup)."""
        return self._vectorizers["sar-h"]

    # ------------------------------------------------------------------
    # Serving helpers
    # ------------------------------------------------------------------
    def recommender(self, **kwargs) -> FusionRecommender:
        """A :class:`FusionRecommender` bound to this frozen epoch.

        ``num_workers`` is forced to 0: epoch recommenders are shared by
        concurrent reader threads, and the worker-pool seam is the one
        piece of per-recommender mutable state.  Everything else the
        recommender touches during a query is frozen epoch state or
        query-local, so one instance serves any number of threads.
        """
        kwargs.setdefault("time_budget", None)
        return FusionRecommender(self, num_workers=0, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunityEpoch(id={self.epoch_id}, videos={len(self.video_ids)}, "
            f"revisions={self.revisions}, readers={self.readers})"
        )


class EpochManager:
    """Publish/pin/retire lifecycle of :class:`CommunityEpoch` objects.

    One writer publishes (under the gateway's writer lock); any number of
    readers pin and unpin.  The manager's own lock protects only the
    pointer swap and the refcounts — never the scan.  A superseded epoch
    is retired the moment its last reader unpins (or immediately at
    publication if it has no readers), so the set of live epochs is
    bounded by the number of in-flight queries plus one.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._current: CommunityEpoch | None = None
        self._live: dict[int, CommunityEpoch] = {}
        self._next_id = 0
        self.published_total = 0
        self.retired_total = 0

    # ------------------------------------------------------------------
    def publish(self, index, prepare=None) -> CommunityEpoch:
        """Freeze *index* into a new epoch and make it current.

        *prepare* (optional) runs over the finished snapshot **before**
        the pointer swap — anything readers expect on a pinned epoch
        (the gateway attaches its per-epoch recommenders here) must be
        in place by the time the epoch becomes visible, or a reader
        pinning in the gap observes a half-initialised view.
        """
        with self._lock:
            epoch_id = self._next_id
            self._next_id += 1
        # Building the snapshot happens outside the manager lock (it is
        # O(videos)); the caller's writer lock keeps the index stable.
        epoch = CommunityEpoch(index, epoch_id, self._clock())
        if prepare is not None:
            prepare(epoch)
        with self._lock:
            previous = self._current
            self._current = epoch
            self._live[epoch.epoch_id] = epoch
            self.published_total += 1
            if previous is not None and previous.readers == 0:
                self._retire(previous)
        return epoch

    def pin(self) -> CommunityEpoch:
        """The current epoch, pinned for one reader (must be unpinned)."""
        with self._lock:
            epoch = self._current
            if epoch is None:
                raise RuntimeError("no epoch has been published")
            epoch.readers += 1
            return epoch

    def pin_specific(self, epoch: CommunityEpoch) -> bool:
        """Pin *epoch* (not necessarily current) if it is still live.

        The sharded gateway publishes one epoch per shard and records the
        whole vector atomically; readers then pin each shard's *recorded*
        epoch rather than whatever is current at pin time, so one scatter
        never mixes shard states from different publications.  Returns
        ``False`` when the epoch has already been retired — the caller
        re-reads the vector and retries.
        """
        with self._lock:
            if epoch.retired:
                return False
            epoch.readers += 1
            return True

    def unpin(self, epoch: CommunityEpoch) -> None:
        """Drop one reader pin; retires a drained superseded epoch."""
        with self._lock:
            epoch.readers -= 1
            if epoch.readers == 0 and epoch is not self._current:
                self._retire(epoch)

    def _retire(self, epoch: CommunityEpoch) -> None:
        epoch.retired = True
        self._live.pop(epoch.epoch_id, None)
        self.retired_total += 1

    # ------------------------------------------------------------------
    @property
    def current(self) -> CommunityEpoch | None:
        """The epoch new queries pin (None before the first publish)."""
        with self._lock:
            return self._current

    @property
    def live_count(self) -> int:
        """Epochs not yet retired (current + still-pinned superseded)."""
        with self._lock:
            return len(self._live)

    def current_age(self) -> float:
        """Seconds since the current epoch was published."""
        with self._lock:
            if self._current is None:
                return 0.0
            return self._clock() - self._current.published_at
