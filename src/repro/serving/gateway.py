"""The concurrent serving gateway: one writer, many lock-free readers.

:class:`ServingGateway` fronts a :class:`~repro.core.pipeline.LiveCommunityIndex`
and gives every query an immutable epoch view while mutations stream in:

* **writes** (`ingest_video` / `retire_video` / `apply_comments` /
  `advance_watermark`) are serialized under one writer lock; each
  mutation publishes a fresh :class:`~repro.serving.epoch.CommunityEpoch`
  (copy-on-write snapshot, O(videos));
* **reads** pin the current epoch and scan it without locks.  Admission
  control bounds concurrency: beyond ``max_concurrency`` in-flight
  queries, up to ``queue_depth`` requests wait (no longer than
  ``queue_timeout`` or their own deadline); everything else is **shed**
  with a typed :class:`~repro.errors.OverloadedError`;
* each request carries a **deadline** that threads into the
  recommender's chunked candidate scan — an expired deadline returns the
  best-effort prefix flagged ``partial`` instead of blowing the budget;
* the **social path** is guarded by a circuit breaker: repeated
  failures (``FaultPlan``-injected at the registered
  ``serve.social_scores`` point) trip it open, open requests serve
  content-only rankings via ω-renormalisation flagged ``degraded``, and
  half-open probes close it once the dependency recovers.  Transient
  fault classes are retried with seeded jittered exponential backoff
  before they count as breaker failures.

Everything is instrumented into the process-wide
:func:`repro.obs.get_metrics` registry under ``repro_serving_*`` names
(see DESIGN §11 for the full list).
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.recommender import FusionRecommender, Recommendations
from repro.defense.backpressure import PublishGovernor
from repro.defense.coalesce import TIMEOUT, SingleFlight
from repro.defense.config import DefenseConfig
from repro.errors import OverloadedError
from repro.obs import get_metrics
from repro.serving.breaker import STATE_CODES, CircuitBreaker
from repro.serving.epoch import CommunityEpoch, EpochManager
from repro.testing.faults import (
    NO_FAULTS,
    InjectedCrashError,
    InjectedFaultError,
    register_crash_point,
)

__all__ = [
    "GatewayConfig",
    "ServingGateway",
    "SERVE_SOCIAL_POINT",
    "SERVE_PUBLISH_POINT",
]

#: The social dependency call of every fused query — transient faults
#: armed here are retried, then charged to the circuit breaker.
SERVE_SOCIAL_POINT = register_crash_point(
    "serve.social_scores",
    "serving gateway: social relevance dependency call (breaker-guarded)",
)

#: Epoch publication after a mutation — an abort here models a crash
#: between applying a mutation and publishing it (readers keep serving
#: the previous epoch until the next successful publish).
SERVE_PUBLISH_POINT = register_crash_point(
    "serve.publish_epoch",
    "serving gateway: epoch snapshot publication after a mutation",
)


@dataclass(frozen=True)
class GatewayConfig:
    """Serving knobs of :class:`ServingGateway`.

    Attributes
    ----------
    max_concurrency:
        Queries scanning concurrently; beyond this, requests queue.
    queue_depth:
        Bounded admission queue; a full queue sheds immediately.
    queue_timeout:
        Longest a queued request waits for a slot (its own deadline may
        cut that shorter) before being shed.
    default_deadline:
        Per-request deadline in seconds applied when the caller passes
        none (``None`` = unlimited scan).
    breaker_failure_threshold / breaker_cooldown / breaker_probes /
    breaker_successes:
        Circuit-breaker tuning (see :class:`~repro.serving.breaker.CircuitBreaker`).
    retry_attempts:
        Retries of a *transient* social-path failure before it counts as
        a breaker failure.
    retry_backoff:
        Base backoff delay in seconds (doubles per attempt).
    retry_jitter:
        Uniform jitter fraction added to each backoff delay (0 = none).
    memo_capacity:
        Entries of the epoch-keyed query-result memo (LRU-evicted; 0
        disables memoization).  A repeated ``(query, top_k, ω,
        deadline-class)`` on an unchanged epoch is answered from the memo
        without rescanning; any epoch publication invalidates the whole
        memo, so a hit can never serve pre-mutation rankings.
    defense:
        Optional :class:`~repro.defense.config.DefenseConfig` arming the
        adversarial-workload defense layer (singleflight coalescing,
        hot-key priority admission, publish backpressure).  ``None`` (or
        the all-default instance) keeps behaviour bit-identical to a
        gateway without the defense layer.
    """

    max_concurrency: int = 8
    queue_depth: int = 16
    queue_timeout: float = 0.25
    default_deadline: float | None = None
    breaker_failure_threshold: int = 5
    breaker_cooldown: float = 0.5
    breaker_probes: int = 1
    breaker_successes: int = 1
    retry_attempts: int = 2
    retry_backoff: float = 0.002
    retry_jitter: float = 0.5
    memo_capacity: int = 1024
    defense: DefenseConfig | None = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if self.queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.queue_timeout < 0:
            raise ValueError(f"queue_timeout must be >= 0, got {self.queue_timeout}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0, got {self.default_deadline}"
            )
        if self.retry_attempts < 0:
            raise ValueError(f"retry_attempts must be >= 0, got {self.retry_attempts}")
        if self.memo_capacity < 0:
            raise ValueError(f"memo_capacity must be >= 0, got {self.memo_capacity}")


class _QueryMemo:
    """Bounded LRU memo of fully-served query results, epoch-keyed.

    Keys are ``(epoch_id, query_id, top_k, omega_served, deadline_class)``;
    values are finished :class:`Recommendations`.  Only *clean* results
    belong here — the gateway never inserts partial or degraded rankings,
    and :meth:`invalidate` drops everything at each epoch publication, so
    a hit is always the exact answer the scan would recompute.  All
    operations take one small lock; a hit is a dict move-to-end, which is
    what makes repeated heavy-hitter queries O(1).
    """

    __slots__ = ("_capacity", "_entries", "_lock")

    def __init__(self, capacity: int) -> None:
        self._capacity = int(capacity)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple):
        """The memoized result for *key* (refreshing LRU), or ``None``."""
        if self._capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def contains(self, key: tuple) -> bool:
        """Residency peek (no LRU refresh) — hot-key admission priority."""
        if self._capacity == 0:
            return False
        with self._lock:
            return key in self._entries

    def put(self, key: tuple, value, metrics) -> None:
        """Insert *value*; evicts the least-recently-used entry when full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key not in self._entries and len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
                metrics.inc("repro_serving_memo_evict_total")
            self._entries[key] = value
            self._entries.move_to_end(key)

    def invalidate(self, metrics=None) -> None:
        """Drop every entry (called at each epoch publication).

        Counts the dropped entries into
        ``repro_serving_memo_invalidate_total`` so the memo's ledger
        reconciles: puts = hits' source entries = evictions +
        invalidations + entries still resident.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        if dropped and metrics is not None:
            metrics.inc("repro_serving_memo_invalidate_total", dropped)


class _AdmissionGate:
    """Condition-variable admission control: bounded concurrency + queue.

    Factored out of the gateway so the sharded gateway reuses one global
    gate over its whole scatter (admission is per *request*, not per
    shard).  Beyond *max_concurrency* in-flight requests, up to
    *queue_depth* wait (no longer than *queue_timeout* or their own
    deadline); everything else is shed with
    :class:`~repro.errors.OverloadedError`.
    """

    #: EWMA smoothing of the per-query service time feeding the
    #: ``retry_after_ms`` shed hint (higher = reacts faster to load shifts).
    SERVICE_EWMA_ALPHA = 0.2
    #: Hint fallback before any query has completed (seconds).
    DEFAULT_SERVICE_TIME = 0.05

    def __init__(
        self,
        max_concurrency: int,
        queue_depth: int,
        queue_timeout: float,
        hot_priority: bool = False,
    ) -> None:
        self._max_concurrency = max_concurrency
        self._queue_depth = queue_depth
        self._queue_timeout = queue_timeout
        #: Skew-aware shedding (defense layer): a *hot* request — one
        #: whose answer is already memoized, so admitting it costs a
        #: dict lookup, not a scan — is admitted ahead of queued cold
        #: scans when the gate is backlogged.
        self._hot_priority = bool(hot_priority)
        self._cond = threading.Condition(threading.Lock())
        self._inflight = 0
        self._waiting = 0
        self._waiting_hot = 0
        self._avg_service: float | None = None

    def record_service_time(self, seconds: float) -> None:
        """Fold one completed query's wall-clock into the EWMA (thread-safe)."""
        seconds = float(seconds)
        with self._cond:
            if self._avg_service is None:
                self._avg_service = seconds
            else:
                alpha = self.SERVICE_EWMA_ALPHA
                self._avg_service += alpha * (seconds - self._avg_service)

    def retry_after_ms(self) -> float:
        """Backoff hint for a shed request, in milliseconds.

        Queue-theory estimate: the shed request would sit behind the
        whole backlog (everything in flight beyond the slots it can
        claim immediately, plus everyone already queued), drained at one
        query per ``avg_service / max_concurrency`` seconds.  Computed
        under the gate lock by :meth:`admit`; callers get it on the
        raised :class:`~repro.errors.OverloadedError`.
        """
        with self._cond:
            return self._retry_after_ms_locked()

    def _retry_after_ms_locked(self) -> float:
        avg = self._avg_service
        if avg is None or avg <= 0:
            avg = self.DEFAULT_SERVICE_TIME
        backlog = max(self._inflight - self._max_concurrency, 0) + self._waiting + 1
        return max(1.0, 1000.0 * avg * backlog / self._max_concurrency)

    def admit(self, deadline_at: float | None, metrics, hot: bool = False) -> None:
        hot = hot and self._hot_priority
        with self._cond:
            if self._inflight < self._max_concurrency and (
                hot or not (self._hot_priority and self._waiting_hot)
            ):
                self._inflight += 1
                metrics.set_gauge("repro_serving_inflight", self._inflight)
                return
            if self._waiting >= self._queue_depth:
                metrics.inc("repro_serving_shed_total", reason="queue_full")
                raise OverloadedError(
                    f"{self._inflight} queries in flight and the admission "
                    f"queue of {self._queue_depth} is full",
                    retry_after_ms=self._retry_after_ms_locked(),
                )
            self._waiting += 1
            if hot:
                self._waiting_hot += 1
            metrics.set_gauge("repro_serving_queue_depth", self._waiting)
            try:
                limit = time.monotonic() + self._queue_timeout
                if deadline_at is not None:
                    limit = min(limit, deadline_at)
                # A cold scan additionally yields while hot (memo-backed)
                # requests are queued: under a flash crowd the backlog
                # drains at memo speed instead of scan speed.
                while self._inflight >= self._max_concurrency or (
                    not hot and self._waiting_hot > 0
                ):
                    remaining = limit - time.monotonic()
                    if remaining <= 0:
                        metrics.inc("repro_serving_shed_total", reason="queue_timeout")
                        raise OverloadedError(
                            "queued request outwaited its admission budget "
                            f"({self._waiting} queued, {self._inflight} in flight)",
                            retry_after_ms=self._retry_after_ms_locked(),
                        )
                    self._cond.wait(remaining)
                self._inflight += 1
                if hot:
                    metrics.inc("repro_defense_hot_admissions_total")
                metrics.set_gauge("repro_serving_inflight", self._inflight)
            finally:
                self._waiting -= 1
                if hot:
                    self._waiting_hot -= 1
                    # Cold waiters park on the hot count too; wake them
                    # whenever it drops.
                    self._cond.notify_all()
                metrics.set_gauge("repro_serving_queue_depth", self._waiting)

    def release(self, metrics, service_seconds: float | None = None) -> None:
        if service_seconds is not None:
            self.record_service_time(service_seconds)
        with self._cond:
            self._inflight -= 1
            metrics.set_gauge("repro_serving_inflight", self._inflight)
            if self._hot_priority:
                self._cond.notify_all()
            else:
                self._cond.notify()


class ServingGateway:
    """Thread-safe serving facade over a live community index.

    Parameters
    ----------
    index:
        The write master (a :class:`~repro.core.pipeline.CommunityIndex`
        or live subclass).  The gateway owns its mutation path — apply
        writes through the gateway, never directly, while serving.
    omega / social_mode / content_measure / engine:
        Recommender configuration of the served rankings (defaults follow
        the index config, ``sar-h`` social mode).
    config:
        The :class:`GatewayConfig` serving knobs.
    faults:
        Optional :class:`~repro.testing.faults.FaultPlan` threaded into
        the registered serving points (chaos tests arm failures here).
    breaker_clock:
        Clock of the circuit breaker only (injectable for deterministic
        state-machine tests); deadlines and admission always use
        ``time.monotonic`` because the scan's chunked cutoff does.
    seed:
        Seed of the retry-jitter RNG.
    """

    def __init__(
        self,
        index,
        omega: float | None = None,
        social_mode: str = "sar-h",
        content_measure: str = "kj",
        engine: str | None = None,
        config: GatewayConfig | None = None,
        faults=None,
        breaker_clock=time.monotonic,
        seed: int = 0,
    ) -> None:
        self._master = index
        self._omega = index.config.omega if omega is None else float(omega)
        self._social_mode = social_mode
        self._content_measure = content_measure
        self._engine = engine
        self.config = config or GatewayConfig()
        # fire() logs every hit into the plan; skip it entirely when no
        # plan was supplied so the shared NO_FAULTS log can't grow
        # unbounded under production query traffic.
        self._fire_faults = faults is not None
        self._faults = faults if faults is not None else NO_FAULTS
        self._write_lock = threading.RLock()
        self._epochs = EpochManager()
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown=self.config.breaker_cooldown,
            half_open_probes=self.config.breaker_probes,
            half_open_successes=self.config.breaker_successes,
            clock=breaker_clock,
            on_transition=self._on_breaker_transition,
        )
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._defense = self.config.defense or DefenseConfig()
        self._gate = _AdmissionGate(
            self.config.max_concurrency,
            self.config.queue_depth,
            self.config.queue_timeout,
            hot_priority=self._defense.hot_priority,
        )
        self._memo = _QueryMemo(self.config.memo_capacity)
        self._flights = SingleFlight() if self._defense.coalesce else None
        self._governor = (
            PublishGovernor(
                self._defense.min_publish_interval,
                self._defense.max_deferred_mutations,
            )
            if self._defense.min_publish_interval > 0
            else None
        )
        self._publish_timer: threading.Timer | None = None
        self._deferred_publish = False
        # Batched-mutation bookkeeping: inside a mutations() block the
        # per-mutation publish is deferred to the block's exit.  Both
        # fields are only touched under the writer lock.
        self._mutation_depth = 0
        self._publish_pending = False
        # The initial epoch is published fault-free: a plan arming the
        # publish point targets *mutations*, not construction.
        self._publish(fire=False)
        if self._governor is not None:
            self._governor.published()

    # ------------------------------------------------------------------
    # Epoch publication (writer side)
    # ------------------------------------------------------------------
    def _build_recommenders(self, epoch: CommunityEpoch) -> None:
        if self._content_measure == "kj" and epoch.video_ids:
            # Warm the bank's float32 scoring pack before the epoch is
            # visible: "pack once per epoch" — every reader then shares
            # the immutable pack instead of racing a lazy build.
            epoch.signature_bank().fast_pack()
        epoch.serving_recommenders = {
            "full": epoch.recommender(
                omega=self._omega,
                social_mode=self._social_mode,
                content_measure=self._content_measure,
                engine=self._engine,
            ),
            "content": epoch.recommender(
                omega=0.0,
                social_mode=self._social_mode,
                content_measure=self._content_measure,
                engine=self._engine,
            ),
        }

    def _publish(self, fire: bool = True) -> CommunityEpoch:
        if fire and self._fire_faults:
            self._faults.fire(SERVE_PUBLISH_POINT)
        # The recommenders are attached in publish()'s prepare hook, i.e.
        # before the epoch becomes visible — a reader must never pin an
        # epoch that can't serve yet.
        epoch = self._epochs.publish(self._master, prepare=self._build_recommenders)
        metrics = get_metrics()
        # Invalidate *after* the pointer swap: queries racing the publish
        # either memoized against the previous epoch (dropped here) or pin
        # the new epoch (whose results are valid to keep).
        self._memo.invalidate(metrics)
        metrics.set_gauge("repro_serving_epoch_id", epoch.epoch_id)
        metrics.set_gauge("repro_serving_epochs_live", self._epochs.live_count)
        metrics.set_gauge("repro_serving_epochs_published", self._epochs.published_total)
        metrics.set_gauge("repro_serving_epoch_videos", len(epoch.video_ids))
        return epoch

    @property
    def current_epoch(self) -> CommunityEpoch:
        """The epoch new queries pin."""
        epoch = self._epochs.current
        assert epoch is not None  # published in __init__
        return epoch

    @property
    def epochs(self) -> EpochManager:
        """The epoch lifecycle manager (refcounts, retire accounting)."""
        return self._epochs

    @property
    def breaker(self) -> CircuitBreaker:
        """The social-path circuit breaker."""
        return self._breaker

    # ------------------------------------------------------------------
    # Mutations (serialized; each publishes a fresh epoch)
    # ------------------------------------------------------------------
    def _maybe_publish(self) -> None:
        """Publish now, or mark pending inside a :meth:`mutations` block.

        With a :class:`~repro.defense.backpressure.PublishGovernor` armed
        (``defense.min_publish_interval > 0``), a mutation landing inside
        the minimum interval applies to the master immediately but defers
        the publication; a one-shot timer flushes it when the interval
        elapses, so a retire storm builds a bounded number of epochs and
        the memo/response caches stop thrashing per mutation.
        """
        if self._mutation_depth:
            self._publish_pending = True
            return
        if self._governor is not None and self._governor.should_defer():
            self._deferred_publish = True
            get_metrics().inc("repro_defense_deferred_publishes_total")
            self._arm_publish_timer()
            return
        self._publish_governed()

    def _publish_governed(self) -> None:
        """Publish now; folds any deferred publication into this one."""
        self._deferred_publish = False
        self._publish()
        if self._governor is not None:
            self._governor.published()

    def _arm_publish_timer(self) -> None:
        """Arm the deferred-publication flush (under the writer lock)."""
        if self._publish_timer is not None:
            return
        delay = max(self._governor.delay_remaining(), 1e-4)
        timer = threading.Timer(delay, self._flush_deferred_publish)
        timer.daemon = True
        self._publish_timer = timer
        timer.start()

    def _flush_deferred_publish(self) -> None:
        with self._write_lock:
            self._publish_timer = None
            if not self._deferred_publish or self._mutation_depth:
                return
            if self._governor.delay_remaining() > 0:
                # A direct publication restarted the interval after this
                # timer was armed; re-arm for the remainder.
                self._arm_publish_timer()
                return
            self._publish_governed()

    @contextmanager
    def mutations(self):
        """Batch several mutations into **one** epoch publication.

        ``with gateway.mutations(): ...`` holds the writer lock for the
        whole block and defers the per-mutation epoch publish to the
        block's exit, so a bulk ingest of V videos builds one epoch
        instead of V.  Readers keep serving the pre-block epoch until the
        single publish lands — the same visibility model as one large
        mutation.  Blocks nest (the outermost exit publishes); the
        deferred publish also runs when the block exits via an exception,
        since every mutation already applied to the master.
        """
        with self._write_lock:
            self._mutation_depth += 1
            try:
                yield self
            finally:
                self._mutation_depth -= 1
                if self._mutation_depth == 0 and self._publish_pending:
                    self._publish_pending = False
                    self._maybe_publish()

    def ingest_video(self, clip_or_record, owner=None, users=()) -> str:
        """Serialized :meth:`LiveCommunityIndex.ingest_video` + publish."""
        with self._write_lock:
            video_id = self._master.ingest_video(clip_or_record, owner, users)
            self._maybe_publish()
            return video_id

    def retire_video(self, video_id: str) -> None:
        """Serialized :meth:`LiveCommunityIndex.retire_video` + publish."""
        with self._write_lock:
            self._master.retire_video(video_id)
            self._maybe_publish()

    def apply_comments(self, comments, incremental: bool = False):
        """Serialized :meth:`LiveCommunityIndex.apply_comments` + publish."""
        with self._write_lock:
            stats = self._master.apply_comments(comments, incremental=incremental)
            self._maybe_publish()
            return stats

    def remove_comments(self, comments) -> int:
        """Serialized spam revocation (un-apply memberships) + publish."""
        with self._write_lock:
            removed = self._master.remove_comments(comments)
            self._maybe_publish()
            return removed

    def advance_watermark(self, month: int) -> int:
        """Serialized watermark advance + publish."""
        with self._write_lock:
            month = self._master.advance_watermark(month)
            self._maybe_publish()
            return month

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self, deadline_at: float | None, metrics, hot: bool = False) -> None:
        self._gate.admit(deadline_at, metrics, hot=hot)

    def _release(self, metrics, service_seconds: float | None = None) -> None:
        self._gate.release(metrics, service_seconds)

    # ------------------------------------------------------------------
    # Social path: breaker + retry/backoff
    # ------------------------------------------------------------------
    def _on_breaker_transition(self, old: str, new: str) -> None:
        metrics = get_metrics()
        metrics.inc("repro_serving_breaker_transitions_total", to=new)
        metrics.set_gauge("repro_serving_breaker_state", STATE_CODES[new])

    def _jitter(self) -> float:
        with self._rng_lock:
            return self._rng.random()

    def _social_path(self, deadline_at: float | None, metrics) -> str | None:
        """Attempt the social dependency; ``None`` on success, else the
        degradation reason the ranking must carry."""
        if not self._breaker.allow():
            metrics.inc("repro_serving_breaker_short_circuit_total")
            return (
                "social path circuit breaker open; serving content-only ranking"
            )
        cfg = self.config
        attempt = 0
        while True:
            try:
                if self._fire_faults:
                    self._faults.fire(SERVE_SOCIAL_POINT)
            except InjectedFaultError as error:
                metrics.inc("repro_serving_social_failures_total", kind="transient")
                attempt += 1
                if attempt <= cfg.retry_attempts:
                    delay = cfg.retry_backoff * (2 ** (attempt - 1))
                    delay *= 1.0 + cfg.retry_jitter * self._jitter()
                    if deadline_at is None or time.monotonic() + delay < deadline_at:
                        metrics.inc("repro_serving_retries_total")
                        time.sleep(delay)
                        continue
                self._breaker.record_failure()
                return f"social path failing ({error}); serving content-only ranking"
            except InjectedCrashError as error:
                # Non-transient fault class: no retry, straight to the
                # breaker ledger.
                metrics.inc("repro_serving_social_failures_total", kind="fatal")
                self._breaker.record_failure()
                return f"social path failed ({error}); serving content-only ranking"
            else:
                self._breaker.record_success()
                return None

    # ------------------------------------------------------------------
    # Queries (reader side)
    # ------------------------------------------------------------------
    def recommend(
        self,
        query_id: str,
        top_k: int = 10,
        deadline: float | None = None,
        trace=None,
    ) -> Recommendations:
        """Top-K recommendations from an immutable epoch view.

        *deadline* is in **seconds from now** (defaults to the config's
        ``default_deadline``); it bounds admission waiting *and* the
        candidate scan.  The result is a
        :class:`~repro.core.recommender.Recommendations` annotated with
        ``epoch_id`` / ``epoch`` (the pinned view, kept alive as long as
        the caller holds the result) and ``omega_served`` (0.0 when the
        breaker dropped the social term).  Raises
        :class:`~repro.errors.OverloadedError` when admission sheds the
        request; everything else degrades instead of failing.
        """
        metrics = get_metrics()
        if deadline is None:
            deadline = self.config.default_deadline
        deadline_at = None if deadline is None else time.monotonic() + float(deadline)
        defense = self._defense
        hot = False
        flight_key = None
        if defense.coalesce or defense.hot_priority:
            # Advisory pre-admission peek at the *current* epoch (no
            # pin): the serving path recomputes everything against the
            # epoch it actually pins, so a racing publish only costs the
            # heuristic, never correctness.
            epoch = self._epochs.current
            deadline_class = "none" if deadline is None else f"{deadline:g}"
            if defense.hot_priority:
                hot = self._memo.contains(
                    (epoch.epoch_id, query_id, int(top_k), self._omega, deadline_class)
                ) or self._memo.contains(
                    (epoch.epoch_id, query_id, int(top_k), 0.0, deadline_class)
                )
            if defense.coalesce:
                flight_key = (
                    epoch.epoch_id,
                    query_id,
                    int(top_k),
                    deadline_class,
                )
        if flight_key is not None:
            leader, flight = self._flights.begin(flight_key)
            if not leader:
                # Followers park *before* admission: the whole duplicate
                # crowd consumes one queue slot (the leader's) and one
                # scan.  A leader error (e.g. OverloadedError) propagates
                # to the flock — one shed sheds the crowd.
                budget = defense.coalesce_wait
                if deadline_at is not None:
                    budget = min(budget, max(0.001, deadline_at - time.monotonic()))
                outcome = self._flights.wait(flight, budget)
                if outcome is not TIMEOUT:
                    metrics.inc("repro_defense_coalesced_followers_total")
                    result = outcome.copy()
                    result.epoch_id = outcome.epoch_id
                    result.epoch = outcome.epoch
                    result.omega_served = outcome.omega_served
                    result.coalesced = True
                    metrics.inc("repro_serving_queries_total")
                    return result
                # Leader outlived this follower's budget: fall back to
                # the full serving path (correctness never waits).
                metrics.inc("repro_defense_coalesce_timeouts_total")
                return self._serve(query_id, top_k, deadline, deadline_at, trace, metrics, hot)
            metrics.inc("repro_defense_coalesce_leaders_total")
            try:
                result = self._serve(
                    query_id, top_k, deadline, deadline_at, trace, metrics, hot
                )
            except BaseException as error:
                self._flights.finish(flight_key, flight, error=error)
                raise
            self._flights.finish(flight_key, flight, result=result)
            return result
        return self._serve(query_id, top_k, deadline, deadline_at, trace, metrics, hot)

    def _serve(
        self,
        query_id: str,
        top_k: int,
        deadline: float | None,
        deadline_at: float | None,
        trace,
        metrics,
        hot: bool = False,
    ) -> Recommendations:
        """The admitted serving path (see :meth:`recommend`)."""
        self._admit(deadline_at, metrics, hot=hot)
        admitted_at = time.monotonic()
        try:
            with metrics.time("repro_serving_latency_seconds"):
                epoch = self._epochs.pin()
                try:
                    metrics.set_gauge(
                        "repro_serving_epoch_age_seconds", self._epochs.current_age()
                    )
                    reason = None
                    if self._omega > 0.0 and epoch.social_store.available:
                        reason = self._social_path(deadline_at, metrics)
                    which = "content" if reason is not None else "full"
                    omega_served = 0.0 if reason is not None else self._omega
                    # Memo key: everything that determines the ranking on a
                    # fixed epoch.  The deadline *class* (not the absolute
                    # monotonic instant) keys it, so repeated queries with
                    # the same budget share an entry.
                    memo_key = (
                        epoch.epoch_id,
                        query_id,
                        int(top_k),
                        omega_served,
                        "none" if deadline is None else f"{deadline:g}",
                    )
                    cached = self._memo.get(memo_key)
                    if cached is not None:
                        metrics.inc("repro_serving_memo_hit_total")
                        result = cached.copy()
                        result.epoch_id = epoch.epoch_id
                        result.epoch = epoch
                        result.omega_served = omega_served
                        metrics.inc("repro_serving_queries_total")
                        return result
                    metrics.inc("repro_serving_memo_miss_total")
                    recommender: FusionRecommender = epoch.serving_recommenders[which]
                    result = recommender.recommend(
                        query_id, top_k, trace=trace, deadline=deadline_at
                    )
                    if reason is not None:
                        result = Recommendations(
                            result,
                            degraded=True,
                            partial=result.partial,
                            reasons=(*result.reasons, reason),
                            scored=result.scored,
                            total=result.total,
                            scores=getattr(result, "scores", None),
                        )
                    elif not result.partial and not result.degraded:
                        # Only clean full-scan rankings are memoized: a
                        # partial or degraded answer must never shadow the
                        # real one on the next identical query.
                        self._memo.put(memo_key, result.copy(), metrics)
                    result.epoch_id = epoch.epoch_id
                    result.epoch = epoch
                    result.omega_served = omega_served
                    metrics.inc("repro_serving_queries_total")
                    if result.degraded:
                        metrics.inc("repro_serving_degraded_total")
                    if result.partial:
                        metrics.inc("repro_serving_deadline_miss_total")
                    return result
                finally:
                    self._epochs.unpin(epoch)
                    metrics.set_gauge(
                        "repro_serving_epochs_live", self._epochs.live_count
                    )
        finally:
            # The fold into the retry_after_ms EWMA deliberately includes
            # memo hits — the hint models the *observed* service rate.
            self._release(metrics, time.monotonic() - admitted_at)
