"""Circuit breaker for the serving gateway's social path.

Classic three-state machine, deterministic under an injectable clock:

* **closed** — calls flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open;
* **open** — calls are refused outright (the gateway serves content-only
  degraded rankings instead) until ``cooldown`` seconds have passed;
* **half-open** — after the cooldown, up to ``half_open_probes`` calls
  are admitted as probes.  ``half_open_successes`` consecutive probe
  successes close the breaker; any probe failure re-opens it (and
  restarts the cooldown).

All transitions happen inside :meth:`allow` / :meth:`record_success` /
:meth:`record_failure` under one lock, so concurrent reader threads see
a consistent machine; the optional ``on_transition`` hook (the gateway
wires metrics into it) is invoked outside the decision's hot path but
still under the lock, keeping the observed transition order exact.
"""

from __future__ import annotations

import random
import threading
import time

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric gauge encoding of the states (stable, documented in DESIGN).
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Thread-safe three-state circuit breaker with an injectable clock.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    cooldown:
        Seconds the breaker stays open before admitting probes.
    half_open_probes:
        Probe calls admitted concurrently while half-open.
    half_open_successes:
        Consecutive probe successes required to close again.
    clock:
        Monotonic clock (injectable for deterministic tests).
    on_transition:
        ``callback(old_state, new_state)`` invoked on every transition.
    reopen_jitter:
        Jitter fraction on the cooldown after a *failed half-open
        trial*: the re-opened breaker waits ``cooldown * (1 + U[0,
        reopen_jitter))`` before probing again, so a fleet of breakers
        tripped by one shared dependency outage doesn't re-probe it in
        lockstep (thundering-herd on recovery).  0 (the default) keeps
        the fixed cooldown.
    seed:
        Seed of the jitter RNG (deterministic tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        half_open_probes: int = 1,
        half_open_successes: int = 1,
        clock=time.monotonic,
        on_transition=None,
        reopen_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        if half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        if reopen_jitter < 0:
            raise ValueError(f"reopen_jitter must be >= 0, got {reopen_jitter}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.reopen_jitter = reopen_jitter
        self._rng = random.Random(seed)
        #: The cooldown governing the *current* open period; re-opens
        #: after a failed trial stretch it by the jitter draw.
        self._current_cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.half_open_successes = half_open_successes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._probes_in_flight = 0
        self._opened_at = 0.0
        self.transitions: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state name (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            return self._state

    @property
    def state_code(self) -> int:
        """Gauge encoding: closed=0, open=1, half-open=2."""
        return STATE_CODES[self.state]

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        self.transitions.append((old, new_state))
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether this call may attempt the protected dependency.

        While open, flips to half-open once the cooldown has elapsed and
        admits up to ``half_open_probes`` concurrent probe calls.  Every
        admitted call **must** be followed by exactly one
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self._current_cooldown:
                    return False
                self._transition(HALF_OPEN)
                self._probe_successes = 0
                self._probes_in_flight = 0
            # Half-open: admit a bounded number of concurrent probes.
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        """Report a successful dependency call."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self._transition(CLOSED)
                    self._failures = 0
            else:
                self._failures = 0

    def record_failure(self) -> None:
        """Report a failed dependency call."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._transition(OPEN)
                self._opened_at = self._clock()
                # Failed trial: back off with jitter so breakers tripped
                # by one shared outage don't re-probe it in lockstep.
                self._current_cooldown = self.cooldown * (
                    1.0 + self.reopen_jitter * self._rng.random()
                )
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._transition(OPEN)
                    self._opened_at = self._clock()
                    self._current_cooldown = self.cooldown
            # Already open: a late failure report changes nothing.
