"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

The paper's efficiency story (Fig. 6 ``KTopScoreVideoSearch``, Fig. 12
SAR/update costs) is about *where time goes* per query — which this repo
could not answer without ad-hoc bench footers.  :class:`MetricsRegistry`
is the aggregation side of the answer (the per-query side is
:mod:`repro.obs.trace`):

* **Counters** — monotonically increasing totals (queries served, WAL
  appends, sub-community unions);
* **Gauges** — last-write-wins levels (indexed videos, watermark month);
* **Histograms** — fixed-bucket latency distributions with cumulative
  bucket counts, Prometheus-style (``le`` upper bounds, ``_sum`` and
  ``_count`` series).

Everything is deterministic by construction: bucket bounds are fixed at
registration, series render in sorted order, and the clock used by
:meth:`MetricsRegistry.time` is injectable — two identical seeded runs
under an injected clock produce byte-identical expositions, which the
golden-file test pins.

The registry renders to a Prometheus text exposition
(:meth:`MetricsRegistry.to_prometheus`) and to a plain-dict
:meth:`~MetricsRegistry.snapshot` (JSON-ready);
:func:`parse_prometheus` inverts the exposition, and
``snapshot == parse_prometheus(to_prometheus())`` holds exactly.

A process-wide default registry (:func:`get_metrics` /
:func:`set_metrics` / :func:`use_metrics`) lets the serve and ingest
paths record without threading a registry argument everywhere; a
disabled registry (``enabled=False``) turns every recording call into an
early return, so instrumentation can be switched off wholesale — the
``bench_obs_overhead`` bench pins the enabled-vs-disabled cost.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager, nullcontext

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "parse_prometheus",
    "render_prometheus",
    "percentiles",
]

#: Default histogram bucket upper bounds (seconds).  Spans sub-millisecond
#: batch-engine queries up to multi-second cold rebuilds.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_INF = float("inf")


def _format_value(value: float) -> str:
    """Render a sample value so that ``float(rendered)`` round-trips."""
    value = float(value)
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _normalize(value: float) -> float | int:
    """Ints stay ints in snapshots (JSON dumps read naturally)."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return int(value)
    return value


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


#: Rendered series keys, memoized — hot-path recorders re-emit the same
#: few (name, labels) shapes every query, so the string build runs once
#: per distinct series instead of per sample.  Bounded defensively; the
#: hit path is a plain dict probe (thread-safe under the GIL).
_KEY_CACHE: dict[tuple, str] = {}
_KEY_CACHE_MAX = 8192


def _series_key(name: str, labels: dict[str, str]) -> str:
    """The canonical ``name{k="v",...}`` series identity (sorted labels)."""
    if not labels:
        return name
    try:
        cache_key = (name, *labels.items())
        key = _KEY_CACHE.get(cache_key)
    except TypeError:  # unhashable label value — render uncached
        cache_key = None
        key = None
    if key is None:
        inner = ",".join(
            f'{label}="{_escape_label(str(value))}"'
            for label, value in sorted(labels.items())
        )
        key = f"{name}{{{inner}}}"
        if cache_key is not None and len(_KEY_CACHE) < _KEY_CACHE_MAX:
            _KEY_CACHE[cache_key] = key
    return key


class _Histogram:
    """Cumulative fixed-bucket histogram (one labelled series)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # First bound >= value; past the end lands in the +Inf slot.
        slot = bisect.bisect_left(self.bounds, value)
        self.counts[slot] += 1
        self.sum += value
        self.count += 1

    def as_dict(self) -> dict:
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            buckets[_format_value(bound)] = cumulative
        buckets["+Inf"] = self.count
        return {"buckets": buckets, "sum": _normalize(self.sum), "count": self.count}


class MetricsRegistry:
    """Deterministic in-process metrics with an injectable clock.

    Parameters
    ----------
    enabled:
        ``False`` turns every recording call into an early return — the
        switch the overhead bench compares against.
    clock:
        The monotonic clock :meth:`time` reads; inject a fake for
        deterministic latency histograms in tests.
    buckets:
        Default histogram bucket upper bounds (seconds).

    All mutation is lock-protected, so worker threads may record freely.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock=time.perf_counter,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Add *value* (default 1) to a counter series."""
        if not self.enabled:
            return
        if value < 0:
            raise ValueError(f"counter increments must be >= 0, got {value}")
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge series to *value* (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[_series_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one sample into a histogram series."""
        if not self.enabled:
            return
        key = _series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(self.buckets)
            histogram.observe(value)

    def time(self, name: str, **labels: str):
        """Context manager observing the block's duration into *name*."""
        if not self.enabled:
            return nullcontext()
        return self._timed(name, labels)

    @contextmanager
    def _timed(self, name: str, labels: dict[str, str]):
        started = self.clock()
        try:
            yield
        finally:
            self.observe(name, self.clock() - started, **labels)

    def reset(self) -> None:
        """Drop every recorded series (bucket config is kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter or gauge series (0 when absent)."""
        key = _series_key(name, labels)
        with self._lock:
            if key in self._counters:
                return _normalize(self._counters[key])
            return _normalize(self._gauges.get(key, 0.0))

    def snapshot(self) -> dict:
        """Plain-dict (JSON-ready) view of every series, sorted keys."""
        with self._lock:
            return {
                "counters": {
                    key: _normalize(value)
                    for key, value in sorted(self._counters.items())
                },
                "gauges": {
                    key: _normalize(value)
                    for key, value in sorted(self._gauges.items())
                },
                "histograms": {
                    key: histogram.as_dict()
                    for key, histogram in sorted(self._histograms.items())
                },
            }

    def to_prometheus(self) -> str:
        """Prometheus text exposition of :meth:`snapshot`.

        One ``# TYPE`` line per metric family (first appearance in sorted
        series order), histogram series expanded into ``_bucket`` /
        ``_sum`` / ``_count``.  ``parse_prometheus`` inverts this exactly.
        """
        return render_prometheus(self.snapshot())


def _split_series_key(key: str) -> tuple[str, str]:
    """``name{labels}`` -> ``(name, "labels")`` (labels may be empty)."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace + 1 : -1]


def _with_label(labels_text: str, extra: str) -> str:
    """Append one rendered label pair to a rendered label body."""
    return f"{labels_text},{extra}" if labels_text else extra


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text exposition."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(family: str, kind: str) -> None:
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        family, _ = _split_series_key(key)
        type_line(family, "counter")
        lines.append(f"{key} {_format_value(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        family, _ = _split_series_key(key)
        type_line(family, "gauge")
        lines.append(f"{key} {_format_value(value)}")
    for key, data in snapshot.get("histograms", {}).items():
        family, labels_text = _split_series_key(key)
        type_line(family, "histogram")
        for bound, count in data["buckets"].items():
            bucket_labels = _with_label(labels_text, f'le="{bound}"')
            lines.append(f"{family}_bucket{{{bucket_labels}}} {_format_value(count)}")
        suffix = f"{{{labels_text}}}" if labels_text else ""
        lines.append(f"{family}_sum{suffix} {_format_value(data['sum'])}")
        lines.append(f"{family}_count{suffix} {_format_value(data['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    position = 0
    length = len(text)
    while position < length:
        equals = text.index("=", position)
        key = text[position:equals]
        if text[equals + 1] != '"':
            raise ValueError(f"malformed label value in {text!r}")
        cursor = equals + 2
        buffer: list[str] = []
        while text[cursor] != '"':
            if text[cursor] == "\\":
                cursor += 1
                buffer.append({"n": "\n", "\\": "\\", '"': '"'}.get(text[cursor], text[cursor]))
            else:
                buffer.append(text[cursor])
            cursor += 1
        labels[key] = "".join(buffer)
        position = cursor + 1
        if position < length and text[position] == ",":
            position += 1
    return labels


def parse_prometheus(text: str) -> dict:
    """Parse a text exposition back into the :meth:`snapshot` dict shape.

    Supports exactly the subset :func:`render_prometheus` emits (counter,
    gauge and histogram families with optional labels), which is what the
    round-trip contract requires — ``parse_prometheus(render(s)) == s``.
    """
    kinds: dict[str, str] = {}
    counters: dict[str, float | int] = {}
    gauges: dict[str, float | int] = {}
    histograms: dict[str, dict] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            kinds[family] = kind
            continue
        if line.startswith("#"):
            continue
        series, _, value_text = line.rpartition(" ")
        value = float(value_text)
        name, labels_text = _split_series_key(series)
        labels = _parse_labels(labels_text) if labels_text else {}
        if name.endswith("_bucket") and kinds.get(name[: -len("_bucket")]) == "histogram":
            family = name[: -len("_bucket")]
            bound = labels.pop("le")
            key = _series_key(family, labels)
            entry = histograms.setdefault(
                key, {"buckets": {}, "sum": 0, "count": 0}
            )
            entry["buckets"][bound] = _normalize(value)
        elif name.endswith("_sum") and kinds.get(name[: -len("_sum")]) == "histogram":
            key = _series_key(name[: -len("_sum")], labels)
            histograms.setdefault(key, {"buckets": {}, "sum": 0, "count": 0})["sum"] = (
                _normalize(value)
            )
        elif name.endswith("_count") and kinds.get(name[: -len("_count")]) == "histogram":
            key = _series_key(name[: -len("_count")], labels)
            histograms.setdefault(key, {"buckets": {}, "sum": 0, "count": 0})[
                "count"
            ] = _normalize(value)
        elif kinds.get(name) == "gauge":
            gauges[series] = _normalize(value)
        else:
            counters[series] = _normalize(value)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def percentiles(
    values, points: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[str, float]:
    """Nearest-rank percentiles of *values* as ``{"p50": ...}`` (empty-safe)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return {f"p{point:g}": 0.0 for point in points}
    result = {}
    for point in points:
        rank = max(1, -(-len(ordered) * point // 100))  # ceil without math
        result[f"p{point:g}"] = ordered[min(len(ordered), int(rank)) - 1]
    return result


#: The process-wide default registry the serve/ingest paths record into.
_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The current process-wide registry."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Scoped :func:`set_metrics` (restores the previous registry)."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
