"""Per-query span trees: where one ``recommend`` call spent its time.

:class:`QueryTrace` is the per-query companion of
:class:`~repro.obs.metrics.MetricsRegistry`'s aggregates — one trace per
query, a tree of named spans per trace.  Spans with the same name under
the same parent **aggregate** (seconds and hit count accumulate), so the
time-budgeted scan's per-chunk scoring collapses into one
``content_scores`` / ``social_scores`` node per query instead of one node
per chunk.

Usage::

    trace = QueryTrace("recommend")
    recommender.recommend(video_id, 10, trace=trace)
    print(trace.format_tree())

which prints the Fig.-6-style breakdown::

    recommend                 1.842 ms 100.0%
      candidates              0.011 ms   0.6%  x1
      content_scores          1.433 ms  77.8%  x1
      social_scores           0.262 ms  14.2%  x1
      fuse_topk               0.119 ms   6.5%  x1

The shared :data:`NULL_TRACE` sentinel makes instrumented code branch-free:
its spans are no-ops that never read the clock, so the untraced hot path
pays nothing for the tracing seams.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

__all__ = ["SpanNode", "QueryTrace", "NULL_TRACE"]


class SpanNode:
    """One named node of the span tree (aggregated over repeat entries)."""

    __slots__ = ("name", "seconds", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.count = 0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """The child span named *name* (created on first use)."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) view of this subtree."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "count": self.count,
            "children": [child.as_dict() for child in self.children.values()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanNode({self.name!r}, seconds={self.seconds:.6f}, "
            f"count={self.count}, children={list(self.children)})"
        )


class _Span:
    """Context manager timing one entry into a :class:`SpanNode`."""

    __slots__ = ("_trace", "_node", "_started")

    def __init__(self, trace: "QueryTrace", node: SpanNode) -> None:
        self._trace = trace
        self._node = node

    def __enter__(self) -> SpanNode:
        self._trace._stack.append(self._node)
        self._started = self._trace._clock()
        return self._node

    def __exit__(self, *exc_info) -> None:
        self._node.seconds += self._trace._clock() - self._started
        self._node.count += 1
        self._trace._stack.pop()


class QueryTrace:
    """A span tree over one (or several aggregated) queries.

    Enter the trace itself to time the root; open children with
    :meth:`span`, which nests under whichever span is currently open.
    The clock is injectable for deterministic tests.
    """

    def __init__(self, name: str = "recommend", clock=time.perf_counter) -> None:
        self.root = SpanNode(name)
        self._clock = clock
        self._stack: list[SpanNode] = [self.root]
        self._root_started: float | None = None

    def span(self, name: str) -> _Span:
        """A context manager timing one *name* span under the open span."""
        return _Span(self, self._stack[-1].child(name))

    def __enter__(self) -> "QueryTrace":
        self._root_started = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._root_started is not None:
            self.root.seconds += self._clock() - self._root_started
            self.root.count += 1
            self._root_started = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Total time under the root span."""
        return self.root.seconds

    def stage_seconds(self) -> dict[str, float]:
        """``stage -> seconds`` for the root's direct children."""
        return {name: node.seconds for name, node in self.root.children.items()}

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) view of the whole tree."""
        return self.root.as_dict()

    def format_tree(self) -> str:
        """The indented per-stage breakdown (ms and % of the root)."""
        total = self.root.seconds
        if total <= 0.0:
            total = sum(node.seconds for node in self.root.children.values())
        lines: list[str] = []

        def walk(node: SpanNode, depth: int) -> None:
            share = 100.0 * node.seconds / total if total > 0 else 0.0
            label = "  " * depth + node.name
            line = f"{label:<26} {node.seconds * 1000.0:>9.3f} ms {share:>5.1f}%"
            if depth:
                line += f"  x{node.count}"
            lines.append(line)
            for child in node.children.values():
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


class _NullTrace:
    """Shared no-op trace: zero clock reads on the untraced hot path."""

    __slots__ = ()
    _NULL_SPAN = nullcontext()

    def span(self, name: str):
        return self._NULL_SPAN

    def __enter__(self) -> "_NullTrace":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


#: Branch-free sentinel for "no tracing requested".
NULL_TRACE = _NullTrace()
