"""Observability: deterministic metrics and per-query span traces.

The subsystem the ROADMAP's production north-star still lacked after perf
(PR 1), live stores (PR 2) and durability (PR 3): component-level
measurement of the serve and ingest paths, zero-dependency and
deterministic under an injected clock.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms), Prometheus text exposition + parser, the
  process-wide registry (:func:`get_metrics` et al.);
* :mod:`repro.obs.trace` — :class:`QueryTrace` span trees for per-stage
  ``recommend`` breakdowns (Fig. 6's "where does a query spend time").

This package imports nothing from the rest of ``repro``, so every layer
(core, io, social, evaluation, cli, benchmarks) may instrument itself
without dependency cycles.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_metrics,
    parse_prometheus,
    percentiles,
    render_prometheus,
    set_metrics,
    use_metrics,
)
from repro.obs.trace import NULL_TRACE, QueryTrace, SpanNode

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACE",
    "QueryTrace",
    "SpanNode",
    "get_metrics",
    "parse_prometheus",
    "percentiles",
    "render_prometheus",
    "set_metrics",
    "use_metrics",
]
