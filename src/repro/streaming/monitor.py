"""Online near-duplicate monitoring over a frame stream.

The cuboid-signature substrate the paper builds on was introduced for
*monitoring near duplicates over video streams* (its reference [35]).
This module provides that online setting as an extension: a
:class:`StreamMonitor` watches an unbounded frame stream, segments it at
cuts on the fly, extracts cuboid signatures per closed segment, probes an
LSB index of reference videos, and raises an alert once a reference has
accumulated enough matched segments.

Typical use: a sharing community screening uploads against a catalogue of
known (e.g. copyrighted) clips without ever buffering the whole upload.

Scope: per-segment signature matching reliably catches *replays* and
*photometric* variants (brightness / re-encoding), whose cuboid values
are invariant.  Heavy spatio-temporal edits shift segment boundaries and
keyframe spacing, which dilutes per-segment SimC below what separates a
true variant from background — those cases belong to the offline κJ path
over whole signature series, where the set-level aggregation recovers
them (the paper's Figure 7 setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.emd.embedding import EmdEmbedding
from repro.index.lsb import LsbIndex
from repro.measures.content import sim_c
from repro.signatures.cuboid import CuboidSignature, signature_from_qgram
from repro.signatures.series import SignatureSeries
from repro.video.frame import frame_difference

__all__ = ["DuplicateAlert", "ReferenceCatalogue", "StreamMonitor"]


@dataclass(frozen=True)
class DuplicateAlert:
    """A reference video matched by the live stream.

    Attributes
    ----------
    reference_id:
        The matched catalogue video.
    frame_position:
        Stream frame index at which the alert fired.
    matched_segments:
        Number of stream segments that matched this reference so far.
    score:
        Accumulated SimC evidence over the matched segments.
    """

    reference_id: str
    frame_position: int
    matched_segments: int
    score: float


class ReferenceCatalogue:
    """An LSB-indexed catalogue of reference signature series."""

    def __init__(
        self,
        embedding: EmdEmbedding | None = None,
        lsh_seed: int = 11,
    ) -> None:
        self._embedding = embedding or EmdEmbedding(lo=-64.0, hi=64.0, resolution=64)
        self._lsb = LsbIndex(self._embedding, seed=lsh_seed)
        self._sizes: dict[str, int] = {}

    def add(self, series: SignatureSeries) -> None:
        """Index every signature of a reference video."""
        if series.video_id in self._sizes:
            raise ValueError(f"reference {series.video_id!r} already indexed")
        for position, signature in enumerate(series):
            self._lsb.insert(series.video_id, position, signature)
        self._sizes[series.video_id] = len(series)

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, video_id: str) -> bool:
        return video_id in self._sizes

    def size_of(self, video_id: str) -> int:
        """Number of indexed signatures of *video_id*."""
        return self._sizes[video_id]

    def probe(self, signature: CuboidSignature, budget: int = 16):
        """LSB candidates for one stream signature."""
        return self._lsb.probe(signature, budget)


class StreamMonitor:
    """Segment an unbounded frame stream and match it against a catalogue.

    Parameters
    ----------
    catalogue:
        The reference videos to screen against.
    grid, merge_threshold, q:
        Cuboid signature parameters (match the catalogue's extraction!).
    cut_threshold:
        Absolute mean-difference threshold closing a segment (streaming
        cannot use the offline median heuristic — no lookahead).
    max_segment_frames:
        Segments are force-closed at this length so evidence keeps
        flowing through long static shots.
    min_similarity:
        SimC floor for a probe hit to count as a matched segment.
    alert_evidence:
        Accumulated SimC mass needed before alerting on a reference.
    probe_budget:
        LSB candidates pulled per stream signature.
    """

    def __init__(
        self,
        catalogue: ReferenceCatalogue,
        grid: int = 8,
        merge_threshold: float = 6.0,
        q: int = 2,
        keyframes_per_segment: int = 3,
        cut_threshold: float = 12.0,
        max_segment_frames: int = 24,
        min_similarity: float = 0.7,
        alert_evidence: float = 2.0,
        probe_budget: int = 16,
    ) -> None:
        if max_segment_frames < 2:
            raise ValueError("max_segment_frames must be >= 2")
        if not 0.0 < min_similarity <= 1.0:
            raise ValueError("min_similarity must be in (0, 1]")
        if alert_evidence <= 0:
            raise ValueError("alert_evidence must be positive")
        if keyframes_per_segment < q:
            raise ValueError("keyframes_per_segment must be >= q")
        self._catalogue = catalogue
        self._grid = grid
        self._merge_threshold = merge_threshold
        self._q = q
        self._keyframes = keyframes_per_segment
        self._cut_threshold = cut_threshold
        self._max_segment = max_segment_frames
        self._min_similarity = min_similarity
        self._alert_evidence = alert_evidence
        self._probe_budget = probe_budget

        self._buffer: list[np.ndarray] = []
        self._position = 0
        self._evidence: dict[str, float] = {}
        self._matches: dict[str, int] = {}
        self._alerted: set[str] = set()

    @property
    def frames_seen(self) -> int:
        """Total frames pushed so far."""
        return self._position

    def evidence(self) -> dict[str, float]:
        """Current accumulated evidence per reference (a copy)."""
        return dict(self._evidence)

    def push(self, frame: np.ndarray) -> list[DuplicateAlert]:
        """Feed one frame; returns any alerts the frame triggered."""
        alerts: list[DuplicateAlert] = []
        if self._buffer and (
            frame_difference(self._buffer[-1], frame) > self._cut_threshold
            or len(self._buffer) >= self._max_segment
        ):
            alerts.extend(self._close_segment())
        self._buffer.append(np.asarray(frame, dtype=np.float32))
        self._position += 1
        return alerts

    def finish(self) -> list[DuplicateAlert]:
        """Flush the trailing segment at end of stream."""
        return self._close_segment()

    # ------------------------------------------------------------------
    def _close_segment(self) -> list[DuplicateAlert]:
        if len(self._buffer) < self._q:
            self._buffer = []
            return []
        # Mirror the offline extractor exactly: sample keyframes_per_segment
        # keyframes evenly, group into overlapping q-grams, one signature
        # each.  (Signature values scale with keyframe spacing, so the
        # streaming and catalogue extractions must sample identically.)
        indices = np.linspace(0, len(self._buffer) - 1, self._keyframes)
        keyframes = [self._buffer[int(round(i))] for i in indices]
        self._buffer = []
        signatures = [
            signature_from_qgram(
                keyframes[i:i + self._q],
                grid=self._grid,
                merge_threshold=self._merge_threshold,
            )
            for i in range(len(keyframes) - self._q + 1)
        ]
        alerts: list[DuplicateAlert] = []
        best_per_reference: dict[str, float] = {}
        for signature in signatures:
            for _, entry in self._catalogue.probe(signature, self._probe_budget):
                similarity = sim_c(signature, entry.signature)
                if similarity < self._min_similarity:
                    continue
                previous = best_per_reference.get(entry.video_id, 0.0)
                best_per_reference[entry.video_id] = max(previous, similarity)
        for reference_id, similarity in best_per_reference.items():
            self._evidence[reference_id] = self._evidence.get(reference_id, 0.0) + similarity
            self._matches[reference_id] = self._matches.get(reference_id, 0) + 1
            if (
                self._evidence[reference_id] >= self._alert_evidence
                and reference_id not in self._alerted
            ):
                self._alerted.add(reference_id)
                alerts.append(
                    DuplicateAlert(
                        reference_id=reference_id,
                        frame_position=self._position,
                        matched_segments=self._matches[reference_id],
                        score=self._evidence[reference_id],
                    )
                )
        return alerts
