"""Online near-duplicate monitoring over frame streams (extension of [35])."""

from repro.streaming.monitor import DuplicateAlert, ReferenceCatalogue, StreamMonitor

__all__ = ["DuplicateAlert", "ReferenceCatalogue", "StreamMonitor"]
