"""Table 2 — the five query workload and its source-video selection.

Regenerates the paper's Table 2 (query id / description) plus the derived
workload statistics: per-query video counts and the two most-commented
source videos per query used by every effectiveness experiment.
"""

from conftest import effectiveness_workload

from repro.community import QUERY_TOPICS


def test_table2_queries_and_sources(benchmark, report):
    workload = effectiveness_workload()
    dataset = workload.dataset
    counts = dataset.comment_counts(up_to_month=11)

    lines = [f"{'query id':<9} {'query description':<16} {'videos':>7} {'sources':>20}"]
    lines.append("-" * 56)
    for topic, query in enumerate(QUERY_TOPICS):
        videos = dataset.videos_of_topic(topic)
        sources = [s for s in workload.sources if dataset.records[s].topic == topic]
        lines.append(
            f"q{topic + 1:<8} {query:<16} {len(videos):>7} {', '.join(sources):>20}"
        )
    lines.append(
        f"\ntotal: {dataset.num_videos} videos, {dataset.num_users} users, "
        f"{len(dataset.comments)} comments; "
        f"{sum(counts.values())} comments in the source year"
    )
    report("\n".join(lines))

    benchmark(lambda: dataset.comment_counts(up_to_month=11))
