"""Adversarial-workload benchmark: the defense layer under attack.

Runs the three adversarial chaos scenarios (DESIGN §16) with their
defenses armed and reports what each mechanism is accountable for:

* ``flash_crowd`` — singleflight coalescing must collapse the hot-key
  crowd's concurrent memo misses into single scans (follower count > 0)
  while oracle parity holds for every served query;
* ``spam_burst`` — the quarantine must keep the served rankings' overlap
  with the clean pre-attack oracle above a floor (1.0 = the spam left no
  trace after hold/block/revoke);
* ``retire_storm`` — the publish governor must absorb the mutation storm
  into deferred publications instead of per-mutation epoch thrash.

Every scenario also reports the recovery SLO: seconds after the attack
stands down until query p99 returns within ``recovery_factor`` of the
pre-attack baseline.  Besides the human-readable summary the run writes
``BENCH_adversarial.json`` at the repo root (the artifact CI uploads);
``--smoke --ci`` additionally fails if any scenario misses its floor in
the ``adversarial`` section of ``benchmarks/perf_floor.json``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_adversarial.py
[--smoke] [--ci]``) or under pytest (``pytest
benchmarks/bench_adversarial.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.defense import DefenseConfig
from repro.testing.chaos import SoakConfig, run_soak

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_adversarial.json"
FLOOR_PATH = REPO_ROOT / "benchmarks" / "perf_floor.json"

DEFAULT_SEED = 2015

#: Spam knobs shared by the bench scenarios: a burst of 8 comments in
#: 5 s makes a user suspect, 24 confirms, decaying to <= 2 clears.
SPAM_DEFENSE = DefenseConfig(
    quarantine=True, spam_window=5.0, spam_burst=8, spam_confirm=24, spam_clear=2
)


def _scenario_config(scenario: str, queries: int, seed: int) -> SoakConfig:
    """The bench's seeded config for one adversarial scenario.

    Readers are paced so the soak spans real wall-time: the attack
    window and the recovery tail are measured in seconds.  The attack
    occupies the early-middle of the run, leaving a long tail for the
    recovery measurement.
    """
    common = dict(
        queries=queries,
        writers=2,
        readers=8,
        seed=seed,
        hours=2.0,
        base_videos=12,
        reader_pause=0.002,
        attack_start=0.25,
        attack_end=0.55,
        recovery_window=0.1,
        scenario=scenario,
    )
    if scenario == "flash_crowd":
        return SoakConfig(
            defense=DefenseConfig(coalesce=True, hot_priority=True),
            attack_threads=6,
            attack_ops=500,
            **common,
        )
    if scenario == "spam_burst":
        return SoakConfig(
            defense=SPAM_DEFENSE,
            attack_threads=6,
            attack_ops=400,
            # No fault bursts: the rank-correlation measurement wants the
            # final recommends full-fidelity, not breaker-degraded.
            fault_burst_every=0.0,
            **common,
        )
    if scenario == "retire_storm":
        return SoakConfig(
            defense=DefenseConfig(min_publish_interval=0.05),
            attack_ops=60,
            attack_pause=0.002,
            **common,
        )
    raise ValueError(f"unknown scenario {scenario!r}")


def _counter(report, name: str) -> int:
    return int(report.metrics.get("counters", {}).get(name, 0))


def run_bench(
    queries: int = 3_000,
    seed: int = DEFAULT_SEED,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    """Run all three adversarial scenarios; return (and persist) the payload."""
    scenarios: dict[str, dict] = {}
    for scenario in ("flash_crowd", "spam_burst", "retire_storm"):
        config = _scenario_config(scenario, queries, seed)
        report = run_soak(config)
        entry = {
            "queries_served": report.queries_total,
            "attack_ops": report.attack_ops_done,
            "attack_window": report.attack_window,
            "baseline_p99_ms": report.baseline_p99_ms,
            "attack_p99_ms": report.attack_p99_ms,
            "recovery_seconds": report.recovery_seconds,
            "parity_checked": report.parity_checked,
            "parity_failures": len(report.parity_failures),
            "attack_errors": len(report.attack_errors),
            "ok": report.ok,
        }
        if scenario == "flash_crowd":
            entry["coalesce_leaders"] = _counter(
                report, "repro_defense_coalesce_leaders_total"
            )
            entry["coalesced_followers"] = _counter(
                report, "repro_defense_coalesced_followers_total"
            )
            entry["coalesce_timeouts"] = _counter(
                report, "repro_defense_coalesce_timeouts_total"
            )
        elif scenario == "spam_burst":
            entry["rank_correlation"] = report.rank_correlation
            entry["quarantine"] = report.quarantine
            entry["quarantined_comments"] = _counter(
                report, "repro_defense_quarantined_comments_total"
            )
            entry["revoked_comments"] = _counter(
                report, "repro_defense_revoked_comments_total"
            )
            entry["blocked_comments"] = _counter(
                report, "repro_defense_blocked_comments_total"
            )
        elif scenario == "retire_storm":
            entry["epochs_published"] = report.epochs_published
            entry["deferred_publishes"] = _counter(
                report, "repro_defense_deferred_publishes_total"
            )
        scenarios[scenario] = entry
    payload = {
        "bench": "adversarial",
        "unix_time": time.time(),
        "seed": seed,
        "queries_per_scenario": queries,
        "scenarios": scenarios,
        "ok": all(entry["ok"] for entry in scenarios.values()),
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def check_floor(payload: dict, floor_path: pathlib.Path = FLOOR_PATH) -> list[str]:
    """Quality-floor check against the checked-in floors (``--ci``).

    Unlike the latency floors these are direction-aware: follower /
    deferred counts and the rank correlation must stay *above* their
    floors, recovery must resolve *below* its ceiling.
    """
    floors = json.loads(floor_path.read_text())["adversarial"]
    scenarios = payload["scenarios"]
    violations: list[str] = []
    for name, entry in scenarios.items():
        if not entry["ok"]:
            violations.append(f"{name}: soak not ok (parity/attack errors)")
    followers = scenarios["flash_crowd"]["coalesced_followers"]
    if followers < floors["flash_crowd_min_coalesced_followers"]:
        violations.append(
            f"flash_crowd: {followers} coalesced followers is below the floor "
            f"{floors['flash_crowd_min_coalesced_followers']} — the crowd's "
            f"identical misses are not collapsing"
        )
    correlation = scenarios["spam_burst"]["rank_correlation"]
    if correlation is None or correlation < floors["spam_rank_correlation_floor"]:
        violations.append(
            f"spam_burst: rank correlation {correlation} vs the clean oracle is "
            f"below the floor {floors['spam_rank_correlation_floor']}"
        )
    deferred = scenarios["retire_storm"]["deferred_publishes"]
    if deferred < floors["retire_storm_min_deferred_publishes"]:
        violations.append(
            f"retire_storm: {deferred} deferred publishes is below the floor "
            f"{floors['retire_storm_min_deferred_publishes']} — the governor "
            f"is not absorbing the storm"
        )
    ceiling = floors["recovery_seconds_ceiling"]
    for name, entry in scenarios.items():
        recovery = entry["recovery_seconds"]
        if recovery is None or recovery > ceiling:
            violations.append(
                f"{name}: recovery_seconds={recovery} exceeds the "
                f"{ceiling}s ceiling (None = never recovered in-run)"
            )
    return violations


def format_summary(payload: dict) -> str:
    lines = [f"seed={payload['seed']} queries/scenario={payload['queries_per_scenario']}"]
    for name, entry in payload["scenarios"].items():
        lines.append(
            f"{name}: served={entry['queries_served']} "
            f"attack_ops={entry['attack_ops']} "
            f"p99 {entry['baseline_p99_ms']:.2f}ms -> {entry['attack_p99_ms']:.2f}ms "
            f"recovery={entry['recovery_seconds']}s "
            f"parity={entry['parity_checked'] - entry['parity_failures']}"
            f"/{entry['parity_checked']} ok={entry['ok']}"
        )
        if name == "flash_crowd":
            lines.append(
                f"  coalesce: leaders={entry['coalesce_leaders']} "
                f"followers={entry['coalesced_followers']} "
                f"timeouts={entry['coalesce_timeouts']}"
            )
        elif name == "spam_burst":
            lines.append(
                f"  quarantine: correlation={entry['rank_correlation']} "
                f"held={entry['quarantined_comments']} "
                f"revoked={entry['revoked_comments']} "
                f"blocked={entry['blocked_comments']} "
                f"confirmed={entry['quarantine'].get('confirmed_users', 0)}"
            )
        elif name == "retire_storm":
            lines.append(
                f"  governor: published={entry['epochs_published']} "
                f"deferred={entry['deferred_publishes']}"
            )
    lines.append(f"ok={payload['ok']}")
    return "\n".join(lines)


def test_adversarial_scenarios(report):
    payload = run_bench(queries=1_500, json_path=None)
    report(format_summary(payload), engine="batch")
    assert payload["ok"], "an adversarial scenario failed; see the summary"
    assert payload["scenarios"]["flash_crowd"]["coalesced_followers"] >= 1
    assert payload["scenarios"]["spam_burst"]["rank_correlation"] >= 0.9
    assert payload["scenarios"]["retire_storm"]["deferred_publishes"] >= 1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=6_000)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down run for CI: 3000 queries per scenario",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="fail on any quality-floor miss in benchmarks/perf_floor.json",
    )
    args = parser.parse_args()
    queries = 3_000 if args.smoke else args.queries
    payload = run_bench(queries=queries, seed=args.seed)
    print(format_summary(payload))
    if not payload["ok"]:
        raise SystemExit("adversarial soak failed")
    if args.ci:
        violations = check_floor(payload)
        if violations:
            raise SystemExit("adversarial floor miss:\n  " + "\n  ".join(violations))
        print("adversarial floor check: ok")


if __name__ == "__main__":
    main()
