"""Odd-sketch social mode: ranking accuracy, memory, and update cost.

Three questions, one synthetic community generator scaled for each:

* **Accuracy** — for seeded commenter sets with a full spread of true
  overlaps, how well does the sketch estimate *rank* candidates compared
  to exact Jaccard (Spearman rank correlation, the metric that matters
  for a top-k recommender), across sketch widths — and how does SAR's
  s̃J rank on the same sets?  The acceptance floor is correlation
  ``>= 0.9`` at the default 512-bit width.
* **Memory** — resident sketch bytes as the distinct-user universe grows
  10⁴ → 10⁶ (smoke: 10³ → 10⁵).  Sketch rows are fixed-width, so bytes
  stay flat while the exact descriptor sets grow linearly; the payload
  records both so the sublinearity claim is checkable.
* **Update cost** — seconds per ``add_user`` toggle at each universe
  scale; O(words) per comment means the cost must not grow with users.

Besides the human-readable table, a full run writes machine-readable
``BENCH_sketch_social.json`` at the repo root.  ``--smoke`` shrinks the
universe sweep (CI sanity); ``--ci`` fails if the default-width rank
correlation drops below the floor, if update cost regresses more than
2x over ``benchmarks/perf_floor.json``, or if memory/update cost grow
superlinearly across the sweep.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_sketch_social.py
[--smoke] [--ci]``) or under pytest (``pytest benchmarks/bench_sketch_social.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.social.descriptor import SocialDescriptor
from repro.social.sketch import (
    DEFAULT_SKETCH_BITS,
    SketchBank,
    sketch_jaccard_batch,
    sketch_users,
)
from repro.social.updates import DynamicSocialIndex

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sketch_social.json"
FLOOR_PATH = REPO_ROOT / "benchmarks" / "perf_floor.json"

DEFAULT_SEED = 2015
#: Accuracy sweep: candidate videos ranked against one query set.
ACCURACY_CANDIDATES = 160
ACCURACY_BITS = (128, 256, DEFAULT_SKETCH_BITS, 1024)
SAR_K = 32
SAR_PAIR_CAP = 24
#: The acceptance floor at the default width.
RANK_CORRELATION_FLOOR = 0.9
#: Universe scales for the memory/update sweep (full run: 10^4 -> 10^6).
DEFAULT_USER_SCALES = (10_000, 100_000, 1_000_000)
SMOKE_USER_SCALES = (1_000, 10_000, 100_000)
SCALE_VIDEOS = 64
SCALE_USERS_PER_VIDEO = 40
UPDATE_COMMENTS = 20_000


def _spearman(first: np.ndarray, second: np.ndarray) -> float:
    """Spearman rank correlation, ties averaged (numpy only)."""

    def average_ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="stable")
        ranks = np.empty(values.size, dtype=np.float64)
        ranks[order] = np.arange(values.size, dtype=np.float64)
        _, inverse = np.unique(values, return_inverse=True)
        sums = np.bincount(inverse, weights=ranks)
        counts = np.bincount(inverse)
        return (sums / counts)[inverse]

    return float(np.corrcoef(average_ranks(first), average_ranks(second))[0, 1])


def _accuracy_sets(seed: int) -> tuple[list[str], list[list[str]]]:
    """One query commenter set + candidates spanning the overlap range.

    Every candidate shares a controlled fraction of the query's users
    (0 → ~0.95) plus its own private tail, so the exact Jaccards spread
    across [0, ~0.9] instead of clustering near zero — the regime where
    rank correlation actually discriminates estimators.
    """
    rng = np.random.default_rng(seed)
    query = [f"q{i:04d}" for i in range(150)]
    candidates = []
    for index in range(ACCURACY_CANDIDATES):
        overlap_fraction = (index / max(1, ACCURACY_CANDIDATES - 1)) * 0.95
        shared = int(round(overlap_fraction * len(query)))
        size = int(rng.integers(40, 220))
        chosen = list(rng.choice(query, size=min(shared, len(query)), replace=False))
        private = [f"c{index:04d}_{j:04d}" for j in range(max(1, size - len(chosen)))]
        candidates.append(chosen + private)
    return query, candidates


def run_accuracy(seed: int = DEFAULT_SEED, bits_sweep=ACCURACY_BITS) -> dict:
    """Rank correlation vs exact Jaccard, per sketch width and for SAR."""
    query, candidates = _accuracy_sets(seed)
    query_set = set(query)
    exact = np.array(
        [
            len(query_set & set(cand)) / len(query_set | set(cand))
            for cand in candidates
        ]
    )

    widths = []
    for bits in bits_sweep:
        query_row, query_size = sketch_users(query, bits=bits, seed=0)
        sketched = [sketch_users(cand, bits=bits, seed=0) for cand in candidates]
        matrix = np.stack([row for row, _ in sketched])
        sizes = np.array([size for _, size in sketched], dtype=np.int64)
        estimates = sketch_jaccard_batch(query_row, query_size, matrix, sizes)
        widths.append(
            {
                "bits": bits,
                "bytes_per_video": bits // 8 + 8,
                "rank_correlation": _spearman(estimates, exact),
                "mean_abs_error": float(np.abs(estimates - exact).mean()),
            }
        )

    # SAR on the same sets: vectorize through a real dynamic index so the
    # comparison includes its community-histogram coarsening.
    descriptors = [SocialDescriptor.from_users("q", query)] + [
        SocialDescriptor.from_users(f"v{i:04d}", cand)
        for i, cand in enumerate(candidates)
    ]
    sar_index = DynamicSocialIndex.build(
        descriptors, k=SAR_K, uig_pair_cap=SAR_PAIR_CAP
    )
    query_vector = sar_index.vectors["q"]
    sar_matrix = np.stack(
        [sar_index.vectors[f"v{i:04d}"] for i in range(len(candidates))]
    )
    sar_scores = np.minimum(query_vector, sar_matrix).sum(axis=1) / np.maximum(
        np.maximum(query_vector, sar_matrix).sum(axis=1), 1e-300
    )
    sar = {
        "k": SAR_K,
        "bytes_per_video": SAR_K * 8,
        "rank_correlation": _spearman(sar_scores, exact),
        "mean_abs_error": float(np.abs(sar_scores - exact).mean()),
    }

    default_row = next(
        row for row in widths if row["bits"] == DEFAULT_SKETCH_BITS
    )
    return {
        "candidates": len(candidates),
        "widths": widths,
        "sar": sar,
        "default_bits": DEFAULT_SKETCH_BITS,
        "default_rank_correlation": default_row["rank_correlation"],
        "rank_correlation_floor": RANK_CORRELATION_FLOOR,
    }


def run_scaling(user_scales=DEFAULT_USER_SCALES, seed: int = DEFAULT_SEED) -> dict:
    """Memory + per-comment toggle cost as the user universe grows."""
    rows = []
    for universe in user_scales:
        rng = np.random.default_rng(seed + universe)
        bank = SketchBank()
        exact_bytes = 0
        for video in range(SCALE_VIDEOS):
            fans = rng.integers(0, universe, size=SCALE_USERS_PER_VIDEO)
            users = [f"u{fan:07d}" for fan in fans]
            bank.ingest(f"v{video:05d}", set(users))
            exact_bytes += sum(len(user) for user in set(users))
        comment_users = [
            f"u{fan:07d}" for fan in rng.integers(0, universe, size=UPDATE_COMMENTS)
        ]
        comment_videos = [
            f"v{video:05d}"
            for video in rng.integers(0, SCALE_VIDEOS, size=UPDATE_COMMENTS)
        ]
        started = time.perf_counter()
        for user, video in zip(comment_users, comment_videos):
            bank.add_user(video, user)
        per_comment = (time.perf_counter() - started) / UPDATE_COMMENTS
        rows.append(
            {
                "users": int(universe),
                "videos": SCALE_VIDEOS,
                "sketch_bytes": bank.nbytes(),
                "exact_descriptor_bytes": exact_bytes,
                "update_seconds_per_comment": per_comment,
            }
        )

    first, last = rows[0], rows[-1]
    scale_ratio = last["users"] / first["users"]
    return {
        "scales": rows,
        "comments_timed_per_scale": UPDATE_COMMENTS,
        # Sublinear = grows strictly slower than the universe does; the
        # sketch is O(1) in users so both ratios should hover near 1.
        "memory_growth_ratio": last["sketch_bytes"] / first["sketch_bytes"],
        "update_growth_ratio": (
            last["update_seconds_per_comment"]
            / max(first["update_seconds_per_comment"], 1e-12)
        ),
        "user_scale_ratio": scale_ratio,
        "memory_sublinear": last["sketch_bytes"] / first["sketch_bytes"]
        < scale_ratio,
        "update_sublinear": (
            last["update_seconds_per_comment"]
            / max(first["update_seconds_per_comment"], 1e-12)
        )
        < scale_ratio,
    }


def run_bench(
    user_scales=DEFAULT_USER_SCALES,
    seed: int = DEFAULT_SEED,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    payload = {
        "bench": "sketch_social",
        "unix_time": time.time(),
        "seed": seed,
        "accuracy": run_accuracy(seed=seed),
        "scaling": run_scaling(user_scales=user_scales, seed=seed),
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_table(payload: dict) -> str:
    accuracy = payload["accuracy"]
    scaling = payload["scaling"]
    lines = [
        f"accuracy vs exact Jaccard over {accuracy['candidates']} candidates:",
        f"{'estimator':>12} {'bytes/video':>12} {'rank corr':>10} {'mean |err|':>11}",
        "-" * 48,
    ]
    for row in accuracy["widths"]:
        marker = " *" if row["bits"] == accuracy["default_bits"] else ""
        lines.append(
            f"{'sketch-' + str(row['bits']):>12} {row['bytes_per_video']:>12} "
            f"{row['rank_correlation']:>10.4f} {row['mean_abs_error']:>11.4f}{marker}"
        )
    sar = accuracy["sar"]
    lines.append(
        f"{'sar-k' + str(sar['k']):>12} {sar['bytes_per_video']:>12} "
        f"{sar['rank_correlation']:>10.4f} {sar['mean_abs_error']:>11.4f}"
    )
    lines.append(
        f"\n(* default width; floor {accuracy['rank_correlation_floor']:.2f})"
    )
    lines.append(
        f"\nscaling ({scaling['comments_timed_per_scale']} comments timed per scale):"
    )
    lines.append(
        f"{'users':>10} {'sketch bytes':>13} {'exact bytes':>12} {'us/comment':>11}"
    )
    lines.append("-" * 49)
    for row in scaling["scales"]:
        lines.append(
            f"{row['users']:>10} {row['sketch_bytes']:>13} "
            f"{row['exact_descriptor_bytes']:>12} "
            f"{row['update_seconds_per_comment'] * 1e6:>11.2f}"
        )
    lines.append(
        f"\nusers grew {scaling['user_scale_ratio']:.0f}x; sketch memory "
        f"{scaling['memory_growth_ratio']:.2f}x, update cost "
        f"{scaling['update_growth_ratio']:.2f}x "
        f"(sublinear: {scaling['memory_sublinear'] and scaling['update_sublinear']})"
    )
    return "\n".join(lines)


def check_floor(payload: dict, floor_path: pathlib.Path = FLOOR_PATH) -> list[str]:
    """Accuracy + regression gates (``--ci``)."""
    violations = []
    accuracy = payload["accuracy"]
    if accuracy["default_rank_correlation"] < RANK_CORRELATION_FLOOR:
        violations.append(
            f"rank correlation at {DEFAULT_SKETCH_BITS} bits is "
            f"{accuracy['default_rank_correlation']:.4f}, below the "
            f"{RANK_CORRELATION_FLOOR} floor"
        )
    scaling = payload["scaling"]
    if not scaling["memory_sublinear"]:
        violations.append(
            f"sketch memory grew {scaling['memory_growth_ratio']:.2f}x over a "
            f"{scaling['user_scale_ratio']:.0f}x user sweep"
        )
    if not scaling["update_sublinear"]:
        violations.append(
            f"update cost grew {scaling['update_growth_ratio']:.2f}x over a "
            f"{scaling['user_scale_ratio']:.0f}x user sweep"
        )
    floors = json.loads(floor_path.read_text())["floors"]
    floor = floors.get("sketch_update_seconds_per_comment")
    if floor is not None:
        worst = max(
            row["update_seconds_per_comment"] for row in scaling["scales"]
        )
        if worst > 2.0 * floor:
            violations.append(
                f"sketch_update_seconds_per_comment: {worst:.8f}s is more "
                f"than 2x the floor {floor:.8f}s"
            )
    return violations


def test_sketch_social(report):
    # Reduced scale under pytest: the correlation floor is the contract
    # at every scale; the 10^6-user sweep only runs standalone.
    payload = run_bench(user_scales=SMOKE_USER_SCALES, json_path=None)
    report(format_table(payload), engine="batch")
    accuracy = payload["accuracy"]
    assert accuracy["default_rank_correlation"] >= RANK_CORRELATION_FLOOR
    # Wider sketches must not rank worse than the narrowest.
    by_bits = {row["bits"]: row["rank_correlation"] for row in accuracy["widths"]}
    assert by_bits[max(by_bits)] >= by_bits[min(by_bits)]
    assert payload["scaling"]["memory_sublinear"]
    assert payload["scaling"]["update_sublinear"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="write the payload JSON here (default: repo-root BENCH file "
        "on full runs, nowhere on --smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrunk user sweep — CI sanity run (accuracy floor still applies)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="fail on floor violations (accuracy, sublinearity, update cost)",
    )
    args = parser.parse_args()
    scales = SMOKE_USER_SCALES if args.smoke else DEFAULT_USER_SCALES
    json_path = args.json if args.smoke else (args.json or JSON_PATH)
    payload = run_bench(user_scales=scales, seed=args.seed, json_path=json_path)
    print(format_table(payload))
    if args.ci:
        violations = check_floor(payload)
        if violations:
            raise SystemExit("\n".join(violations))


if __name__ == "__main__":
    main()
