"""Scatter-gather serving cost: the sharded gateway vs the single index.

Builds one synthetic ``N~2k`` community (same shape statistics as the
``bench_scan_throughput`` scaling sweep), serves the same query list
through a single-index :class:`~repro.serving.ServingGateway` (the
oracle baseline) and through a :class:`~repro.sharding.ShardedGateway`
at ``S = 1, 2, 4, 8`` hash shards, and reports per-S:

* seconds/query and queries/second (best-of-``reps`` with the baseline
  and every shard count timed back to back each round, so machine-load
  bursts cancel out of the overhead ratio; memoization is off on both
  sides so every query pays the full scatter + merge);
* ``overhead_vs_single`` — the scatter-gather tax relative to the
  single-index gateway (the acceptance budget is <= 25% at ``S=4``);
* bitwise parity — merged ids *and* scores must equal the oracle's.

Only the deadline-free sequential scatter is timed: that is the hot
path (a deadline routes every shard through the legacy chunked scan for
cutoff support, which would measure the wrong engine).  Per-shard
placement balance lands in the payload as ``shard_sizes``.

Besides the human-readable table, a full run writes machine-readable
``BENCH_sharded_scan.json`` at the repo root.  ``--smoke`` runs a tiny
community (CI sanity; fixed per-query gateway costs dominate at that
scale, so the 25% budget only applies to full runs); ``--ci``
additionally fails if ``seconds_per_query`` regresses more than 2x over
the checked-in ``benchmarks/perf_floor.json``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_sharded_scan.py
[--smoke] [--ci]``) or under pytest (``pytest benchmarks/bench_sharded_scan.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.community.models import CommunityDataset
from repro.core import LiveCommunityIndex, RecommenderConfig
from repro.core.stores import ContentStore, SocialStore
from repro.serving import GatewayConfig, ServingGateway
from repro.sharding import ShardedGateway, ShardedIndex, ShardIndex, make_router
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sharded_scan.json"
FLOOR_PATH = REPO_ROOT / "benchmarks" / "perf_floor.json"

DEFAULT_VIDEOS = 2000
DEFAULT_SHARDS = (1, 2, 4, 8)
DEFAULT_QUERIES = 24
DEFAULT_REPS = 15
DEFAULT_SEED = 7
#: The acceptance budget: scatter-gather tax at S=4 on the N~2k community.
OVERHEAD_BUDGET_AT_4 = 0.25


#: Alternation granularity for :func:`run_bench`'s timing loop — each
#: cycle times this many consecutive passes per configuration before
#: moving on (consecutive passes keep a configuration's scratch
#: workspace and cache working set warm; cycling shares machine-load
#: drift across configurations so it cancels out of the ratio).
_PASSES_PER_CYCLE = 3


def _time_block(recommend, queries, passes: int) -> float:
    """Best mean seconds/query over *passes* back-to-back passes."""
    best = float("inf")
    for _ in range(max(1, passes)):
        started = time.perf_counter()
        for query in queries:
            recommend(query)
        best = min(best, (time.perf_counter() - started) / len(queries))
    return best


def synthesize_community(
    num_videos: int, seed: int = DEFAULT_SEED
) -> tuple[dict, dict]:
    """``(series, descriptors)`` with the scaling-sweep shape statistics.

    One generation pass feeds both the oracle and every sharded build,
    so any ranking divergence is the serving path's fault, never the
    data's.
    """
    rng = np.random.default_rng(seed)
    num_users = max(60, num_videos // 8)
    users = [f"u{j:05d}" for j in range(num_users)]
    series: dict[str, SignatureSeries] = {}
    descriptors: dict[str, SocialDescriptor] = {}
    for i in range(num_videos):
        vid = f"v{i:06d}"
        sigs = []
        for _ in range(int(rng.integers(2, 9))):
            ncub = int(rng.integers(3, 24))
            sigs.append(
                CuboidSignature(
                    values=rng.normal(0.0, 8.0, ncub),
                    weights=rng.random(ncub) + 0.05,
                )
            )
        series[vid] = SignatureSeries(video_id=vid, signatures=tuple(sigs))
        fans = rng.choice(num_users, size=int(rng.integers(2, 7)), replace=False)
        descriptors[vid] = SocialDescriptor.from_users(vid, (users[f] for f in fans))
    return series, descriptors


def _empty_dataset() -> CommunityDataset:
    return CommunityDataset(records={}, users={}, comments=[], topics=())


def build_oracle(series: dict, descriptors: dict, config: RecommenderConfig):
    content = ContentStore(config, build_lsb=False, build_global_features=False)
    for vid in sorted(series):
        content.add_series(vid, series[vid])
    social = SocialStore(descriptors, k=config.k)
    return LiveCommunityIndex._from_parts(_empty_dataset(), config, content, social)


def build_sharded(
    series: dict, descriptors: dict, config: RecommenderConfig, shards: int
) -> ShardedIndex:
    """Partition the synthetic content across *shards* hash shards.

    Mirrors :meth:`ShardedIndex.build` minus the clip-extraction pass
    (the synthetic community is born as signature series): content is
    routed per video, social descriptors replicate to every shard.
    """
    router = make_router("hash", shards, config)
    owned: list[list[str]] = [[] for _ in range(shards)]
    for vid in sorted(series):
        owned[router.route(vid)].append(vid)
    built = []
    for shard_id in range(shards):
        content = ContentStore(config, build_lsb=False, build_global_features=False)
        for vid in owned[shard_id]:
            content.add_series(vid, series[vid])
        social = SocialStore(descriptors, k=config.k)
        shard = ShardIndex._from_parts(_empty_dataset(), config, content, social)
        shard.shard_id = shard_id
        shard.num_shards = shards
        built.append(shard)
    return ShardedIndex(built, router)


def run_bench(
    num_videos: int = DEFAULT_VIDEOS,
    shard_counts=DEFAULT_SHARDS,
    queries: int = DEFAULT_QUERIES,
    reps: int = DEFAULT_REPS,
    seed: int = DEFAULT_SEED,
    top_k: int = 10,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    """Time the single-index baseline and every sharded configuration."""
    series, descriptors = synthesize_community(num_videos, seed=seed)
    config = RecommenderConfig(k=12)
    gateway_config = GatewayConfig(default_deadline=None, memo_capacity=0)

    stride = max(1, num_videos // max(1, queries))
    query_ids = sorted(series)[::stride][: max(1, queries)]

    oracle = build_oracle(series, descriptors, config)
    baseline = ServingGateway(oracle, config=gateway_config)
    baseline.recommend(query_ids[0], top_k)  # warm epoch artifacts
    expected = {
        q: (list(r), list(r.scores))
        for q in query_ids
        for r in (baseline.recommend(q, top_k),)
    }

    built = []
    for shards in shard_counts:
        sharded = build_sharded(series, descriptors, config, shards)
        gateway = ShardedGateway(sharded, config=gateway_config)
        gateway.recommend(query_ids[0], top_k)  # warm every shard
        parity = all(
            (list(r), list(r.scores)) == expected[q]
            for q in query_ids
            for r in (gateway.recommend(q, top_k),)
        )
        built.append((shards, sharded, gateway, parity))

    # Cycled timing: the budget gates a *ratio*, so the baseline and
    # every shard count are timed in alternating blocks rather than one
    # long block each — a machine-load burst then lands on the same
    # cycle for every configuration and best-of discards it everywhere,
    # instead of skewing whichever configuration it happened to hit.
    # Blocks of consecutive passes (not single-pass interleaving) keep
    # each configuration's scratch workspace and cache set warm.
    base_spq = float("inf")
    best = dict.fromkeys((shards for shards, *_ in built), float("inf"))
    cycles = max(1, -(-reps // _PASSES_PER_CYCLE))  # ceil division
    try:
        for _ in range(cycles):
            base_spq = min(
                base_spq,
                _time_block(
                    lambda q: baseline.recommend(q, top_k),
                    query_ids,
                    _PASSES_PER_CYCLE,
                ),
            )
            for shards, _sharded, gateway, _parity in built:
                best[shards] = min(
                    best[shards],
                    _time_block(
                        lambda q, gw=gateway: gw.recommend(q, top_k),
                        query_ids,
                        _PASSES_PER_CYCLE,
                    ),
                )
    finally:
        for _shards, _sharded, gateway, _parity in built:
            gateway.close()

    rows = [
        {
            "shards": shards,
            "seconds_per_query": best[shards],
            "queries_per_second": 1.0 / best[shards],
            "overhead_vs_single": best[shards] / base_spq - 1.0,
            "parity": parity,
            "shard_sizes": sharded.shard_sizes(),
        }
        for shards, sharded, _gateway, parity in built
    ]

    by_shards = {row["shards"]: row for row in rows}
    payload = {
        "bench": "sharded_scan",
        "unix_time": time.time(),
        "community": {
            "videos": num_videos,
            "seed": seed,
            "queries_timed": len(query_ids),
            "reps": reps,
            "top_k": top_k,
        },
        "single_seconds_per_query": base_spq,
        "scaling": rows,
        "overhead_at_4": (
            by_shards[4]["overhead_vs_single"] if 4 in by_shards else None
        ),
        "overhead_budget_at_4": OVERHEAD_BUDGET_AT_4,
        "parity": all(row["parity"] for row in rows),
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_table(payload: dict) -> str:
    base = payload["single_seconds_per_query"]
    lines = [
        f"single-index gateway: {base * 1e3:.3f} ms/query "
        f"({1.0 / base:.0f} q/s) over {payload['community']['videos']} videos",
        "",
        f"{'shards':>7} {'ms/query':>9} {'q/s':>8} {'overhead':>9} "
        f"{'parity':>7}  shard sizes",
        "-" * 60,
    ]
    for row in payload["scaling"]:
        lines.append(
            f"{row['shards']:>7} {row['seconds_per_query'] * 1e3:>9.3f} "
            f"{row['queries_per_second']:>8.0f} "
            f"{row['overhead_vs_single'] * 100:>8.1f}% "
            f"{str(row['parity']):>7}  {row['shard_sizes']}"
        )
    if payload["overhead_at_4"] is not None:
        lines.append(
            f"\nscatter-gather overhead at S=4: "
            f"{payload['overhead_at_4'] * 100:.1f}% "
            f"(budget {payload['overhead_budget_at_4'] * 100:.0f}%)"
        )
    return "\n".join(lines)


def check_floor(payload: dict, floor_path: pathlib.Path = FLOOR_PATH) -> list[str]:
    """Regression check against the checked-in floor (``--ci``)."""
    floors = json.loads(floor_path.read_text())["floors"]
    by_shards = {row["shards"]: row for row in payload["scaling"]}
    observed = {
        f"sharded_s{shards}_seconds_per_query": row["seconds_per_query"]
        for shards, row in by_shards.items()
    }
    observed["sharded_single_seconds_per_query"] = payload[
        "single_seconds_per_query"
    ]
    violations = []
    for name, floor in floors.items():
        value = observed.get(name)
        if value is not None and value > 2.0 * floor:
            violations.append(
                f"{name}: {value:.6f}s is more than 2x the floor {floor:.6f}s"
            )
    return violations


def test_sharded_scan(report):
    # Reduced scale under pytest: parity is the contract at every scale;
    # the 25% overhead budget only binds at the full N~2k size (fixed
    # per-query gateway costs dominate tiny communities).
    payload = run_bench(
        num_videos=300, shard_counts=(1, 2, 4), queries=8, reps=2, json_path=None
    )
    report(format_table(payload), engine="batch")
    assert payload["parity"]
    assert all(
        sum(row["shard_sizes"]) == payload["community"]["videos"]
        for row in payload["scaling"]
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--videos", type=int, default=DEFAULT_VIDEOS)
    parser.add_argument(
        "--shards",
        type=lambda text: tuple(int(part) for part in text.split(",")),
        default=DEFAULT_SHARDS,
        help="comma-separated shard counts to sweep (default 1,2,4,8)",
    )
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="write the payload JSON here (default: repo-root BENCH file "
        "on full runs, nowhere on --smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny community — CI sanity run (parity + floor, no budget)",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="fail if seconds_per_query regresses >2x over benchmarks/perf_floor.json",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_bench(
            num_videos=300,
            shard_counts=(1, 2, 4),
            queries=8,
            reps=2,
            json_path=args.json,
        )
    else:
        payload = run_bench(
            num_videos=args.videos,
            shard_counts=args.shards,
            queries=args.queries,
            reps=args.reps,
            seed=args.seed,
            json_path=args.json or JSON_PATH,
        )
    print(format_table(payload))
    if not payload["parity"]:
        raise SystemExit("sharded rankings diverged from the single-index oracle")
    if not args.smoke and payload["overhead_at_4"] is not None:
        if payload["overhead_at_4"] > OVERHEAD_BUDGET_AT_4:
            raise SystemExit(
                f"scatter-gather overhead at S=4 is "
                f"{payload['overhead_at_4'] * 100:.1f}% "
                f"(budget {OVERHEAD_BUDGET_AT_4 * 100:.0f}%)"
            )
    if args.ci:
        violations = check_floor(payload)
        if violations:
            raise SystemExit("perf floor regression:\n  " + "\n  ".join(violations))
        print("perf floor check: ok")


if __name__ == "__main__":
    main()
