"""Figure 11 — effect of social updates on effectiveness.

Regenerates the paper's Figure 11(a)-(c): the source set is the 12-month
comment year; the update stream is then applied one month at a time
(months 12-15, the paper's "1 to 4 months" test sets) with the maintenance
algorithm of Section 4.2.4 keeping the sub-communities current.  Expected
shape: effectiveness stays steady as updates accumulate.
"""

from conftest import effectiveness_workload

from repro.core import CommunityIndex, RecommenderConfig
from repro.core.recommender import csf_sar_h_recommender
from repro.evaluation import evaluate_method


def test_fig11_update_effect(benchmark, report, panel):
    workload = effectiveness_workload()
    index = CommunityIndex(
        workload.dataset,
        RecommenderConfig(k=60),
        build_lsb=False,
        build_global_features=False,
    )
    lines = [
        f"{'months':>6}"
        + "".join(f"  AR@{k:<4} AC@{k:<4} MAP@{k:<3}" for k in (5, 10, 20))
    ]
    lines.append("-" * len(lines[0]))
    ar10 = []
    for months in range(0, 5):
        if months > 0:
            month = 11 + months
            batch = [
                (comment.user_id, comment.video_id)
                for comment in workload.dataset.comments_between(month, month)
            ]
            index.social.apply_comments(batch)
            index.rebuild_sorted_dictionary()
        recommender = csf_sar_h_recommender(index)
        result = evaluate_method(
            f"{months}m", recommender.recommend, workload.sources, panel
        )
        cells = "".join(
            f"  {result.row(k).ar:6.3f} {result.row(k).ac:6.3f} {result.row(k).map:7.3f}"
            for k in (5, 10, 20)
        )
        lines.append(f"{months:>6}{cells}")
        ar10.append(result.row(10).ar)

    # "Steady" in the paper's sense: the maintained index never decays as
    # updates accumulate (growing slightly is fine — more social evidence).
    steady = ar10[-1] >= ar10[0] - 0.3 and min(ar10) >= ar10[0] - 0.5
    lines.append(
        f"\nshape check (no decay: 4-month AR >= baseline - 0.3 and no dip "
        f"below baseline - 0.5): {steady}"
    )
    report("\n".join(lines))
    assert steady

    month_batch = [
        (comment.user_id, comment.video_id)
        for comment in workload.dataset.comments_between(15, 15)
    ]
    benchmark(lambda: index.social.apply_comments(month_batch[:20]))
