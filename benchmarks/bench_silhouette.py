"""Section 4.2.2 — subgraph extraction vs spectral clustering (Silhouette).

The paper: "The average Silhouette Coefficient of our results is 0.498,
while that of spectral clustering is only 0.242."  The scenario is a
*sampled* sub-collection (they sample 2000 videos), whose UIG is sparse and
carries more natural micro-communities than k — the regime where the
paper's variable-size extraction shines and fixed-k spectral clustering
pays for its "information loss in dimensionality reduction".
"""

import numpy as np
from conftest import RESULTS_DIR  # noqa: F401  (shared results dir)

from repro.social import (
    SocialDescriptor,
    build_uig,
    extract_subcommunities,
    partition_silhouette,
    spectral_partition,
)


def sampled_sparse_community(seed: int = 17, n_groups: int = 40):
    """A sampled sub-collection: many small co-comment groups, sparse noise."""
    rng = np.random.default_rng(seed)
    descriptors = []
    vid = 0
    sizes = [int(rng.integers(3, 10)) for _ in range(n_groups)]
    for group, size in enumerate(sizes):
        members = [f"u{group}_{i}" for i in range(size)]
        for _ in range(size * 4):
            users = list(rng.choice(members, size=min(3, size), replace=False))
            if rng.random() < 0.01:  # rare cross-group commenter
                other = int(rng.integers(0, n_groups))
                users.append(f"u{other}_0")
            descriptors.append(SocialDescriptor.from_users(f"v{vid}", users))
            vid += 1
    return build_uig(descriptors)


def test_silhouette_ours_vs_spectral(benchmark, report):
    k = 15
    scores_ours = []
    scores_spectral = []
    for seed in (17, 29, 41):
        graph = sampled_sparse_community(seed=seed)
        ours = extract_subcommunities(graph, k)
        spectral = spectral_partition(graph, k, seed=seed)
        scores_ours.append(partition_silhouette(graph, ours))
        scores_spectral.append(partition_silhouette(graph, spectral))

    ours_mean = float(np.mean(scores_ours))
    spectral_mean = float(np.mean(scores_spectral))
    report(
        "average Silhouette Coefficient (3 sampled communities, k=15)\n"
        f"  subgraph extraction (ours): {ours_mean:.3f}   (paper: 0.498)\n"
        f"  spectral clustering:        {spectral_mean:.3f}   (paper: 0.242)\n"
        f"  shape check (ours > spectral): {ours_mean > spectral_mean}"
    )
    assert ours_mean > spectral_mean

    graph = sampled_sparse_community(seed=17)
    benchmark(lambda: extract_subcommunities(graph, k))
