"""Exhaustive-scan throughput: scalar vs batch vs batch+workers.

Measures recommendation queries/second of :class:`FusionRecommender` over
a seeded generator community for the three engine configurations the
batch scoring work introduced:

* ``scalar`` — the original per-pair Python scan;
* ``batch`` — array-level kernels (SignatureBank κJ + precomputed SAR
  matrix, see ``repro.core.recommender``);
* ``batch+Nw`` — the batch engine with a thread fan-out over candidate
  blocks for the κJ stage.

Besides the human-readable table, the run writes a machine-readable
``BENCH_scan_throughput.json`` at the repo root so future PRs can track
the throughput trajectory.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_scan_throughput.py
[--smoke]``) or under pytest (``pytest benchmarks/bench_scan_throughput.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.community import build_workload
from repro.core import CommunityIndex, RecommenderConfig
from repro.core.recommender import FusionRecommender
from repro.obs import QueryTrace, percentiles

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scan_throughput.json"

#: Default generator community (the acceptance target measures this one).
DEFAULT_HOURS = 10.0
DEFAULT_SEED = 5
DEFAULT_QUERIES = 5
DEFAULT_WORKERS = 4


def run_throughput(
    hours: float = DEFAULT_HOURS,
    seed: int = DEFAULT_SEED,
    queries: int = DEFAULT_QUERIES,
    top_k: int = 10,
    num_workers: int = DEFAULT_WORKERS,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    """Time the three engine configurations and return the result payload."""
    workload = build_workload(hours=hours, seed=seed)
    index = CommunityIndex(
        workload.dataset,
        RecommenderConfig(),
        build_lsb=False,
        build_global_features=False,
    )
    sources = workload.sources[: max(1, queries)]

    configurations = {
        "scalar": {"engine": "scalar"},
        "batch": {"engine": "batch"},
        f"batch+{num_workers}w": {"engine": "batch", "num_workers": num_workers},
    }
    engines: dict[str, dict] = {}
    rankings: dict[str, list[str]] = {}
    for label, kwargs in configurations.items():
        with FusionRecommender(
            index, social_mode="sar-h", content_measure="kj", **kwargs
        ) as recommender:
            rankings[label] = recommender.recommend(sources[0], top_k)  # warm-up
            started = time.perf_counter()
            for source in sources:
                recommender.recommend(source, top_k)
            elapsed = time.perf_counter() - started
            # A second, traced pass: per-stage latency percentiles.  Traced
            # separately so the tracing clock reads never pollute the
            # throughput numbers above.
            stage_samples: dict[str, list[float]] = {}
            for source in sources:
                trace = QueryTrace("recommend")
                recommender.recommend(source, top_k, trace=trace)
                for stage, seconds in trace.stage_seconds().items():
                    stage_samples.setdefault(stage, []).append(seconds)
        engines[label] = {
            "seconds_per_query": elapsed / len(sources),
            "queries_per_second": len(sources) / elapsed,
            "stage_seconds": {
                stage: percentiles(samples)
                for stage, samples in sorted(stage_samples.items())
            },
        }

    # Batch is only a valid optimisation if it returns the scalar ranking.
    baseline = rankings["scalar"]
    parity = all(ranked == baseline for ranked in rankings.values())

    scalar_spq = engines["scalar"]["seconds_per_query"]
    payload = {
        "bench": "scan_throughput",
        "unix_time": time.time(),
        "community": {
            "hours": hours,
            "seed": seed,
            "videos": len(index.video_ids),
            "queries_timed": len(sources),
            "top_k": top_k,
        },
        "engines": engines,
        "speedup_batch_vs_scalar": scalar_spq / engines["batch"]["seconds_per_query"],
        "speedup_batch_workers_vs_scalar": scalar_spq
        / engines[f"batch+{num_workers}w"]["seconds_per_query"],
        "ranking_parity": parity,
    }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_table(payload: dict) -> str:
    lines = [
        f"{'engine':>12} {'s/query':>10} {'queries/s':>10}",
        "-" * 34,
    ]
    for label, row in payload["engines"].items():
        lines.append(
            f"{label:>12} {row['seconds_per_query']:>10.4f} "
            f"{row['queries_per_second']:>10.2f}"
        )
    lines.append(
        f"\nbatch speedup: {payload['speedup_batch_vs_scalar']:.1f}x; "
        f"batch+workers speedup: {payload['speedup_batch_workers_vs_scalar']:.1f}x; "
        f"ranking parity: {payload['ranking_parity']}"
    )
    stages = payload["engines"].get("batch", {}).get("stage_seconds", {})
    if stages:
        lines.append("\nbatch per-stage latency (ms):")
        lines.append(f"{'stage':>16} {'p50':>8} {'p90':>8} {'p99':>8}")
        for stage, points in stages.items():
            lines.append(
                f"{stage:>16} {points['p50'] * 1e3:>8.3f} "
                f"{points['p90'] * 1e3:>8.3f} {points['p99'] * 1e3:>8.3f}"
            )
    return "\n".join(lines)


def test_scan_throughput(report):
    payload = run_throughput()
    report(format_table(payload), engine="scalar|batch")
    assert payload["ranking_parity"]
    # The acceptance bar is 5x on the default community; leave headroom
    # for loaded CI machines without letting a real regression through.
    assert payload["speedup_batch_vs_scalar"] >= 3.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=DEFAULT_HOURS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny community, no JSON output — CI sanity run of both engines",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_throughput(
            hours=2.0, queries=2, num_workers=2, json_path=None
        )
    else:
        payload = run_throughput(
            hours=args.hours,
            seed=args.seed,
            queries=args.queries,
            num_workers=args.workers,
        )
    print(format_table(payload))
    if not payload["ranking_parity"]:
        raise SystemExit("engine rankings diverged")


if __name__ == "__main__":
    main()
