"""Fused-scan throughput: seed engines vs the pruned float32 hot path.

Times recommendation queries/second of :class:`FusionRecommender` over
the ``N=200`` reference community (``build_workload(hours=17)`` — 204
videos) for four engine configurations:

* ``scalar`` — the original per-pair Python scan;
* ``batch-seed`` — the pre-optimization batch engine (array kernels, no
  pruning, ``fast_scan=False``), the baseline the ≥10x target is
  measured against;
* ``batch-ref`` — the float64 unpruned reference path of the fast scan
  (the parity oracle);
* ``batch-fast`` — the shipped hot path: float32 packed signature
  banks, segment-CDF pruning bounds, position-addressed kernels.  This
  is what a gateway memo **miss** pays.

On top of the engine matrix the bench reports:

* memo hit vs miss latency through :class:`ServingGateway` (the
  epoch-keyed query memo) plus the ``repro_serving_memo_*`` counters;
* an ``N=2k–20k`` synthetic-community scaling sweep (fast vs reference
  seconds/query, candidates scored, ranking parity);
* an LSB multi-probe sweep (``knn_probes``): candidate-set size,
  recall@10 against the full forest, and KNN search latency per probe
  budget.

Every speedup is computed within a single run — engine pairs are timed
back-to-back on the same machine state, best-of-``reps`` — so the
recorded ratios do not depend on cross-run machine variance.  The
earlier ``batch+Nw`` worker fan-out row is gone: the fast scan serves
its block loop inline, so the thread fan-out only applies to the legacy
path it replaced.

Besides the human-readable table, a full run writes machine-readable
``BENCH_scan_throughput.json`` at the repo root so future PRs can track
the throughput trajectory.  ``--smoke`` runs a tiny community (CI
sanity); ``--ci`` additionally fails if ``seconds_per_query`` regresses
more than 2x over the checked-in ``benchmarks/perf_floor.json``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_scan_throughput.py
[--smoke] [--ci]``) or under pytest (``pytest benchmarks/bench_scan_throughput.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.community import build_workload
from repro.community.models import CommunityDataset
from repro.core import CommunityIndex, LiveCommunityIndex, RecommenderConfig
from repro.core.knn import KTopScoreVideoSearch
from repro.core.recommender import FusionRecommender
from repro.core.stores import ContentStore, SocialStore
from repro.obs import QueryTrace, percentiles
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serving import GatewayConfig, ServingGateway
from repro.signatures.cuboid import CuboidSignature
from repro.signatures.series import SignatureSeries
from repro.social.descriptor import SocialDescriptor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scan_throughput.json"
FLOOR_PATH = REPO_ROOT / "benchmarks" / "perf_floor.json"

#: Default generator community: ~12 videos/hour, so 17 crawl-hours land
#: on 204 videos — the "N=200 reference point" of the acceptance target.
DEFAULT_HOURS = 17.0
DEFAULT_SEED = 5
DEFAULT_QUERIES = 30
DEFAULT_REPS = 5
#: Synthetic-community sizes of the scaling sweep.
SWEEP_SIZES = (2000, 5000, 10000, 20000)
#: LSB tree budgets of the multi-probe sweep (None = full forest).
PROBE_BUDGETS = (1, 2, 4, None)

#: Engine rows of the reference matrix.  ``batch-seed`` is the engine
#: exactly as it stood before the hot-path work (``fast_scan=False``
#: routes around the pruned position-addressed scan), so the recorded
#: ``speedup_fast_vs_seed_batch`` is a like-for-like before/after on one
#: machine state.
ENGINE_CONFIGS: dict[str, dict] = {
    "scalar": {"engine": "scalar"},
    # fast_scan=False routes around the pruned position-addressed scan
    # AND pins float64: the pre-PR engine had neither the float32 packed
    # bank nor the pruning bounds, so both must be off for a
    # like-for-like baseline.
    "batch-seed": {
        "engine": "batch",
        "fast_scan": False,
        "scan_dtype": "float64",
        "prune": False,
    },
    "batch-ref": {"engine": "batch", "scan_dtype": "float64", "prune": False},
    "batch-fast": {"engine": "batch"},
}


def _time_queries(recommend, queries, reps: int) -> float:
    """Best-of-*reps* mean seconds/query of *recommend* over *queries*.

    Best-of, not mean-of: the interesting quantity is the engine's cost,
    and the minimum over repetitions is the standard way to strip
    scheduler/frequency noise from a throughput measurement.
    """
    best = float("inf")
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        for query in queries:
            recommend(query)
        best = min(best, (time.perf_counter() - started) / len(queries))
    return best


def build_synthetic_index(
    num_videos: int, seed: int = 0, k: int = 12
) -> CommunityIndex:
    """A content+social index of *num_videos* synthetic videos.

    The generator pipeline grows communities at ~12 videos/hour, which is
    far too slow to reach the 2k–20k sweep sizes, so the sweep builds the
    stores directly: signature series (2–8 cuboid signatures of 3–23
    cells) and social descriptors (2–6 fans) drawn from a seeded RNG with
    the same shape statistics as the generated communities.
    """
    rng = np.random.default_rng(seed)
    config = RecommenderConfig(k=k)
    content = ContentStore(config, build_lsb=False, build_global_features=False)
    num_users = max(60, num_videos // 8)
    users = [f"u{j:05d}" for j in range(num_users)]
    descriptors = {}
    for i in range(num_videos):
        vid = f"v{i:06d}"
        sigs = []
        for _ in range(int(rng.integers(2, 9))):
            ncub = int(rng.integers(3, 24))
            sigs.append(
                CuboidSignature(
                    values=rng.normal(0.0, 8.0, ncub),
                    weights=rng.random(ncub) + 0.05,
                )
            )
        content.add_series(vid, SignatureSeries(video_id=vid, signatures=tuple(sigs)))
        fans = rng.choice(num_users, size=int(rng.integers(2, 7)), replace=False)
        descriptors[vid] = SocialDescriptor.from_users(vid, (users[f] for f in fans))
    social = SocialStore(descriptors, k=config.k)
    dataset = CommunityDataset(records={}, users={}, comments=[], topics=())
    return CommunityIndex._from_parts(dataset, config, content, social)


def _warm_index(index: CommunityIndex) -> None:
    """Materialize the epoch-scoped artifacts outside the timed region."""
    index.sar_matrix("sar-h")
    index.signature_bank().fast_pack()


def run_engines(
    index: CommunityIndex, queries: list[str], top_k: int, reps: int
) -> tuple[dict, dict]:
    """Time every :data:`ENGINE_CONFIGS` row; returns (rows, rankings)."""
    engines: dict[str, dict] = {}
    rankings: dict[str, list[str]] = {}
    for label, kwargs in ENGINE_CONFIGS.items():
        # The scalar scan is ~two orders slower; a shorter query list
        # keeps the bench runnable while still averaging enough queries.
        timed = queries[:8] if label == "scalar" else queries
        engine_reps = min(reps, 2) if label == "scalar" else reps
        with FusionRecommender(
            index, social_mode="sar-h", content_measure="kj", **kwargs
        ) as recommender:
            recommender.recommend(timed[0], top_k)  # warm-up
            spq = _time_queries(
                lambda q: recommender.recommend(q, top_k), timed, engine_reps
            )
            # A second, traced pass: per-stage latency percentiles.
            # Traced separately so the tracing clock reads never pollute
            # the throughput numbers above.
            stage_samples: dict[str, list[float]] = {}
            for query in timed:
                trace = QueryTrace("recommend")
                recommender.recommend(query, top_k, trace=trace)
                for stage, seconds in trace.stage_seconds().items():
                    stage_samples.setdefault(stage, []).append(seconds)
            rankings[label] = [list(recommender.recommend(q, top_k)) for q in queries]
        engines[label] = {
            "seconds_per_query": spq,
            "queries_per_second": 1.0 / spq,
            "queries_timed": len(timed),
            "stage_seconds": {
                stage: percentiles(samples)
                for stage, samples in sorted(stage_samples.items())
            },
        }
    return engines, rankings


def run_memo(
    dataset, queries: list[str], top_k: int, reps: int
) -> dict:
    """Memo hit vs miss latency through the serving gateway.

    The miss path is measured on a gateway with ``memo_capacity=0`` (the
    memo never holds anything, so every query pays the full fused scan
    plus gateway overhead); the hit path primes a default gateway once
    and then re-times the same query list.  Both run under a private
    metrics registry so the ``repro_serving_memo_*`` counters land in the
    payload.
    """
    registry = MetricsRegistry()
    with use_metrics(registry):
        live = LiveCommunityIndex(dataset, RecommenderConfig())
        miss_gw = ServingGateway(
            live,
            social_mode="sar-h",
            content_measure="kj",
            config=GatewayConfig(default_deadline=None, memo_capacity=0),
        )
        miss_gw.recommend(queries[0], top_k)  # warm-up
        miss_spq = _time_queries(
            lambda q: miss_gw.recommend(q, top_k), queries, reps
        )
        hit_gw = ServingGateway(
            live,
            social_mode="sar-h",
            content_measure="kj",
            config=GatewayConfig(default_deadline=None),
        )
        for query in queries:  # prime the memo
            hit_gw.recommend(query, top_k)
        hit_spq = _time_queries(
            lambda q: hit_gw.recommend(q, top_k), queries, reps
        )
        hit_parity = all(
            list(hit_gw.recommend(q, top_k)) == list(miss_gw.recommend(q, top_k))
            for q in queries[:5]
        )
    counters = registry.snapshot()["counters"]
    return {
        "miss_seconds_per_query": miss_spq,
        "hit_seconds_per_query": hit_spq,
        "hit_speedup_vs_miss": miss_spq / hit_spq,
        "hit_parity": hit_parity,
        "counters": {
            name: counters.get(name, 0)
            for name in (
                "repro_serving_memo_hit_total",
                "repro_serving_memo_miss_total",
                "repro_serving_memo_evict_total",
            )
        },
    }


def run_sweep(
    sizes=SWEEP_SIZES, top_k: int = 10, reps: int = 3, seed: int = 42
) -> list[dict]:
    """Fast-vs-reference scaling curve over synthetic communities."""
    rows = []
    for size in sizes:
        index = build_synthetic_index(size, seed=seed)
        _warm_index(index)
        queries = list(index.video_ids[:: max(1, size // 10)][:10])
        ref_queries = queries[:4]  # the reference scan is O(N) per query
        with FusionRecommender(
            index, social_mode="sar-h", content_measure="kj", **ENGINE_CONFIGS["batch-ref"]
        ) as ref:
            ref.recommend(ref_queries[0], top_k)
            ref_spq = _time_queries(
                lambda q: ref.recommend(q, top_k), ref_queries, min(reps, 2)
            )
            ref_ranked = [list(ref.recommend(q, top_k)) for q in queries]
        registry = MetricsRegistry()
        with use_metrics(registry), FusionRecommender(
            index, social_mode="sar-h", content_measure="kj"
        ) as fast:
            fast.recommend(queries[0], top_k)
            fast_spq = _time_queries(
                lambda q: fast.recommend(q, top_k), queries, reps
            )
            fast_ranked = [list(fast.recommend(q, top_k)) for q in queries]
        counters = registry.snapshot()["counters"]
        # repro_queries_total carries an engine label; sum the series.
        scanned_queries = sum(
            count
            for name, count in counters.items()
            if name.startswith("repro_queries_total")
        )
        rows.append(
            {
                "videos": size,
                "fast_seconds_per_query": fast_spq,
                "ref_seconds_per_query": ref_spq,
                "speedup_fast_vs_ref": ref_spq / fast_spq,
                "scored_per_query": (
                    counters.get("repro_candidates_scored_total", 0) / scanned_queries
                    if scanned_queries
                    else None
                ),
                "ranking_parity": fast_ranked == ref_ranked,
            }
        )
    return rows


def run_probe_sweep(
    dataset, queries: list[str], top_k: int = 10
) -> list[dict]:
    """Recall-vs-candidates of the LSB multi-probe knob (``knn_probes``)."""
    index = CommunityIndex(
        dataset, RecommenderConfig(), build_lsb=True, build_global_features=False
    )
    _warm_index(index)
    full = KTopScoreVideoSearch(index)
    oracle = {
        q: [r.video_id for r in full.search(q, top_k=top_k)] for q in queries
    }
    rows = []
    for probes in PROBE_BUDGETS:
        searcher = KTopScoreVideoSearch(index, probes=probes)
        candidates = 0
        recalled = 0
        expected = 0
        started = time.perf_counter()
        for query in queries:
            candidates += len(searcher._content_candidates(query))
            got = {r.video_id for r in searcher.search(query, top_k=top_k)}
            recalled += len(got & set(oracle[query]))
            expected += len(oracle[query])
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "probes": probes if probes is not None else "all",
                "mean_content_candidates": candidates / len(queries),
                "recall_at_k": recalled / expected if expected else 1.0,
                "seconds_per_query": elapsed / len(queries),
            }
        )
    return rows


def run_throughput(
    hours: float = DEFAULT_HOURS,
    seed: int = DEFAULT_SEED,
    queries: int = DEFAULT_QUERIES,
    top_k: int = 10,
    reps: int = DEFAULT_REPS,
    sweep_sizes=SWEEP_SIZES,
    probe_budgets=PROBE_BUDGETS,
    json_path: pathlib.Path | None = JSON_PATH,
) -> dict:
    """The full bench: engine matrix, memo, scaling sweep, probe sweep."""
    workload = build_workload(hours=hours, seed=seed)
    index = CommunityIndex(
        workload.dataset,
        RecommenderConfig(),
        build_lsb=False,
        build_global_features=False,
    )
    _warm_index(index)
    stride = max(1, len(index.video_ids) // max(1, queries))
    query_ids = list(index.video_ids[::stride][: max(1, queries)])

    engines, rankings = run_engines(index, query_ids, top_k, reps)
    parity = all(ranked == rankings["scalar"] for ranked in rankings.values())

    scalar_spq = engines["scalar"]["seconds_per_query"]
    seed_spq = engines["batch-seed"]["seconds_per_query"]
    fast_spq = engines["batch-fast"]["seconds_per_query"]

    payload = {
        "bench": "scan_throughput",
        "unix_time": time.time(),
        "community": {
            "hours": hours,
            "seed": seed,
            "videos": len(index.video_ids),
            "queries_timed": len(query_ids),
            "reps": reps,
            "top_k": top_k,
        },
        "engines": engines,
        # Headline ratios, all within-run.  "batch" in the legacy key
        # means the current batch engine (= the fast path).
        "speedup_fast_vs_seed_batch": seed_spq / fast_spq,
        "speedup_fast_vs_ref": engines["batch-ref"]["seconds_per_query"] / fast_spq,
        "speedup_batch_vs_scalar": scalar_spq / fast_spq,
        "ranking_parity": parity,
        "memo": run_memo(workload.dataset, query_ids, top_k, reps),
    }
    if sweep_sizes:
        payload["scaling_sweep"] = run_sweep(sweep_sizes, top_k=top_k)
    if probe_budgets:
        payload["knn_probe_sweep"] = run_probe_sweep(
            workload.dataset, query_ids[: min(len(query_ids), 10)], top_k=top_k
        )
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def format_table(payload: dict) -> str:
    lines = [
        f"{'engine':>12} {'s/query':>10} {'queries/s':>10}",
        "-" * 34,
    ]
    for label, row in payload["engines"].items():
        lines.append(
            f"{label:>12} {row['seconds_per_query']:>10.4f} "
            f"{row['queries_per_second']:>10.2f}"
        )
    lines.append(
        f"\nfast vs seed batch: {payload['speedup_fast_vs_seed_batch']:.1f}x; "
        f"fast vs float64 ref: {payload['speedup_fast_vs_ref']:.1f}x; "
        f"fast vs scalar: {payload['speedup_batch_vs_scalar']:.1f}x; "
        f"ranking parity: {payload['ranking_parity']}"
    )
    memo = payload.get("memo")
    if memo:
        lines.append(
            f"memo: miss {memo['miss_seconds_per_query'] * 1e3:.3f} ms, "
            f"hit {memo['hit_seconds_per_query'] * 1e3:.3f} ms "
            f"({memo['hit_speedup_vs_miss']:.0f}x), parity {memo['hit_parity']}"
        )
    stages = payload["engines"].get("batch-fast", {}).get("stage_seconds", {})
    if stages:
        lines.append("\nbatch-fast per-stage latency (ms):")
        lines.append(f"{'stage':>16} {'p50':>8} {'p90':>8} {'p99':>8}")
        for stage, points in stages.items():
            lines.append(
                f"{stage:>16} {points['p50'] * 1e3:>8.3f} "
                f"{points['p90'] * 1e3:>8.3f} {points['p99'] * 1e3:>8.3f}"
            )
    sweep = payload.get("scaling_sweep")
    if sweep:
        lines.append("\nscaling sweep (fast vs float64 ref):")
        lines.append(
            f"{'videos':>8} {'fast ms/q':>10} {'ref ms/q':>10} {'speedup':>8} "
            f"{'scored/q':>9} {'parity':>7}"
        )
        for row in sweep:
            lines.append(
                f"{row['videos']:>8} {row['fast_seconds_per_query'] * 1e3:>10.3f} "
                f"{row['ref_seconds_per_query'] * 1e3:>10.3f} "
                f"{row['speedup_fast_vs_ref']:>7.1f}x "
                f"{row['scored_per_query']:>9.1f} {str(row['ranking_parity']):>7}"
            )
    probe = payload.get("knn_probe_sweep")
    if probe:
        lines.append("\nLSB multi-probe sweep (knn_probes):")
        lines.append(
            f"{'probes':>7} {'candidates':>11} {'recall@k':>9} {'ms/query':>9}"
        )
        for row in probe:
            lines.append(
                f"{str(row['probes']):>7} {row['mean_content_candidates']:>11.1f} "
                f"{row['recall_at_k']:>9.3f} {row['seconds_per_query'] * 1e3:>9.3f}"
            )
    return "\n".join(lines)


def check_floor(payload: dict, floor_path: pathlib.Path = FLOOR_PATH) -> list[str]:
    """Regression check against the checked-in floor (``--ci``).

    The floor file records known-good smoke-scale ``seconds_per_query``
    values; a metric more than 2x over its floor fails the perf-smoke
    job.  Floors are deliberately loose (set well above a quiet-machine
    run) so shared CI runners don't flap, while a real order-of-magnitude
    regression still trips.
    """
    floors = json.loads(floor_path.read_text())["floors"]
    observed = {
        "batch_fast_seconds_per_query": payload["engines"]["batch-fast"][
            "seconds_per_query"
        ],
        "memo_hit_seconds_per_query": payload["memo"]["hit_seconds_per_query"],
        "memo_miss_seconds_per_query": payload["memo"]["miss_seconds_per_query"],
    }
    violations = []
    for name, floor in floors.items():
        value = observed.get(name)
        if value is not None and value > 2.0 * floor:
            violations.append(
                f"{name}: {value:.6f}s is more than 2x the floor {floor:.6f}s"
            )
    return violations


def test_scan_throughput(report):
    # Reduced scale under pytest: the seed community, no scaling sweep
    # (the full curve is the standalone run's job), generous speedup
    # floors so loaded CI machines don't flap.
    payload = run_throughput(
        hours=10.0, queries=12, reps=3, sweep_sizes=(), json_path=None
    )
    report(format_table(payload), engine="scalar|batch-seed|batch-ref|batch-fast")
    assert payload["ranking_parity"]
    assert payload["memo"]["hit_parity"]
    assert payload["memo"]["counters"]["repro_serving_memo_hit_total"] > 0
    assert payload["speedup_batch_vs_scalar"] >= 3.0
    assert payload["speedup_fast_vs_seed_batch"] >= 2.0
    # The probe knob must actually shrink the candidate set.
    probe_rows = {row["probes"]: row for row in payload["knn_probe_sweep"]}
    assert (
        probe_rows[1]["mean_content_candidates"]
        <= probe_rows["all"]["mean_content_candidates"]
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=DEFAULT_HOURS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="write the payload JSON here (default: repo-root BENCH file "
        "on full runs, nowhere on --smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny community, no sweep — CI sanity run of every engine",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="fail if seconds_per_query regresses >2x over benchmarks/perf_floor.json",
    )
    args = parser.parse_args()
    if args.smoke:
        payload = run_throughput(
            hours=2.0, queries=4, reps=2, sweep_sizes=(), json_path=args.json
        )
    else:
        payload = run_throughput(
            hours=args.hours,
            seed=args.seed,
            queries=args.queries,
            reps=args.reps,
            json_path=args.json or JSON_PATH,
        )
    print(format_table(payload))
    if not payload["ranking_parity"]:
        raise SystemExit("engine rankings diverged")
    if args.ci:
        violations = check_floor(payload)
        if violations:
            raise SystemExit("perf floor regression:\n  " + "\n  ".join(violations))
        print("perf floor check: ok")


if __name__ == "__main__":
    main()
